//! Interactive command-line front-end — the CLI equivalent of the paper's
//! GUI (Figure 3): connect to a database, enter assertions, propose updates,
//! and call `safeCommit`.
//!
//! Run with: `cargo run --example repl`
//!
//! ```text
//! tintin> CREATE TABLE orders (o_orderkey INT PRIMARY KEY);
//! tintin> assert CREATE ASSERTION neverNegative CHECK (NOT EXISTS (
//!             SELECT * FROM orders WHERE o_orderkey < 0));
//! tintin> install
//! tintin> INSERT INTO orders VALUES (-1);
//! tintin> commit
//! ```

use std::io::{BufRead, Write};
use tintin::{CommitOutcome, Installation, Tintin};
use tintin_engine::{Database, StatementResult};

const HELP: &str = "\
Commands:
  <sql>;            execute SQL (DDL, INSERT/DELETE/UPDATE, SELECT). With an
                    installation active, DML is captured as pending events.
  explain <query>;  show the access-path plan (scans vs index probes)
  assert <sql>;     queue a CREATE ASSERTION for the next `install`
  install           install queued assertions (event tables + views)
  commit            safeCommit: check pending events, then apply or reject
  check             dry-run check of pending events
  pending           show pending insertion/deletion counts
  tables            list tables;  views — list views
  demo              load a small orders/lineitem demo schema + data
  help              this text;  quit — exit
";

fn main() {
    println!("TINTIN repl — type `help` for commands.");
    let mut db = Database::new();
    let tintin = Tintin::new();
    let mut queued: Vec<String> = Vec::new();
    let mut installation: Option<Installation> = None;
    let stdin = std::io::stdin();
    let mut buffer = String::new();

    loop {
        if buffer.is_empty() {
            print!("tintin> ");
        } else {
            print!("   ...> ");
        }
        std::io::stdout().flush().unwrap();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }

        // Single-word commands work without a terminating semicolon.
        if buffer.is_empty() {
            match line {
                "quit" | "exit" => break,
                "help" => {
                    println!("{HELP}");
                    continue;
                }
                "install" => {
                    if queued.is_empty() {
                        println!("no assertions queued; use `assert CREATE ASSERTION …;`");
                        continue;
                    }
                    let refs: Vec<&str> = queued.iter().map(|s| s.as_str()).collect();
                    match tintin.install(&mut db, &refs) {
                        Ok(inst) => {
                            println!(
                                "installed {} assertion(s), {} incremental view(s)",
                                inst.assertions.len(),
                                inst.view_count()
                            );
                            for d in &inst.denial_texts {
                                println!("  denial: {d}");
                            }
                            installation = Some(inst);
                            queued.clear();
                        }
                        Err(e) => println!("install failed: {e}"),
                    }
                    continue;
                }
                "commit" | "check" => {
                    let Some(inst) = &installation else {
                        println!("no installation; `install` first");
                        continue;
                    };
                    if line == "commit" {
                        match tintin.safe_commit(&mut db, inst) {
                            Ok(CommitOutcome::Committed {
                                inserted,
                                deleted,
                                stats,
                            }) => println!(
                                "committed (+{inserted}/-{deleted}) in {:?}",
                                stats.check_time
                            ),
                            Ok(CommitOutcome::Rejected { violations, .. }) => {
                                println!("rejected:");
                                for v in violations {
                                    println!("  {} →\n{}", v.assertion, v.rows);
                                }
                            }
                            Err(e) => println!("error: {e}"),
                        }
                    } else {
                        match tintin.check_pending(&mut db, inst) {
                            Ok((violations, stats)) => {
                                println!(
                                    "checked in {:?}: {} violation(s)",
                                    stats.check_time,
                                    violations.len()
                                );
                                for v in violations {
                                    println!("  {} →\n{}", v.assertion, v.rows);
                                }
                            }
                            Err(e) => println!("error: {e}"),
                        }
                    }
                    continue;
                }
                "pending" => {
                    let (ins, del) = db.pending_counts();
                    println!("pending: {ins} insertion(s), {del} deletion(s)");
                    continue;
                }
                "tables" => {
                    for t in db.table_names() {
                        println!("  {t} ({} rows)", db.table(&t).unwrap().len());
                    }
                    continue;
                }
                "views" => {
                    for v in db.view_names() {
                        println!("  {v}");
                    }
                    continue;
                }
                "demo" => {
                    match db.execute_sql(
                        "CREATE TABLE orders (o_orderkey INT PRIMARY KEY, o_totalprice REAL);
                         CREATE TABLE lineitem (
                             l_orderkey INT NOT NULL REFERENCES orders,
                             l_linenumber INT NOT NULL,
                             PRIMARY KEY (l_orderkey, l_linenumber));
                         INSERT INTO orders VALUES (1, 10.0), (2, 20.0);
                         INSERT INTO lineitem VALUES (1, 1), (2, 1);",
                    ) {
                        Ok(_) => println!("demo schema loaded (orders, lineitem)"),
                        Err(e) => println!("error: {e}"),
                    }
                    continue;
                }
                _ => {}
            }
        }

        // Accumulate until a terminating semicolon.
        buffer.push_str(line);
        buffer.push('\n');
        if !line.ends_with(';') {
            continue;
        }
        let input = std::mem::take(&mut buffer);
        let input = input.trim().trim_end_matches(';').trim();

        if let Some(rest) = input.strip_prefix("explain ") {
            match db.explain_sql(rest) {
                Ok(plan) => print!("{plan}"),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }

        if let Some(rest) = input.strip_prefix("assert ") {
            match tintin_sql::parse_statement(rest) {
                Ok(tintin_sql::Statement::CreateAssertion(a)) => {
                    println!("queued assertion '{}'", a.name);
                    queued.push(rest.to_string());
                }
                Ok(_) => println!("`assert` expects a CREATE ASSERTION statement"),
                Err(e) => println!("parse error: {e}"),
            }
            continue;
        }

        match db.execute_sql(input) {
            Ok(results) => {
                for r in results {
                    match r {
                        StatementResult::Ddl => println!("ok"),
                        StatementResult::RowsAffected(n) => println!("{n} row(s) affected"),
                        StatementResult::Rows(rs) => println!("{rs}"),
                    }
                }
            }
            Err(e) => println!("error: {e}"),
        }
    }
    println!("bye");
}
