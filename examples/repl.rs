//! Interactive command-line front-end — the CLI equivalent of the paper's
//! GUI (Figure 3), backed by a shared-database [`Server`]: any number of
//! sessions attach to one database, install assertions, and group updates
//! into `BEGIN … COMMIT` transactions that are checked by `safeCommit` at
//! commit time.
//!
//! Run with: `cargo run --example repl`
//!
//! With `--connect HOST:PORT` the REPL speaks to a running `tintin-server`
//! over the wire protocol instead of an in-process server: one connection =
//! one remote session, so `BEGIN … COMMIT` works across prompts exactly as
//! locally (meta-commands that need engine access are local-only).
//!
//! ```text
//! tintin> CREATE TABLE orders (o_orderkey INT PRIMARY KEY);
//! tintin> CREATE ASSERTION neverNegative CHECK (NOT EXISTS (
//!             SELECT * FROM orders WHERE o_orderkey < 0));
//! tintin> BEGIN;
//! tintin*> INSERT INTO orders VALUES (-1);
//! tintin*> SELECT * FROM orders;   -- read-your-writes: the pending row
//! tintin*> .session new            -- a second session over the same db
//! tintin[2]> SELECT * FROM orders; -- sees nothing: the insert is pending
//! tintin[2]> .session 1
//! tintin[1]*> COMMIT;              -- rejected, transaction rolled back
//! ```
//!
//! The prompt shows `tintin*>` while a transaction is open, and the session
//! id (`tintin[2]>`) once more than one session is attached.

use std::io::{BufRead, Write};
use tintin::CheckStats;
use tintin_session::{Server, Session, StatementOutcome};

const HELP: &str = "\
SQL (terminated by ';'):
  BEGIN; COMMIT; ROLLBACK;            explicit transactions — COMMIT runs
  SAVEPOINT s; ROLLBACK TO s;         safeCommit and applies or rejects the
  RELEASE s;                          whole batch atomically
  CREATE ASSERTION name CHECK (…);    install an assertion (views and all)
  DROP ASSERTION name;                uninstall it
  EXPLAIN ASSERTION name;             the install-time static-analysis report
                                      (linter class, pruned event rules,
                                      residual gates) — `.explain name` for
                                      short
  other DDL / INSERT / DELETE / UPDATE / SELECT
      outside a transaction, DML autocommits (checked immediately);
      inside one it accumulates as this session's pending update —
      your own SELECTs see it (read-your-writes), other sessions don't

Sessions (all attached to the same shared database):
  .sessions         list attached sessions and their transaction state
  .session new      open a new session and switch to it
  .session <n>      switch to session n

Meta-commands (no semicolon needed):
  .tx               transaction status: pending insert/delete row counts,
                    savepoints
  .stats            the last commit's check statistics (views evaluated /
                    skipped by relevance, prepared plans reused / recompiled)
                    plus MVCC row-version state: live/dead versions, average
                    version-chain length, GC passes and versions pruned
  .explain <name>   the EXPLAIN ASSERTION report for one assertion
  explain <query>;  show the access-path plan (scans vs index probes)
  assert <sql>;     queue a CREATE ASSERTION for the next `install`
  install           install queued assertions together (one installation)
  check             dry-run check of pending events
  pending           total pending insertion/deletion counts
  tables            list tables;  views — list views
  assertions        list installed assertions
  demo              load a small orders/lineitem demo schema + data
  help              this text;  quit — exit
";

fn print_stats(stats: &CheckStats) {
    println!("last commit's check statistics:");
    println!(
        "  views: {} installed, {} evaluated, {} skipped ({} by relevance, \
         without consulting their gate)",
        stats.views_total,
        stats.views_evaluated,
        stats.views_skipped,
        stats.views_skipped_relevance
    );
    println!(
        "  prepared plans: {} reused from cache, {} recompiled",
        stats.plans_reused, stats.plans_recompiled
    );
    println!(
        "  aggregate fallbacks: {} evaluated, {} skipped",
        stats.fallbacks_evaluated, stats.fallbacks_skipped
    );
    println!(
        "  normalization dropped {} event row(s); check time {:?}",
        stats.normalization.total(),
        stats.check_time
    );
}

fn print_mvcc_stats(mvcc: &tintin_engine::MvccStats) {
    println!("row-version (MVCC) state:");
    println!(
        "  commit timestamp {}; {} live version(s), {} dead awaiting GC \
         (avg chain length {:.2})",
        mvcc.commit_ts,
        mvcc.live_versions,
        mvcc.dead_versions,
        mvcc.chain_length()
    );
    println!(
        "  garbage collection: {} pass(es), {} version(s) pruned",
        mvcc.gc_runs, mvcc.gc_pruned
    );
}

/// Print the server-wide metrics registry the way `.stats` does remotely:
/// lifetime commit-outcome counters and commit-latency percentiles across
/// *all* sessions (the `CheckStats` above are this repl's last commit only).
fn print_server_metrics(snapshot: &tintin_obs::Snapshot) {
    let c = |name| snapshot.counter(name).unwrap_or(0);
    println!("server-wide commit metrics (all sessions since startup):");
    println!(
        "  attempts {}, committed {}, rejected {}, conflicts {}, errors {}",
        c("tintin_commit_attempts_total"),
        c("tintin_commits_total"),
        c("tintin_commit_rejects_total"),
        c("tintin_commit_conflicts_total"),
        c("tintin_commit_errors_total"),
    );
    if let Some(h) = snapshot.histogram("tintin_commit_seconds") {
        if h.count > 0 {
            println!(
                "  checked-commit latency: {} sample(s), mean {:?}, \
                 p50 {:?}, p95 {:?}, p99.9 {:?}",
                h.count,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.999),
            );
        }
    }
}

/// Print one outcome (the shared wire/local rendering) and capture the
/// commit statistics for `.stats`.
fn print_outcome(outcome: StatementOutcome, last_stats: &mut Option<CheckStats>) {
    println!("{}", tintin_client::render_outcome(&outcome));
    match outcome {
        StatementOutcome::Committed { stats, .. } | StatementOutcome::Rejected { stats, .. } => {
            *last_stats = Some(stats);
        }
        _ => {}
    }
}

fn list_sessions(sessions: &[Session], cur: usize) {
    for (i, s) in sessions.iter().enumerate() {
        let marker = if i == cur { "*" } else { " " };
        let (ins, del) = s.pending_counts();
        let tx = if s.in_transaction() {
            format!("transaction open, pending +{ins}/-{del}")
        } else {
            "autocommit".to_string()
        };
        println!("{marker} session {} — {tx}", s.id());
    }
}

/// Remote mode: a thin loop over `tintin_client::Client` — statements go
/// over the wire, outcomes (including violation details and partial-script
/// failures) come back typed and print like the local ones.
fn remote_repl(addr: &str) {
    let mut client = match tintin_client::Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("TINTIN repl — connected to {addr}; end statements with ';', `quit` to exit.");
    if let Err(e) = tintin_client::run_interactive(&mut client, &format!("tintin@{addr}")) {
        println!("error: {e}");
        std::process::exit(1); // connection (and remote session) gone
    }
    println!("bye");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--connect") {
        let Some(addr) = args.get(i + 1) else {
            eprintln!("usage: repl [--connect HOST:PORT]");
            std::process::exit(2);
        };
        remote_repl(addr);
        return;
    }
    println!("TINTIN repl — type `help` for commands.");
    let server = Server::new();
    let mut sessions: Vec<Session> = vec![server.connect()];
    let mut cur = 0usize;
    let mut queued: Vec<String> = Vec::new();
    let mut last_stats: Option<CheckStats> = None;
    let stdin = std::io::stdin();
    let mut buffer = String::new();

    loop {
        let session = &mut sessions[cur];
        if buffer.is_empty() {
            let star = if session.in_transaction() { "*" } else { "" };
            if sessions.len() > 1 {
                print!("tintin[{}]{star}> ", sessions[cur].id());
            } else {
                print!("tintin{star}> ");
            }
        } else {
            print!("   ...> ");
        }
        std::io::stdout().flush().unwrap();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let session = &mut sessions[cur];

        // Single-word commands work without a terminating semicolon.
        if buffer.is_empty() {
            match line {
                "quit" | "exit" => break,
                "help" => {
                    println!("{HELP}");
                    continue;
                }
                ".sessions" => {
                    list_sessions(&sessions, cur);
                    continue;
                }
                ".session new" => {
                    sessions.push(server.connect());
                    cur = sessions.len() - 1;
                    println!("session {} opened", sessions[cur].id());
                    continue;
                }
                ".stats" => {
                    match &last_stats {
                        Some(stats) => print_stats(stats),
                        None => println!("no commit yet in this repl"),
                    }
                    let mvcc = session.database().read().mvcc_stats();
                    print_mvcc_stats(&mvcc);
                    print_server_metrics(&server.metrics_snapshot());
                    continue;
                }
                ".tx" => {
                    if session.in_transaction() {
                        println!("transaction: open");
                        let pending = session.pending_by_table();
                        if pending.is_empty() {
                            println!("  no pending events");
                        } else {
                            for p in pending {
                                println!(
                                    "  {:<12} +ins: {:>5}   -del: {:>5}",
                                    p.table, p.inserts, p.deletes
                                );
                            }
                        }
                        let sps = session.savepoints();
                        if !sps.is_empty() {
                            println!("  savepoints: {}", sps.join(" → "));
                        }
                    } else {
                        println!("transaction: none (autocommit)");
                        let (ins, del) = session.pending_counts();
                        if ins + del > 0 {
                            println!("  stray pending events: +{ins}/-{del}");
                        }
                    }
                    continue;
                }
                "install" => {
                    if queued.is_empty() {
                        println!("no assertions queued; use `assert CREATE ASSERTION …;`");
                        continue;
                    }
                    let refs: Vec<&str> = queued.iter().map(|s| s.as_str()).collect();
                    match session.install(&refs) {
                        Ok(inst) => {
                            println!(
                                "installed {} assertion(s), {} incremental view(s)",
                                inst.assertions.len(),
                                inst.view_count()
                            );
                            for d in &inst.denial_texts {
                                println!("  denial: {d}");
                            }
                            queued.clear();
                        }
                        Err(e) => println!("install failed: {e}"),
                    }
                    continue;
                }
                "check" => {
                    match session.check_pending() {
                        Ok((violations, stats)) => {
                            println!(
                                "checked in {:?}: {} violation(s)",
                                stats.check_time,
                                violations.len()
                            );
                            for v in violations {
                                println!("  {} →\n{}", v.assertion, v.rows);
                            }
                        }
                        Err(e) => println!("error: {e}"),
                    }
                    continue;
                }
                "pending" => {
                    let (ins, del) = session.pending_counts();
                    println!("pending: {ins} insertion(s), {del} deletion(s)");
                    continue;
                }
                "tables" => {
                    let db = session.database().read();
                    for t in db.table_names() {
                        println!("  {t} ({} rows)", db.table(&t).unwrap().len());
                    }
                    continue;
                }
                "views" => {
                    for v in session.database().read().view_names() {
                        println!("  {v}");
                    }
                    continue;
                }
                "assertions" => {
                    let names = session.assertion_names();
                    if names.is_empty() {
                        println!("  (none installed)");
                    }
                    for n in names {
                        println!("  {n}");
                    }
                    continue;
                }
                "demo" => {
                    match session.execute(
                        "CREATE TABLE orders (o_orderkey INT PRIMARY KEY, o_totalprice REAL);
                         CREATE TABLE lineitem (
                             l_orderkey INT NOT NULL REFERENCES orders,
                             l_linenumber INT NOT NULL,
                             PRIMARY KEY (l_orderkey, l_linenumber));
                         INSERT INTO orders VALUES (1, 10.0), (2, 20.0);
                         INSERT INTO lineitem VALUES (1, 1), (2, 1);",
                    ) {
                        Ok(_) => println!("demo schema loaded (orders, lineitem)"),
                        Err(e) => println!("error: {e}"),
                    }
                    continue;
                }
                _ => {}
            }
            if let Some(rest) = line.strip_prefix(".explain ") {
                let name = rest.trim().trim_end_matches(';');
                match session.execute(&format!("EXPLAIN ASSERTION {name};")) {
                    Ok(outcomes) => {
                        for outcome in outcomes {
                            print_outcome(outcome, &mut last_stats);
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
                continue;
            }
            if let Some(rest) = line.strip_prefix(".session ") {
                match rest.trim().parse::<u64>() {
                    Ok(id) => match sessions.iter().position(|s| s.id() == id) {
                        Some(i) => {
                            cur = i;
                            println!("switched to session {id}");
                        }
                        None => println!("no session {id}; `.sessions` lists them"),
                    },
                    Err(_) => println!("usage: .session new | .session <id>"),
                }
                continue;
            }
        }

        // Accumulate until a terminating semicolon.
        buffer.push_str(line);
        buffer.push('\n');
        if !line.ends_with(';') {
            continue;
        }
        let input = std::mem::take(&mut buffer);
        let input = input.trim().trim_end_matches(';').trim();

        if let Some(rest) = input.strip_prefix("explain ") {
            // `EXPLAIN ASSERTION name` is a real statement (the linter
            // report); bare `explain <query>` shows the access-path plan.
            if !rest.trim_start().to_lowercase().starts_with("assertion ") {
                match session.database().read().explain_sql(rest) {
                    Ok(plan) => print!("{plan}"),
                    Err(e) => println!("error: {e}"),
                }
                continue;
            }
        }

        if let Some(rest) = input.strip_prefix("assert ") {
            match tintin_sql::parse_statement(rest) {
                Ok(tintin_sql::Statement::CreateAssertion(a)) => {
                    println!("queued assertion '{}'", a.name);
                    queued.push(rest.to_string());
                }
                Ok(_) => println!("`assert` expects a CREATE ASSERTION statement"),
                Err(e) => println!("parse error: {e}"),
            }
            continue;
        }

        match session.execute(input) {
            Ok(outcomes) => {
                for outcome in outcomes {
                    print_outcome(outcome, &mut last_stats);
                }
            }
            Err(e) => {
                // The script error knows how far the script got: show what
                // *did* happen before reporting the failing statement.
                for outcome in &e.completed {
                    print_outcome(outcome.clone(), &mut last_stats);
                }
                println!("error: {e}");
                if session.in_transaction() {
                    println!("(the transaction is still open — COMMIT or ROLLBACK)");
                }
            }
        }
    }
    println!("bye");
}
