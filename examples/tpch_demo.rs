//! The paper's §3 demo on the TPC-H schema (Figure 1): build event tables,
//! install assertions of different complexity, propose violating and
//! non-violating updates, call `safeCommit` after each.
//!
//! Run with: `cargo run --release --example tpch_demo [scale-factor]`
//! (default scale factor 0.001 ≈ 1.5 k orders).

use tintin::{CommitOutcome, Tintin};
use tintin_tpch::{
    assertion_sql, database_bytes, human_bytes, Dbgen, UpdateGen, TPCH_SCHEMA_SQL, TPCH_TABLES,
};

fn main() {
    let sf: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.001);

    println!("=== Figure 1: the TPC-H schema ===");
    println!("{}", TPCH_SCHEMA_SQL.trim());

    println!("\n=== dbgen: loading TPC-H at scale factor {sf} ===");
    let gen = Dbgen::new(sf);
    let mut db = gen.generate();
    for t in TPCH_TABLES {
        println!(
            "  {t:<9} {:>8} rows",
            db.table(t).map(|x| x.len()).unwrap_or(0)
        );
    }
    println!("  total data: {}", human_bytes(database_bytes(&db)));

    println!("\n=== installing assertions (event tables + triggers + views) ===");
    let tintin = Tintin::new();
    let inst = tintin.install(&mut db, &assertion_sql()).expect("install");
    for a in &inst.assertions {
        println!(
            "  {:<22} {} denial(s) → {} EDC view(s): {}",
            a.name,
            a.denial_count,
            a.edc_count,
            a.view_names.join(", ")
        );
    }
    println!(
        "  event tables: {}",
        TPCH_TABLES
            .iter()
            .map(|t| format!("ins_{t}/del_{t}"))
            .collect::<Vec<_>>()
            .join(" ")
    );

    let mut ug = UpdateGen::new(gen.counts(), 7);

    println!("\n=== update 1: valid batch (new orders with line items) ===");
    let stats = ug.valid_batch(&mut db, 4_000);
    println!(
        "  proposed: +{} orders, +{} lineitems, -{} orders, -{} lineitems ({})",
        stats.orders_inserted,
        stats.lineitems_inserted,
        stats.orders_deleted,
        stats.lineitems_deleted,
        human_bytes(stats.bytes)
    );
    report(tintin.safe_commit(&mut db, &inst).unwrap());

    println!("\n=== update 2: violating batch (orders without line items) ===");
    let stats = ug.violating_batch(&mut db, 2_000, 2);
    println!(
        "  proposed: +{} orders, +{} lineitems ({})",
        stats.orders_inserted,
        stats.lineitems_inserted,
        human_bytes(stats.bytes)
    );
    report(tintin.safe_commit(&mut db, &inst).unwrap());

    println!("\n=== update 3: valid again (system stays usable) ===");
    ug.valid_batch(&mut db, 2_000);
    report(tintin.safe_commit(&mut db, &inst).unwrap());

    println!("\n=== final consistency check (non-incremental) ===");
    for (name, violations) in tintin.check_current_state(&db, &inst).unwrap() {
        println!("  {name:<22} {} violating rows", violations);
    }
}

fn report(outcome: CommitOutcome) {
    match outcome {
        CommitOutcome::Committed {
            inserted,
            deleted,
            stats,
        } => println!(
            "  → COMMITTED (+{inserted}/-{deleted} rows); check took {:?} \
             ({} views evaluated, {} skipped by the emptiness shortcut)",
            stats.check_time, stats.views_evaluated, stats.views_skipped
        ),
        CommitOutcome::Rejected { violations, stats } => {
            println!(
                "  → REJECTED in {:?} ({} views evaluated, {} skipped)",
                stats.check_time, stats.views_evaluated, stats.views_skipped
            );
            for v in violations {
                println!(
                    "    assertion '{}' (view {}): {} violating tuple(s), e.g. {:?}",
                    v.assertion,
                    v.view,
                    v.rows.len(),
                    v.rows.rows.first().map(|r| r.to_vec()).unwrap_or_default()
                );
            }
        }
    }
}
