//! Assertions on a user-defined (non-TPC-H) schema: a university enrollment
//! domain, plus referential integrity derived automatically from declared
//! foreign keys.
//!
//! Run with: `cargo run --example custom_schema`

use tintin::{CommitOutcome, Tintin};
use tintin_engine::Database;

fn main() {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE department (dept_id INT PRIMARY KEY, name VARCHAR(40) NOT NULL);
         CREATE TABLE course (
             course_id INT PRIMARY KEY,
             dept_id   INT NOT NULL REFERENCES department,
             capacity  INT NOT NULL);
         CREATE TABLE student (student_id INT PRIMARY KEY, name VARCHAR(40) NOT NULL);
         CREATE TABLE enrollment (
             student_id INT NOT NULL REFERENCES student,
             course_id  INT NOT NULL REFERENCES course,
             grade      INT,
             PRIMARY KEY (student_id, course_id));

         INSERT INTO department VALUES (1, 'Computer Science'), (2, 'Mathematics');
         INSERT INTO course VALUES (10, 1, 2), (20, 2, 30);
         INSERT INTO student VALUES (100, 'Ada'), (101, 'Edsger'), (102, 'Grace');
         INSERT INTO enrollment VALUES (100, 10, NULL), (101, 20, NULL);",
    )
    .expect("schema");

    let tintin = Tintin::new();

    // Business rules beyond what keys can express.
    let mut rules: Vec<String> = vec![
        // Every department offers at least one course.
        "CREATE ASSERTION deptHasCourse CHECK (NOT EXISTS (
             SELECT * FROM department d
             WHERE NOT EXISTS (SELECT * FROM course c WHERE c.dept_id = d.dept_id)))"
            .into(),
        // Grades, when present, are between 0 and 10.
        "CREATE ASSERTION gradeInRange CHECK (NOT EXISTS (
             SELECT * FROM enrollment
             WHERE grade IS NOT NULL AND (grade < 0 OR grade > 10)))"
            .into(),
        // Every student is enrolled somewhere.
        "CREATE ASSERTION studentEnrolled CHECK (NOT EXISTS (
             SELECT * FROM student s
             WHERE NOT EXISTS (SELECT * FROM enrollment e
                               WHERE e.student_id = s.student_id)))"
            .into(),
    ];

    // Referential integrity, generated from the declared foreign keys and
    // checked through the same incremental machinery.
    let fk_rules = tintin::assertions_from_foreign_keys(&db);
    println!("derived {} FK assertions:", fk_rules.len());
    for r in &fk_rules {
        println!("  {r}");
    }
    rules.extend(fk_rules);

    // Oops: student 102 (Grace) is not enrolled — fix the data first, then
    // install.
    let refs: Vec<&str> = rules.iter().map(|s| s.as_str()).collect();
    match tintin.install(&mut db, &refs) {
        Err(e) => println!("\ninstall failed as expected: {e}"),
        Ok(_) => unreachable!("initial state violates studentEnrolled"),
    }
    db.execute_sql("INSERT INTO enrollment VALUES (102, 20, NULL)")
        .unwrap();
    let inst = tintin
        .install(&mut db, &refs)
        .expect("state now consistent");
    println!(
        "\ninstalled {} assertions as {} incremental views",
        inst.assertions.len(),
        inst.view_count()
    );

    // A transaction violating the grade range.
    db.execute_sql("INSERT INTO enrollment VALUES (100, 20, 11)")
        .unwrap();
    show("grade 11", tintin.safe_commit(&mut db, &inst).unwrap());

    // A transaction dropping a department's last course.
    db.execute_sql("DELETE FROM course WHERE course_id = 10")
        .unwrap();
    show(
        "drop CS course",
        tintin.safe_commit(&mut db, &inst).unwrap(),
    );

    // A valid transaction: new department with a course; a real grade.
    db.execute_sql(
        "INSERT INTO department VALUES (3, 'Physics');
         INSERT INTO course VALUES (30, 3, 25);
         INSERT INTO enrollment VALUES (100, 20, 9);",
    )
    .unwrap();
    show(
        "new dept + grade",
        tintin.safe_commit(&mut db, &inst).unwrap(),
    );

    // Dangling enrollment caught by a *generated* FK assertion.
    db.execute_sql("INSERT INTO enrollment VALUES (999, 10, NULL)")
        .unwrap();
    show("ghost student", tintin.safe_commit(&mut db, &inst).unwrap());

    println!("\nfinal enrollment:");
    println!("{}", db.query_sql("SELECT * FROM enrollment").unwrap());
}

fn show(label: &str, outcome: CommitOutcome) {
    match outcome {
        CommitOutcome::Committed {
            inserted,
            deleted,
            stats,
        } => println!(
            "[{label}] committed (+{inserted}/-{deleted}) in {:?}",
            stats.check_time
        ),
        CommitOutcome::Rejected { violations, stats } => {
            let names: Vec<&str> = violations.iter().map(|v| v.assertion.as_str()).collect();
            println!(
                "[{label}] rejected in {:?} — violated: {}",
                stats.check_time,
                names.join(", ")
            );
        }
    }
}
