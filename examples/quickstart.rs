//! Quickstart: install an assertion, watch `safeCommit` reject a violating
//! update and commit a fixed one.
//!
//! Run with: `cargo run --example quickstart`

use tintin::{CommitOutcome, Tintin};
use tintin_engine::Database;

fn main() {
    // 1. A database with the paper's two running-example tables.
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE orders (o_orderkey INT PRIMARY KEY, o_totalprice REAL);
         CREATE TABLE lineitem (
             l_orderkey INT NOT NULL REFERENCES orders,
             l_linenumber INT NOT NULL,
             l_quantity INT NOT NULL,
             PRIMARY KEY (l_orderkey, l_linenumber));
         INSERT INTO orders VALUES (1, 173.50);
         INSERT INTO lineitem VALUES (1, 1, 17);",
    )
    .expect("schema and seed data");

    // 2. Install the paper's running-example assertion. TINTIN builds the
    //    ins_/del_ event tables, the capture triggers, and the incremental
    //    violation views.
    let tintin = Tintin::new();
    let installation = tintin
        .install(
            &mut db,
            &["CREATE ASSERTION atLeastOneLineItem CHECK (NOT EXISTS (
                   SELECT * FROM orders AS o
                   WHERE NOT EXISTS (
                       SELECT * FROM lineitem AS l
                       WHERE l.l_orderkey = o.o_orderkey)))"],
        )
        .expect("install");

    println!("Installed {} assertion(s).", installation.assertions.len());
    println!("\nLogic denials:");
    for d in &installation.denial_texts {
        println!("  {d}");
    }
    println!("\nGenerated incremental views:");
    for v in installation.views() {
        println!("  {}\n", v.sql_text);
    }

    // 3. Propose an update that violates the assertion: an order without
    //    any line item. The DML is captured in the event tables — the base
    //    tables stay untouched until safeCommit approves.
    db.execute_sql("INSERT INTO orders VALUES (2, 42.0)")
        .unwrap();
    match tintin.safe_commit(&mut db, &installation).unwrap() {
        CommitOutcome::Rejected { violations, stats } => {
            println!(
                "update rejected in {:?} ({} views evaluated, {} skipped):",
                stats.check_time, stats.views_evaluated, stats.views_skipped
            );
            for v in &violations {
                println!("  assertion '{}' violated by:\n{}", v.assertion, v.rows);
            }
        }
        CommitOutcome::Committed { .. } => unreachable!("this update violates"),
    }

    // 4. Propose the fixed transaction: order + line item together.
    db.execute_sql(
        "INSERT INTO orders VALUES (2, 42.0);
         INSERT INTO lineitem VALUES (2, 1, 3);",
    )
    .unwrap();
    match tintin.safe_commit(&mut db, &installation).unwrap() {
        CommitOutcome::Committed {
            inserted, stats, ..
        } => {
            println!(
                "\nupdate committed: {inserted} rows inserted, checked in {:?}",
                stats.check_time
            );
        }
        CommitOutcome::Rejected { .. } => unreachable!("this update is valid"),
    }

    let rs = db.query_sql("SELECT * FROM orders").unwrap();
    println!("\nfinal orders table:\n{rs}");
}
