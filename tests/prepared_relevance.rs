//! Prepared vio-view plans and the table → check relevance index.
//!
//! Pins down the three properties the commit-path optimization rests on:
//!
//! 1. **Semantics preservation** — relevance skipping (the emptiness
//!    shortcut driven by the index) never changes which violations a commit
//!    reports or which state it produces;
//! 2. **Plan-cache correctness** — DDL (including `DROP ASSERTION` +
//!    re-install) never lets a stale plan run, observed via the
//!    `plans_recompiled` counter and by behaviour;
//! 3. **Access paths** — the generated vio views scan only event tables
//!    (bounded by the update) and reach everything else, event tables
//!    included, through index probes.

use tintin::{Tintin, TintinConfig};
use tintin_engine::Database;
use tintin_session::{Session, StatementOutcome};

/// A schema of `n` independent tables plus one pair linked by id.
fn schema_sql(n: usize) -> String {
    let mut out = String::new();
    for i in 0..n {
        out.push_str(&format!("CREATE TABLE t{i} (id INT PRIMARY KEY, v INT);"));
    }
    out
}

/// One single-table assertion per table (`v` never negative), plus one
/// two-table assertion over t0 × t1.
fn assertions(n: usize) -> Vec<String> {
    let mut out: Vec<String> = (0..n)
        .map(|i| {
            format!(
                "CREATE ASSERTION nonneg{i} CHECK (NOT EXISTS (
                     SELECT * FROM t{i} WHERE v < 0))"
            )
        })
        .collect();
    out.push(
        "CREATE ASSERTION pair_order CHECK (NOT EXISTS (
             SELECT * FROM t0 x, t1 y WHERE x.id = y.id AND x.v > y.v))"
            .to_string(),
    );
    out
}

fn session_with_shortcut(shortcut: bool) -> Session {
    let tintin = Tintin::with_config(TintinConfig {
        emptiness_shortcut: shortcut,
        ..TintinConfig::default()
    });
    Session::with_database_and_checker(Database::new(), tintin)
}

/// Outcome digest of one statement: committed flag plus the sorted violated
/// assertion names (empty when committed).
fn digest(outcome: &StatementOutcome) -> (bool, Vec<String>) {
    match outcome {
        StatementOutcome::Committed { .. } => (true, Vec::new()),
        StatementOutcome::Rejected { violations, .. } => {
            let mut names: Vec<String> = violations.iter().map(|v| v.assertion.clone()).collect();
            names.sort();
            names.dedup();
            (false, names)
        }
        _ => (true, Vec::new()),
    }
}

#[test]
fn relevance_skipping_is_semantics_preserving() {
    const N: usize = 5;
    // The same script, commit by commit, on a shortcut-on and a
    // shortcut-off server: identical violations, identical final state.
    let script: Vec<&str> = vec![
        // touches one table, valid
        "BEGIN; INSERT INTO t0 VALUES (1, 10); COMMIT;",
        // touches one table, violating (negative v)
        "BEGIN; INSERT INTO t2 VALUES (1, -5); COMMIT;",
        // touches several tables, valid
        "BEGIN; INSERT INTO t1 VALUES (1, 20); INSERT INTO t3 VALUES (1, 3); \
         INSERT INTO t4 VALUES (9, 9); COMMIT;",
        // violates the two-table assertion only via the join (t0.v > t1.v)
        "BEGIN; UPDATE t1 SET v = 5 WHERE id = 1; COMMIT;",
        // violates the pair from the other side
        "BEGIN; UPDATE t0 SET v = 99 WHERE id = 1; COMMIT;",
        // deletion rescinds the pair; also touches an unrelated table
        "BEGIN; DELETE FROM t1 WHERE id = 1; INSERT INTO t2 VALUES (2, 2); COMMIT;",
        // autocommitted single statements
        "INSERT INTO t3 VALUES (2, -1)",
        "INSERT INTO t3 VALUES (2, 1)",
        // a commit whose events normalize away entirely (insert + delete)
        "BEGIN; INSERT INTO t4 VALUES (50, 5); DELETE FROM t4 WHERE id = 50; COMMIT;",
    ];

    let mut digests: Vec<Vec<(bool, Vec<String>)>> = Vec::new();
    let mut finals: Vec<Vec<String>> = Vec::new();
    for shortcut in [true, false] {
        let mut s = session_with_shortcut(shortcut);
        s.execute(&schema_sql(N)).unwrap();
        let asserts = assertions(N);
        let refs: Vec<&str> = asserts.iter().map(|a| a.as_str()).collect();
        s.install(&refs).unwrap();
        let mut outcomes = Vec::new();
        for step in &script {
            let out = s.execute(step).unwrap();
            outcomes.push(digest(out.last().unwrap()));
        }
        digests.push(outcomes);
        finals.push(
            (0..N)
                .map(|i| {
                    format!(
                        "{}",
                        s.query_rows(&format!("SELECT id, v FROM t{i} ORDER BY id"))
                            .unwrap()
                    )
                })
                .collect(),
        );
    }
    assert_eq!(
        digests[0], digests[1],
        "shortcut on/off must report identical violations"
    );
    assert_eq!(
        finals[0], finals[1],
        "shortcut on/off must produce identical final states"
    );
}

#[test]
fn relevance_index_skips_untouched_checks_and_reuses_plans() {
    const N: usize = 8;
    let mut s = session_with_shortcut(true);
    s.execute(&schema_sql(N)).unwrap();
    let asserts = assertions(N);
    let refs: Vec<&str> = asserts.iter().map(|a| a.as_str()).collect();
    s.install(&refs).unwrap();

    // Warm-up commit: installation happened in one call, so every plan was
    // prepared at the final catalog generation — nothing recompiles even on
    // the first commit.
    let out = s
        .execute("BEGIN; INSERT INTO t7 VALUES (1, 1); COMMIT;")
        .unwrap();
    let StatementOutcome::Committed { stats, .. } = out.last().unwrap() else {
        panic!("expected commit, got {:?}", out.last());
    };
    assert_eq!(stats.plans_recompiled, 0, "install-time plans are warm");
    assert_eq!(stats.plans_reused, stats.views_evaluated);

    // A commit touching only t5: every check not gated on t5 is skipped by
    // the relevance index without being consulted.
    let out = s
        .execute("BEGIN; INSERT INTO t5 VALUES (1, 2); COMMIT;")
        .unwrap();
    let StatementOutcome::Committed { stats, .. } = out.last().unwrap() else {
        panic!("expected commit, got {:?}", out.last());
    };
    // t5's own check must at least be *considered* — it survives the
    // relevance index, and the residual gate (v < 0, which the valid
    // insert cannot satisfy) may then skip its full plan.
    assert!(
        stats.views_evaluated + stats.views_skipped_residual >= 1,
        "t5's own check must survive the relevance index: {stats:?}"
    );
    assert!(
        stats.views_evaluated < stats.views_total / 2,
        "a one-table update must not evaluate most of {} views (got {})",
        stats.views_total,
        stats.views_evaluated
    );
    assert_eq!(
        stats.views_skipped_relevance + stats.views_skipped_residual + stats.views_evaluated,
        stats.views_total,
        "all gates are single-event here: skipped + evaluated covers everything"
    );
    assert_eq!(stats.plans_recompiled, 0);
    assert_eq!(stats.plans_reused, stats.views_evaluated);

    // With the shortcut off the same update evaluates everything.
    let mut s_off = session_with_shortcut(false);
    s_off.execute(&schema_sql(N)).unwrap();
    let refs: Vec<&str> = asserts.iter().map(|a| a.as_str()).collect();
    s_off.install(&refs).unwrap();
    let out = s_off
        .execute("BEGIN; INSERT INTO t5 VALUES (1, 2); COMMIT;")
        .unwrap();
    let StatementOutcome::Committed { stats, .. } = out.last().unwrap() else {
        panic!("expected commit, got {:?}", out.last());
    };
    assert_eq!(stats.views_evaluated, stats.views_total);
    assert_eq!(stats.views_skipped_relevance, 0);
    assert_eq!(stats.views_skipped_residual, 0);
}

#[test]
fn drop_assertion_and_reinstall_never_runs_a_stale_plan() {
    let mut s = Session::new();
    s.execute("CREATE TABLE t (a INT PRIMARY KEY, b INT)")
        .unwrap();
    // Column-to-column bounds: the analysis can emit no constant residual
    // gate for these, so a valid commit still evaluates the view — which
    // is what lets this test observe the plan cache via the counters.
    s.execute("CREATE ASSERTION bound CHECK (NOT EXISTS (SELECT * FROM t WHERE b < a))")
        .unwrap();
    assert!(s.execute("INSERT INTO t VALUES (11, 1)").unwrap()[0].is_rejected());
    // b = a satisfies both the current rule and the replacement below
    // (whose install re-checks the initial state).
    assert!(s.execute("INSERT INTO t VALUES (1, 1)").unwrap()[0].is_committed());

    // Replace the assertion under the same name (same generated view
    // names!) with the opposite sense of the bound.
    s.execute("DROP ASSERTION bound").unwrap();
    s.execute("CREATE ASSERTION bound CHECK (NOT EXISTS (SELECT * FROM t WHERE b > a))")
        .unwrap();
    // The old rule must be gone and the new one enforced — a stale plan for
    // the old view body (b < a, which 2 < 99 satisfies) would reject this.
    assert!(s.execute("INSERT INTO t VALUES (99, 2)").unwrap()[0].is_committed());
    assert!(s.execute("INSERT INTO t VALUES (3, 7)").unwrap()[0].is_rejected());

    // DDL between commits (an unrelated index) moves the catalog
    // generation: the next commit recompiles and still answers correctly,
    // the one after reuses the fresh plans.
    s.execute("CREATE TABLE aux (x INT PRIMARY KEY); CREATE INDEX t_b ON t (b);")
        .unwrap();
    let out = s.execute("INSERT INTO t VALUES (4, 4)").unwrap();
    let StatementOutcome::Committed { stats, .. } = &out[0] else {
        panic!("expected commit, got {:?}", out[0]);
    };
    assert!(
        stats.plans_recompiled >= 1,
        "DDL must force recompilation, got {stats:?}"
    );
    let out = s.execute("INSERT INTO t VALUES (5, 5)").unwrap();
    let StatementOutcome::Committed { stats, .. } = &out[0] else {
        panic!("expected commit, got {:?}", out[0]);
    };
    assert_eq!(
        stats.plans_recompiled, 0,
        "fresh plans are reused: {stats:?}"
    );
    assert_eq!(stats.plans_reused, stats.views_evaluated);
}

#[test]
fn vio_views_scan_only_event_tables_and_probe_the_rest() {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE orders (o_orderkey INT PRIMARY KEY);
         CREATE TABLE lineitem (
             l_orderkey INT NOT NULL REFERENCES orders, l_linenumber INT NOT NULL,
             PRIMARY KEY (l_orderkey, l_linenumber));",
    )
    .unwrap();
    let tintin = Tintin::new();
    let inst = tintin
        .install(
            &mut db,
            &["CREATE ASSERTION atLeastOneLineItem CHECK (NOT EXISTS (
                 SELECT * FROM orders o WHERE NOT EXISTS (
                     SELECT * FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)))"],
        )
        .unwrap();
    assert!(!inst.views().is_empty());
    let mut probed_event_table = false;
    for v in inst.views() {
        let plan = db.explain(&v.query).unwrap();
        // Every scan is of an event table: vio-view cost is bounded by the
        // update size, never the database size.
        for line in plan.lines() {
            let line = line.trim_start();
            if let Some(rest) = line.strip_prefix("Scan ") {
                let table = rest.split_whitespace().next().unwrap();
                assert!(
                    table.starts_with("ins_") || table.starts_with("del_"),
                    "view {} scans base table {table}:\n{plan}",
                    v.name
                );
            }
            if line.starts_with("Probe ins_") || line.starts_with("Probe del_") {
                probed_event_table = true;
            }
        }
        assert!(
            plan.contains("Probe "),
            "view {} has no index probe at all:\n{plan}",
            v.name
        );
    }
    assert!(
        probed_event_table,
        "event tables must be reachable through Access::Probe, not full scans"
    );
    // The relevance summary covers both base tables.
    let deps = inst.table_dependencies();
    assert!(deps.contains_key("orders") && deps.contains_key("lineitem"));
}
