//! End-to-end acceptance tests for the observability surface: the metrics
//! registry under a concurrent commit storm, and the `STATS` wire command
//! against a live server.
//!
//! The contract under test (see `docs/ARCHITECTURE.md`, "Observability"):
//!
//! * commit-outcome counters are *conserved* — every commit attempt lands
//!   in exactly one of committed / rejected / conflicted / errored, no
//!   matter how many sessions race (`attempts == commits + rejects +
//!   conflicts + errors`);
//! * the per-phase latency histograms agree with the counters: the
//!   commit histogram counts exactly the successful checked commits, the
//!   stage/check histograms also count rejections (which run phases 1–2),
//!   and quantiles are monotone (`p50 <= p99.9`);
//! * gauges return to rest: `tintin_sessions_open` and
//!   `tintin_connections_live` drain to zero once every session and
//!   connection is gone;
//! * a live `tintin-server` answers `STATS` with non-zero commit-phase
//!   histograms and MVCC state after a checked-commit workload, and the
//!   same snapshot renders as parseable Prometheus text exposition.

use std::sync::{Arc, Barrier};
use tintin_client::Client;
use tintin_obs::Snapshot;
use tintin_server::{ServerConfig, WireServer};
use tintin_session::{Server, SessionError, StatementOutcome};

fn counter(s: &Snapshot, name: &str) -> u64 {
    s.counter(name)
        .unwrap_or_else(|| panic!("counter '{name}' missing from snapshot"))
}

fn counter_delta(after: &Snapshot, before: &Snapshot, name: &str) -> u64 {
    counter(after, name) - before.counter(name).unwrap_or(0)
}

fn hist_count_delta(after: &Snapshot, before: &Snapshot, name: &str) -> u64 {
    let a = after
        .histogram(name)
        .unwrap_or_else(|| panic!("histogram '{name}' missing from snapshot"))
        .count;
    let b = before.histogram(name).map_or(0, |h| h.count);
    a - b
}

/// A commit storm over one in-process [`Server`]: racing committers,
/// guaranteed rejections and guaranteed successes, all counted locally by
/// the threads that experienced them — then reconciled exactly against the
/// registry. The conservation equation must balance to the last commit.
#[test]
fn commit_storm_conserves_outcome_counters() {
    const THREADS: usize = 4;
    const ROUNDS: i64 = 6;

    let server = Server::new();
    {
        let mut setup = server.connect();
        setup
            .execute(
                "CREATE TABLE t (a INT PRIMARY KEY, b INT NOT NULL);
                 CREATE ASSERTION nonneg CHECK (NOT EXISTS (
                     SELECT * FROM t WHERE b < 0));",
            )
            .unwrap();
    }
    let before = server.metrics_snapshot();

    let barrier = Arc::new(Barrier::new(THREADS));
    let workers: Vec<_> = (0..THREADS)
        .map(|tid| {
            let server = server.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let mut session = server.connect();
                let (mut commits, mut rejects, mut conflicts) = (0u64, 0u64, 0u64);
                for k in 0..ROUNDS {
                    // Everyone snapshots and stages the same primary key
                    // before anyone commits: first-committer-wins gives one
                    // winner and THREADS-1 typed conflicts per round.
                    barrier.wait();
                    session
                        .execute(&format!("BEGIN; INSERT INTO t VALUES ({k}, {tid});"))
                        .unwrap();
                    barrier.wait();
                    match session.execute("COMMIT") {
                        Ok(out) => {
                            assert!(out.last().unwrap().is_committed());
                            commits += 1;
                        }
                        Err(e) => {
                            assert!(
                                matches!(e.error, SessionError::SerializationConflict { .. }),
                                "loser must get the typed conflict, got {:?}",
                                e.error
                            );
                            conflicts += 1;
                        }
                    }
                    // A violating batch on a thread-unique key: rejected by
                    // the assertion, never a PK race.
                    let out = session
                        .execute(&format!(
                            "BEGIN; INSERT INTO t VALUES ({}, -1); COMMIT;",
                            1_000 + k * 100 + tid as i64
                        ))
                        .unwrap();
                    assert!(out.last().unwrap().is_rejected());
                    rejects += 1;
                    // And a clean batch on a thread-unique key: commits.
                    let out = session
                        .execute(&format!(
                            "BEGIN; INSERT INTO t VALUES ({}, 1); COMMIT;",
                            10_000 + k * 100 + tid as i64
                        ))
                        .unwrap();
                    assert!(out.last().unwrap().is_committed());
                    commits += 1;
                }
                (commits, rejects, conflicts)
            })
        })
        .collect();

    let (mut commits, mut rejects, mut conflicts) = (0u64, 0u64, 0u64);
    for w in workers {
        let (c, r, x) = w.join().unwrap();
        commits += c;
        rejects += r;
        conflicts += x;
    }
    // The interleaving fixed the totals: one race winner per round plus one
    // guaranteed success per thread-round; everyone else conflicted.
    assert_eq!(commits, ROUNDS as u64 * (1 + THREADS as u64));
    assert_eq!(conflicts, ROUNDS as u64 * (THREADS as u64 - 1));
    assert_eq!(rejects, (THREADS as i64 * ROUNDS) as u64);

    let after = server.metrics_snapshot();

    // Conservation: the registry saw exactly what the threads experienced,
    // and every attempt is accounted for by exactly one outcome.
    assert_eq!(
        counter_delta(&after, &before, "tintin_commits_total"),
        commits
    );
    assert_eq!(
        counter_delta(&after, &before, "tintin_commit_rejects_total"),
        rejects
    );
    assert_eq!(
        counter_delta(&after, &before, "tintin_commit_conflicts_total"),
        conflicts
    );
    assert_eq!(
        counter_delta(&after, &before, "tintin_commit_errors_total"),
        0
    );
    assert_eq!(
        counter_delta(&after, &before, "tintin_commit_attempts_total"),
        commits + rejects + conflicts
    );
    // Each rejection carries exactly one violating row here.
    assert_eq!(
        counter_delta(&after, &before, "tintin_violations_total"),
        rejects
    );

    // Histogram/counter agreement: the commit histogram counts exactly the
    // successful checked commits; stage and check also ran for rejections
    // (phases 1–2 complete before the verdict); publish is success-only.
    // Conflicted attempts abort inside phase 1 and record no phase sample.
    assert_eq!(
        hist_count_delta(&after, &before, "tintin_commit_seconds"),
        commits
    );
    assert_eq!(
        hist_count_delta(&after, &before, "tintin_commit_stage_seconds"),
        commits + rejects
    );
    assert_eq!(
        hist_count_delta(&after, &before, "tintin_commit_check_seconds"),
        commits + rejects
    );
    assert_eq!(
        hist_count_delta(&after, &before, "tintin_commit_publish_seconds"),
        commits
    );

    let h = after.histogram("tintin_commit_seconds").unwrap();
    assert!(h.sum_nanos > 0, "commits took literally zero time?");
    assert!(
        h.quantile(0.50) <= h.quantile(0.999),
        "quantiles must be monotone: p50 {:?} > p99.9 {:?}",
        h.quantile(0.50),
        h.quantile(0.999)
    );
    assert!(
        h.quantile(0.999) >= h.mean() / 2,
        "p99.9 below half the mean"
    );

    // Every worker session is gone; the gauge drained to rest.
    assert_eq!(after.gauge("tintin_sessions_open"), Some(0));

    // The engine-state gauges were sampled into the snapshot.
    assert!(after.gauge("tintin_mvcc_commit_ts").unwrap() >= ROUNDS);
    assert!(after.gauge("tintin_mvcc_live_versions").unwrap() > 0);
}

/// Minimal structural validation of the Prometheus text exposition format:
/// comment lines announce types, sample lines are `name[{labels}] value`,
/// and each histogram's cumulative buckets are monotone with `+Inf` equal
/// to its `_count`.
fn assert_prometheus_parses(text: &str) {
    use std::collections::HashMap;
    let mut last_bucket: HashMap<String, f64> = HashMap::new();
    let mut inf_bucket: HashMap<String, f64> = HashMap::new();
    let mut counts: HashMap<String, f64> = HashMap::new();
    let mut samples = 0;
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample line without a value: {line:?}"));
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("unparseable sample value: {line:?}"));
        samples += 1;
        let name = name_part.split('{').next().unwrap();
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name in line {line:?}"
        );
        if let Some(base) = name.strip_suffix("_bucket") {
            let prev = last_bucket.entry(base.to_string()).or_insert(0.0);
            assert!(
                value >= *prev,
                "cumulative buckets went backwards in {line:?}"
            );
            *prev = value;
            if name_part.contains("le=\"+Inf\"") {
                inf_bucket.insert(base.to_string(), value);
            }
        } else if let Some(base) = name.strip_suffix("_count") {
            counts.insert(base.to_string(), value);
        }
    }
    assert!(samples > 0, "no samples in the exposition");
    for (base, count) in &counts {
        if let Some(inf) = inf_bucket.get(base) {
            assert_eq!(
                inf, count,
                "histogram '{base}': +Inf bucket disagrees with _count"
            );
        }
    }
}

/// The acceptance scenario from the issue: a live `tintin-server` answers
/// `STATS` with non-zero commit-phase histograms (and the MVCC state the
/// statement protocol does not carry) after a checked-commit workload —
/// and the snapshot renders as parseable Prometheus text.
#[test]
fn stats_command_reports_a_live_server() {
    let wire =
        WireServer::bind(Server::new(), "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = wire.local_addr().to_string();
    // Keep a handle on the session layer: it outlives the wire front-end,
    // so the gauges can be inspected after shutdown.
    let sessions = wire.sessions().clone();

    let mut c = Client::connect(&addr).unwrap();
    c.execute(
        "CREATE TABLE t (a INT PRIMARY KEY, b INT NOT NULL);
         CREATE ASSERTION nonneg CHECK (NOT EXISTS (
             SELECT * FROM t WHERE b < 0));",
    )
    .unwrap();
    for k in 0..5 {
        let out = c
            .execute(&format!("BEGIN; INSERT INTO t VALUES ({k}, {k}); COMMIT;"))
            .unwrap();
        assert!(out.last().unwrap().is_committed());
        let out = c
            .execute(&format!(
                "BEGIN; INSERT INTO t VALUES ({}, -1); COMMIT;",
                100 + k
            ))
            .unwrap();
        assert!(matches!(
            out.last().unwrap(),
            StatementOutcome::Rejected { .. }
        ));
    }

    let stats = c.server_stats().unwrap();
    let m = &stats.metrics;

    // The commit path left non-zero phase histograms behind.
    for name in [
        "tintin_commit_seconds",
        "tintin_commit_stage_seconds",
        "tintin_commit_check_seconds",
        "tintin_commit_publish_seconds",
    ] {
        let h = m
            .histogram(name)
            .unwrap_or_else(|| panic!("histogram '{name}' missing over the wire"));
        assert!(
            h.count > 0,
            "histogram '{name}' is empty after the workload"
        );
        assert!(h.sum_nanos > 0, "histogram '{name}' has zero total time");
    }
    assert_eq!(counter(m, "tintin_commits_total"), 5);
    assert_eq!(counter(m, "tintin_commit_rejects_total"), 5);
    assert_eq!(counter(m, "tintin_commit_attempts_total"), 10);

    // The wire front-end counted this very connection and its requests
    // (the STATS request itself is counted, though its latency sample is
    // recorded after the snapshot is taken).
    assert_eq!(m.gauge("tintin_connections_live"), Some(1));
    assert_eq!(counter(m, "tintin_connections_accepted_total"), 1);
    assert!(counter(m, "tintin_requests_total") >= 12);
    assert!(counter(m, "tintin_bytes_in_total") > 0);
    assert!(counter(m, "tintin_bytes_out_total") > 0);

    // The MVCC state crossed the wire alongside the registry snapshot.
    assert!(stats.mvcc.commit_ts >= 5);
    assert!(stats.mvcc.live_versions >= 5);

    // The terminal rendering carries the MVCC line; the same snapshot is
    // Prometheus-parseable.
    let text = tintin_client::render_server_stats(&stats);
    assert!(text.contains("tintin_commit_seconds"));
    assert!(text.contains("mvcc: commit_ts"));
    assert_prometheus_parses(&tintin_obs::render_prometheus(m));

    // Connections drain: after the client leaves, the live gauge returns
    // to zero (slot release is asynchronous — poll, don't race).
    c.close();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let snap = sessions.metrics_snapshot();
        if snap.gauge("tintin_connections_live") == Some(0)
            && snap.gauge("tintin_sessions_open") == Some(0)
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "live-connection gauge never drained after close"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    wire.shutdown();

    // After shutdown everything is still at rest, and the lifetime
    // counters survived the front-end.
    let snap = sessions.metrics_snapshot();
    assert_eq!(snap.gauge("tintin_connections_live"), Some(0));
    assert_eq!(snap.gauge("tintin_sessions_open"), Some(0));
    assert_eq!(counter(&snap, "tintin_commits_total"), 5);
}

/// A no-op registry server records nothing — but the STATS command still
/// answers (with an empty metrics snapshot, though the MVCC state is
/// engine truth and stays live) rather than erroring, so probes work
/// against un-instrumented deployments too.
#[test]
fn noop_registry_server_still_answers_stats() {
    let server = Server::with_registry(tintin_obs::Registry::noop());
    let wire = WireServer::bind(server, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = wire.local_addr().to_string();

    let mut c = Client::connect(&addr).unwrap();
    c.execute("CREATE TABLE t (a INT PRIMARY KEY)").unwrap();
    let out = c
        .execute("BEGIN; INSERT INTO t VALUES (1); COMMIT;")
        .unwrap();
    assert!(out.last().unwrap().is_committed());

    let stats = c.server_stats().unwrap();
    // A disabled registry snapshots to nothing at all: no counters, no
    // histograms — and the renderers handle that shape.
    assert_eq!(stats.metrics.counter("tintin_commits_total"), None);
    assert!(stats.metrics.histogram("tintin_commit_seconds").is_none());
    assert!(tintin_obs::render_prometheus(&stats.metrics).is_empty());
    // The MVCC side-channel is engine state, not registry state: it is
    // live even when metrics are disabled.
    assert_eq!(stats.mvcc.commit_ts, 1);
    wire.shutdown();
}
