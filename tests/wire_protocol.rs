//! End-to-end acceptance tests for the TCP wire protocol: real sockets,
//! real threads, one server-side session per connection.
//!
//! The contract under test (see `docs/ARCHITECTURE.md`, "Wire protocol"):
//!
//! * a `tintin-client` can install assertions over the wire and have them
//!   bind *every* connection — a violating commit from another concurrent
//!   connection is rejected with the violation details in the response;
//! * transaction state (BEGIN … COMMIT) spans requests on one connection
//!   and dies with it;
//! * racing committers resolve exactly as in-process sessions do: one
//!   first-committer-wins winner, typed `SerializationConflict` losers,
//!   assertion violators rejected, and readers never observe staged or
//!   torn state;
//! * a failing script reports how far it got (partial outcomes + failing
//!   statement index) across the wire;
//! * the connection limit turns excess connections away with a typed
//!   error instead of hanging them.

use std::sync::{Arc, Barrier};
use tintin_client::{Client, ClientError};
use tintin_server::protocol::WireError;
use tintin_server::{ServerConfig, WireServer};
use tintin_session::{Server, StatementOutcome};

/// A wire server over a fresh database on an ephemeral port.
fn serve() -> (WireServer, String) {
    serve_with(ServerConfig::default())
}

fn serve_with(config: ServerConfig) -> (WireServer, String) {
    let wire = WireServer::bind(Server::new(), "127.0.0.1:0", config).expect("bind");
    let addr = wire.local_addr().to_string();
    (wire, addr)
}

/// The acceptance scenario from the issue: one client process installs an
/// assertion; a violating commit from a second concurrent connection is
/// rejected with the violation reported over the wire.
#[test]
fn assertion_installed_on_one_connection_rejects_another() {
    let (wire, addr) = serve();

    let mut alice = Client::connect(&addr).unwrap();
    alice
        .execute(
            "CREATE TABLE orders (o_orderkey INT PRIMARY KEY, o_totalprice REAL);
             CREATE TABLE lineitem (
                 l_orderkey INT NOT NULL REFERENCES orders,
                 l_linenumber INT NOT NULL,
                 PRIMARY KEY (l_orderkey, l_linenumber));
             CREATE ASSERTION atLeastOneLineItem CHECK (NOT EXISTS (
                 SELECT * FROM orders o WHERE NOT EXISTS (
                     SELECT * FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)));",
        )
        .unwrap();

    // A second, concurrent connection (its own server-side session).
    let mut bob = Client::connect(&addr).unwrap();
    let out = bob
        .execute("BEGIN; INSERT INTO orders VALUES (7, 70.0); COMMIT;")
        .unwrap();
    let StatementOutcome::Rejected { violations, stats } = out.last().unwrap() else {
        panic!("expected a rejection over the wire, got {out:?}");
    };
    assert_eq!(violations[0].assertion, "atleastonelineitem");
    // The violating tuples themselves crossed the wire.
    assert_eq!(violations[0].rows.rows[0][0], tintin_engine::Value::Int(7));
    assert!(stats.views_total > 0);

    // A consistent batch from Bob commits, and Alice sees it.
    let out = bob
        .execute(
            "BEGIN; INSERT INTO orders VALUES (1, 10.0);
             INSERT INTO lineitem VALUES (1, 1); COMMIT;",
        )
        .unwrap();
    assert!(out.last().unwrap().is_committed());
    assert_eq!(alice.query_rows("SELECT * FROM orders").unwrap().len(), 1);
    wire.shutdown();
}

/// One connection = one session: transaction state spans requests, is
/// invisible to other connections, and read-your-writes works remotely.
#[test]
fn transaction_state_spans_requests_and_stays_private() {
    let (wire, addr) = serve();
    let mut a = Client::connect(&addr).unwrap();
    let mut b = Client::connect(&addr).unwrap();
    a.execute("CREATE TABLE t (a INT PRIMARY KEY)").unwrap();

    a.execute("BEGIN").unwrap();
    a.execute("INSERT INTO t VALUES (1)").unwrap();
    // Read-your-writes across separate requests…
    assert_eq!(a.query_rows("SELECT * FROM t").unwrap().len(), 1);
    // …invisible to the other connection…
    assert_eq!(b.query_rows("SELECT * FROM t").unwrap().len(), 0);
    // …and ROLLBACK in a later request undoes it all.
    a.execute("ROLLBACK").unwrap();
    assert_eq!(a.query_rows("SELECT * FROM t").unwrap().len(), 0);

    // An abandoned connection's open transaction dies with its session:
    // nothing leaks into the shared database.
    let mut c = Client::connect(&addr).unwrap();
    c.execute("BEGIN; INSERT INTO t VALUES (9);").unwrap();
    c.close();
    assert_eq!(b.query_rows("SELECT * FROM t").unwrap().len(), 0);
    wire.shutdown();
}

/// A script that fails mid-way reports the partial outcomes, the failing
/// statement and a typed error over the wire — and leaves the session
/// exactly where the failure found it (transaction still open).
#[test]
fn partial_outcomes_cross_the_wire() {
    let (wire, addr) = serve();
    let mut c = Client::connect(&addr).unwrap();
    c.execute("CREATE TABLE t (a INT PRIMARY KEY)").unwrap();

    let err = c
        .execute("BEGIN; INSERT INTO t VALUES (1); CREATE TABLE u (b INT); COMMIT;")
        .unwrap_err();
    let ClientError::Remote(e) = err else {
        panic!("expected a remote script error, got {err:?}");
    };
    assert_eq!(e.statement_index, 2);
    // The statement travels pretty-printed (INT normalizes to INTEGER).
    assert_eq!(e.statement, "CREATE TABLE u (b INTEGER)");
    assert_eq!(e.error, WireError::DdlInTransaction("CREATE TABLE".into()));
    assert_eq!(e.completed.len(), 2);
    assert!(matches!(
        e.completed[0],
        StatementOutcome::TransactionStarted
    ));
    assert!(matches!(e.completed[1], StatementOutcome::RowsAffected(1)));

    // The transaction the script opened is still open on this session.
    let out = c.execute("COMMIT").unwrap();
    assert!(out.last().unwrap().is_committed());
    assert_eq!(c.query_rows("SELECT * FROM t").unwrap().len(), 1);

    // A parse failure is typed too, with nothing completed.
    let err = c.execute("SELEKT 1").unwrap_err();
    let ClientError::Remote(e) = err else {
        panic!("expected a remote parse error");
    };
    assert!(matches!(e.error, WireError::Parse(_)));
    assert!(e.completed.is_empty());
    wire.shutdown();
}

/// Concurrent clients commit racing updates over TCP: assertion violators
/// are rejected, a PK race has exactly one winner per round (losers get the
/// typed `SerializationConflict` and can retry), and a reader connection
/// polling throughout never observes staged events or a torn state.
#[test]
fn racing_commits_over_tcp_resolve_like_local_sessions() {
    const CLIENTS: usize = 6;
    const ROUNDS: i64 = 8;

    let (wire, addr) = serve();
    {
        let mut setup = Client::connect(&addr).unwrap();
        setup
            .execute(
                "CREATE TABLE t (a INT PRIMARY KEY, b INT NOT NULL);
                 CREATE ASSERTION nonneg CHECK (NOT EXISTS (
                     SELECT * FROM t WHERE b < 0));",
            )
            .unwrap();
    }

    // Reader thread: polls the base table and the event table the whole
    // time. The base count may only grow (one winner per round), and the
    // staged events of in-flight commits must never be visible.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let reader = {
        let addr = addr.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            let mut last = 0usize;
            let mut polls = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let n = c.query_rows("SELECT * FROM t").unwrap().len();
                assert!(n >= last, "committed rows went backwards: {last} -> {n}");
                last = n;
                let staged = c.query_rows("SELECT * FROM ins_t").unwrap().len();
                assert_eq!(staged, 0, "reader observed staged events over the wire");
                polls += 1;
            }
            polls
        })
    };

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|tid| {
            let addr = addr.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                let mut wins = 0usize;
                let mut conflicts = 0usize;
                for k in 0..ROUNDS {
                    // Everyone snapshots and stages before anyone commits,
                    // so the PK race is decided by first-committer-wins.
                    barrier.wait();
                    c.execute(&format!("BEGIN; INSERT INTO t VALUES ({k}, {tid});"))
                        .unwrap();
                    barrier.wait();
                    match c.execute("COMMIT") {
                        Ok(out) => {
                            assert!(out.last().unwrap().is_committed());
                            wins += 1;
                        }
                        Err(ClientError::Remote(e)) => {
                            assert!(
                                e.error.is_serialization_conflict(),
                                "loser must get the typed conflict, got {:?}",
                                e.error
                            );
                            conflicts += 1;
                        }
                        Err(e) => panic!("unexpected wire failure: {e}"),
                    }
                    // Everyone also tries a violating batch; the assertion
                    // installed over the wire rejects every one of them.
                    let out = c
                        .execute(&format!(
                            "BEGIN; INSERT INTO t VALUES ({}, -1); COMMIT;",
                            1_000 + k * 100 + tid as i64
                        ))
                        .unwrap();
                    let StatementOutcome::Rejected { violations, .. } = out.last().unwrap() else {
                        panic!("violating commit must be rejected, got {out:?}");
                    };
                    assert_eq!(violations[0].assertion, "nonneg");
                }
                (wins, conflicts)
            })
        })
        .collect();

    let mut total_wins = 0usize;
    let mut total_conflicts = 0usize;
    for w in workers {
        let (wins, conflicts) = w.join().unwrap();
        total_wins += wins;
        total_conflicts += conflicts;
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let polls = reader.join().unwrap();

    // Exactly one winner per round; everyone else lost with a conflict.
    assert_eq!(total_wins, ROUNDS as usize);
    assert_eq!(total_conflicts, (CLIENTS - 1) * ROUNDS as usize);
    assert!(polls > 0, "reader never ran");

    // The surviving rows are exactly one per round, all non-negative.
    let mut check = Client::connect(&addr).unwrap();
    let rows = check.query_rows("SELECT a, b FROM t").unwrap();
    assert_eq!(rows.len(), ROUNDS as usize);
    wire.shutdown();
}

/// Over-limit connections are turned away with a typed error; closing a
/// connection frees its slot.
#[test]
fn connection_limit_is_admission_controlled() {
    let (wire, addr) = serve_with(ServerConfig { max_connections: 2 });
    let mut a = Client::connect(&addr).unwrap();
    let mut b = Client::connect(&addr).unwrap();
    a.ping().unwrap();
    b.ping().unwrap();

    let mut c = Client::connect(&addr).unwrap(); // accepted at TCP level…
    let err = c.execute("SELECT 1").unwrap_err(); // …but turned away
    match err {
        ClientError::Remote(e) => {
            assert!(matches!(e.error, WireError::Server(ref m) if m.contains("limit")));
        }
        // The designed path is the typed busy response, but the server
        // closing its end can race the client's write: an RST may flush
        // the buffered response before the client reads it, surfacing as
        // an I/O error instead. Both mean "turned away, not hung".
        ClientError::Io(_) => {}
        other => panic!("expected the busy error, got {other:?}"),
    }

    // Freeing a slot admits a new connection.
    a.close();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let mut d = Client::connect(&addr).unwrap();
        if d.ping().is_ok() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "slot never freed after close"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    wire.shutdown();
}

/// `Client::query_rows` mirrors `Session::query_rows`: a multi-statement
/// script is rejected *before* anything is sent, so its non-SELECT
/// statements can never execute as a side effect.
#[test]
fn query_rows_rejects_scripts_without_executing_them() {
    let (wire, addr) = serve();
    let mut c = Client::connect(&addr).unwrap();
    c.execute("CREATE TABLE t (a INT PRIMARY KEY); INSERT INTO t VALUES (1);")
        .unwrap();
    let err = c.query_rows("SELECT * FROM t; DELETE FROM t").unwrap_err();
    assert!(
        matches!(err, ClientError::InvalidQuery(_)),
        "expected InvalidQuery, got {err:?}"
    );
    // The DELETE never reached the server.
    assert_eq!(c.query_rows("SELECT * FROM t").unwrap().len(), 1);
    wire.shutdown();
}

/// An oversized frame announcement gets the documented typed `SERVER`
/// error response before the connection closes — not a silent drop.
#[test]
fn oversized_frame_gets_a_typed_error() {
    use std::io::Write;
    use tintin_server::protocol::{decode_response, read_frame, MAX_FRAME};

    let (wire, addr) = serve();
    let mut raw = std::net::TcpStream::connect(&addr).unwrap();
    // A well-formed length prefix announcing more than the cap.
    raw.write_all(&((MAX_FRAME as u32) + 1).to_be_bytes())
        .unwrap();
    raw.flush().unwrap();
    let payload = read_frame(&mut raw)
        .expect("typed response expected")
        .expect("typed response, not EOF");
    let err = decode_response(&payload).unwrap().unwrap_err();
    assert!(
        matches!(err.error, WireError::Server(_)),
        "expected a SERVER error, got {:?}",
        err.error
    );
    // The stream is desynchronized; the server then closes it.
    assert!(read_frame(&mut raw).map_or(true, |f| f.is_none()));
    wire.shutdown();
}

/// Handler bookkeeping is released per connection: after a burst of
/// short-lived connections, the server's admission count returns to the
/// live set (no leaked slots), and new connections are still admitted.
#[test]
fn short_lived_connections_release_their_slots() {
    let (wire, addr) = serve_with(ServerConfig { max_connections: 4 });
    let mut served = 0usize;
    for _ in 0..32 {
        // Slot release is asynchronous (the handler thread must observe
        // the close), so a burst connect may transiently be turned away;
        // only *permanent* exhaustion is a leak.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let mut c = Client::connect(&addr).unwrap();
            if c.ping().is_ok() {
                served += 1;
                c.close();
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "admission slots leaked during the burst"
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    }
    // Far more connections than the limit have come and gone; a new one
    // must still be admitted (leaked slots would exhaust the limit), and
    // the active count must settle back to just it.
    let mut c = Client::connect(&addr).unwrap();
    c.ping().unwrap();
    served += 1;
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while wire.active_connections() > 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "admission slots leaked: {} active with one live client",
            wire.active_connections()
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(wire.connections_served() >= served);
    wire.shutdown();
}

/// Graceful shutdown: the server stops accepting, live clients get a
/// broken connection (not a hang), and `shutdown()` returns with all
/// threads joined — after which the port is free again.
#[test]
fn graceful_shutdown_interrupts_live_connections() {
    let (wire, addr) = serve();
    let mut c = Client::connect(&addr).unwrap();
    c.execute("CREATE TABLE t (a INT PRIMARY KEY)").unwrap();
    wire.shutdown();

    let err = c.execute("SELECT * FROM t");
    assert!(err.is_err(), "request on a shut-down server must fail");
    // The listener is gone: fresh connects are refused (or reset).
    assert!(
        Client::connect(&addr).is_err() || {
            let mut c2 = Client::connect(&addr).unwrap();
            c2.ping().is_err()
        }
    );
}
