//! Cross-crate integration tests: the full install → update → safeCommit
//! lifecycle on handwritten scenarios.

use tintin::{CommitOutcome, EdcConfig, Tintin, TintinConfig, TintinError};
use tintin_engine::{Database, Value};

const AT_LEAST_ONE_LINEITEM: &str = "CREATE ASSERTION atLeastOneLineItem CHECK (NOT EXISTS (
    SELECT * FROM orders AS o
    WHERE NOT EXISTS (
        SELECT * FROM lineitem AS l
        WHERE l.l_orderkey = o.o_orderkey)))";

fn orders_db() -> Database {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE orders (o_orderkey INT PRIMARY KEY, o_totalprice REAL);
         CREATE TABLE lineitem (
             l_orderkey INT NOT NULL REFERENCES orders,
             l_linenumber INT NOT NULL,
             l_quantity INT NOT NULL,
             PRIMARY KEY (l_orderkey, l_linenumber));
         INSERT INTO orders VALUES (1, 10.0), (2, 20.0);
         INSERT INTO lineitem VALUES (1, 1, 5), (2, 1, 3);",
    )
    .unwrap();
    db
}

#[test]
fn install_creates_event_tables_and_views() {
    let mut db = orders_db();
    let tintin = Tintin::new();
    let inst = tintin.install(&mut db, &[AT_LEAST_ONE_LINEITEM]).unwrap();

    // Event tables for every base table.
    for t in ["ins_orders", "del_orders", "ins_lineitem", "del_lineitem"] {
        assert!(db.table(t).is_some(), "missing event table {t}");
    }
    // Two incremental views (EDC 4 and EDC 6; EDC 5 pruned by FK).
    assert_eq!(inst.view_count(), 2);
    assert_eq!(inst.assertions.len(), 1);
    assert_eq!(inst.assertions[0].edc_count, 2);
    for name in &inst.assertions[0].view_names {
        assert!(db.view(name).is_some(), "view {name} not stored");
    }
    // Denial pretty-printing is exposed for demos.
    assert!(inst.denial_texts[0].contains("orders"));
}

#[test]
fn rejects_insert_of_order_without_lineitem() {
    let mut db = orders_db();
    let tintin = Tintin::new();
    let inst = tintin.install(&mut db, &[AT_LEAST_ONE_LINEITEM]).unwrap();

    db.execute_sql("INSERT INTO orders VALUES (3, 30.0)")
        .unwrap();
    let outcome = tintin.safe_commit(&mut db, &inst).unwrap();
    let CommitOutcome::Rejected { violations, .. } = outcome else {
        panic!("expected rejection");
    };
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].assertion, "atleastonelineitem");
    assert_eq!(violations[0].rows.len(), 1);
    assert_eq!(violations[0].rows.rows[0][0], Value::Int(3));

    // Update discarded, base unchanged, events truncated.
    assert_eq!(db.table("orders").unwrap().len(), 2);
    assert_eq!(db.pending_counts(), (0, 0));
}

#[test]
fn commits_insert_of_order_with_lineitem() {
    let mut db = orders_db();
    let tintin = Tintin::new();
    let inst = tintin.install(&mut db, &[AT_LEAST_ONE_LINEITEM]).unwrap();

    db.execute_sql(
        "INSERT INTO orders VALUES (3, 30.0);
         INSERT INTO lineitem VALUES (3, 1, 9);",
    )
    .unwrap();
    let outcome = tintin.safe_commit(&mut db, &inst).unwrap();
    let CommitOutcome::Committed {
        inserted,
        deleted,
        stats,
    } = outcome
    else {
        panic!("expected commit");
    };
    assert_eq!(inserted, 2);
    assert_eq!(deleted, 0);
    assert!(stats.views_evaluated >= 1);
    assert_eq!(db.table("orders").unwrap().len(), 3);
    assert_eq!(db.table("lineitem").unwrap().len(), 3);
}

#[test]
fn rejects_delete_of_last_lineitem() {
    let mut db = orders_db();
    let tintin = Tintin::new();
    let inst = tintin.install(&mut db, &[AT_LEAST_ONE_LINEITEM]).unwrap();

    db.execute_sql("DELETE FROM lineitem WHERE l_orderkey = 1")
        .unwrap();
    let outcome = tintin.safe_commit(&mut db, &inst).unwrap();
    assert!(!outcome.is_committed());
    assert_eq!(db.table("lineitem").unwrap().len(), 2, "delete rolled back");
}

#[test]
fn commits_delete_of_one_of_two_lineitems() {
    let mut db = orders_db();
    db.execute_sql("INSERT INTO lineitem VALUES (1, 2, 7)")
        .unwrap();
    let tintin = Tintin::new();
    let inst = tintin.install(&mut db, &[AT_LEAST_ONE_LINEITEM]).unwrap();

    // Order 1 now has two line items; deleting one is fine.
    db.execute_sql("DELETE FROM lineitem WHERE l_orderkey = 1 AND l_linenumber = 1")
        .unwrap();
    let outcome = tintin.safe_commit(&mut db, &inst).unwrap();
    assert!(outcome.is_committed(), "{outcome:?}");
    assert_eq!(db.table("lineitem").unwrap().len(), 2);
}

#[test]
fn commits_delete_of_order_with_its_lineitems() {
    let mut db = orders_db();
    let tintin = Tintin::new();
    let inst = tintin.install(&mut db, &[AT_LEAST_ONE_LINEITEM]).unwrap();

    db.execute_sql(
        "DELETE FROM orders WHERE o_orderkey = 1;
         DELETE FROM lineitem WHERE l_orderkey = 1;",
    )
    .unwrap();
    let outcome = tintin.safe_commit(&mut db, &inst).unwrap();
    assert!(outcome.is_committed(), "{outcome:?}");
    assert_eq!(db.table("orders").unwrap().len(), 1);
    assert_eq!(db.table("lineitem").unwrap().len(), 1);
}

#[test]
fn emptiness_shortcut_skips_unrelated_views() {
    let mut db = orders_db();
    let tintin = Tintin::new();
    let inst = tintin.install(&mut db, &[AT_LEAST_ONE_LINEITEM]).unwrap();

    // A pure lineitem insertion cannot violate either EDC (one is gated on
    // ins_orders, the other on del_lineitem) — all views skipped.
    db.execute_sql("INSERT INTO lineitem VALUES (2, 2, 4)")
        .unwrap();
    let (violations, stats) = tintin.check_pending(&mut db, &inst).unwrap();
    assert!(violations.is_empty());
    assert_eq!(stats.views_evaluated, 0);
    assert_eq!(stats.views_skipped, 2);

    // With the shortcut disabled, the views run and still find nothing.
    let tintin_noshort = Tintin::with_config(TintinConfig {
        emptiness_shortcut: false,
        ..TintinConfig::default()
    });
    let (violations, stats) = tintin_noshort.check_pending(&mut db, &inst).unwrap();
    assert!(violations.is_empty());
    assert_eq!(stats.views_skipped, 0);
    assert_eq!(stats.views_evaluated, 2);
    db.truncate_events();
}

#[test]
fn initial_state_violation_is_reported_at_install() {
    let mut db = orders_db();
    db.execute_sql("INSERT INTO orders VALUES (9, 1.0)")
        .unwrap(); // no line item
    let tintin = Tintin::new();
    let err = tintin
        .install(&mut db, &[AT_LEAST_ONE_LINEITEM])
        .unwrap_err();
    assert!(
        matches!(err, TintinError::InitialStateViolated { .. }),
        "{err}"
    );
}

#[test]
fn install_rejects_non_assertions_and_duplicates() {
    let mut db = orders_db();
    let tintin = Tintin::new();
    assert!(matches!(
        tintin.install(&mut db, &["SELECT * FROM orders"]),
        Err(TintinError::NotAnAssertion(_))
    ));
    assert!(matches!(
        tintin.install(&mut db, &[AT_LEAST_ONE_LINEITEM, AT_LEAST_ONE_LINEITEM]),
        Err(TintinError::DuplicateAssertion(_))
    ));
}

#[test]
fn multiple_assertions_report_the_right_one() {
    let mut db = orders_db();
    let tintin = Tintin::new();
    let inst = tintin
        .install(
            &mut db,
            &[
                AT_LEAST_ONE_LINEITEM,
                "CREATE ASSERTION positiveQuantity CHECK (NOT EXISTS (
                     SELECT * FROM lineitem WHERE l_quantity <= 0))",
            ],
        )
        .unwrap();

    db.execute_sql("INSERT INTO lineitem VALUES (1, 9, 0)")
        .unwrap();
    let outcome = tintin.safe_commit(&mut db, &inst).unwrap();
    let CommitOutcome::Rejected { violations, .. } = outcome else {
        panic!()
    };
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].assertion, "positivequantity");
}

#[test]
fn fk_assertions_from_metadata_work_end_to_end() {
    let mut db = orders_db();
    let tintin = Tintin::new();
    let fk_sql = tintin::assertions_from_foreign_keys(&db);
    assert_eq!(fk_sql.len(), 1, "lineitem → orders");
    let refs: Vec<&str> = fk_sql.iter().map(|s| s.as_str()).collect();
    let inst = tintin.install(&mut db, &refs).unwrap();

    // Inserting a dangling lineitem violates the generated FK assertion.
    db.execute_sql("INSERT INTO lineitem VALUES (99, 1, 1)")
        .unwrap();
    let outcome = tintin.safe_commit(&mut db, &inst).unwrap();
    assert!(!outcome.is_committed());

    // Deleting an order that still has lineitems violates it too.
    db.execute_sql("DELETE FROM orders WHERE o_orderkey = 1")
        .unwrap();
    let outcome = tintin.safe_commit(&mut db, &inst).unwrap();
    assert!(!outcome.is_committed());

    // Deleting the order together with its lineitems is fine.
    db.execute_sql(
        "DELETE FROM orders WHERE o_orderkey = 1;
         DELETE FROM lineitem WHERE l_orderkey = 1;",
    )
    .unwrap();
    let outcome = tintin.safe_commit(&mut db, &inst).unwrap();
    assert!(outcome.is_committed(), "{outcome:?}");
}

#[test]
fn incremental_matches_full_recheck_on_scenarios() {
    // For a batch of handwritten updates, the incremental verdict must
    // equal the non-incremental one.
    let updates = [
        "INSERT INTO orders VALUES (3, 1.0)",
        "INSERT INTO orders VALUES (3, 1.0); INSERT INTO lineitem VALUES (3, 1, 1)",
        "DELETE FROM lineitem WHERE l_orderkey = 2",
        "DELETE FROM orders WHERE o_orderkey = 2; DELETE FROM lineitem WHERE l_orderkey = 2",
        "INSERT INTO lineitem VALUES (1, 5, 2)",
        "DELETE FROM lineitem WHERE l_quantity > 100",
    ];
    for update in updates {
        // Incremental.
        let mut db1 = orders_db();
        let t = Tintin::new();
        let inst1 = t.install(&mut db1, &[AT_LEAST_ONE_LINEITEM]).unwrap();
        db1.execute_sql(update).unwrap();
        let (violations, _) = t.check_pending(&mut db1, &inst1).unwrap();
        let incremental_ok = violations.is_empty();

        // Ground truth: apply to a fresh DB (no capture) and run the
        // original query.
        let mut db2 = orders_db();
        db2.execute_sql(update).unwrap();
        let full = db2
            .query_sql(
                "SELECT * FROM orders o WHERE NOT EXISTS (
                     SELECT * FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)",
            )
            .unwrap();
        let full_ok = full.is_empty();
        assert_eq!(
            incremental_ok, full_ok,
            "verdicts diverge for update: {update}"
        );
    }
}

#[test]
fn full_recheck_baseline_agrees_and_rolls_back() {
    let mut db = orders_db();
    let tintin = Tintin::new();
    let inst = tintin.install(&mut db, &[AT_LEAST_ONE_LINEITEM]).unwrap();

    db.execute_sql("INSERT INTO orders VALUES (7, 1.0)")
        .unwrap();
    let full = tintin.full_recheck(&mut db, &inst).unwrap();
    assert!(!full.committed);
    assert_eq!(full.violations.len(), 1);
    assert_eq!(db.table("orders").unwrap().len(), 2, "rolled back");

    db.execute_sql("INSERT INTO orders VALUES (7, 1.0); INSERT INTO lineitem VALUES (7, 1, 1);")
        .unwrap();
    let full = tintin.full_recheck(&mut db, &inst).unwrap();
    assert!(full.committed);
    assert_eq!(db.table("orders").unwrap().len(), 3);
}

#[test]
fn optimizer_ablation_preserves_verdicts() {
    // The unoptimized EDC set (more views) must reach the same verdicts.
    let updates = [
        "INSERT INTO orders VALUES (3, 1.0)",
        "INSERT INTO orders VALUES (3, 1.0); INSERT INTO lineitem VALUES (3, 1, 1)",
        "DELETE FROM lineitem WHERE l_orderkey = 2",
    ];
    for update in updates {
        let mut verdicts = Vec::new();
        for (optimize, fks) in [(true, true), (true, false), (false, false)] {
            let mut db = orders_db();
            let t = Tintin::with_config(TintinConfig {
                edc: EdcConfig {
                    optimize,
                    assume_fks_valid: fks,
                    ..EdcConfig::default()
                },
                ..TintinConfig::default()
            });
            let inst = t.install(&mut db, &[AT_LEAST_ONE_LINEITEM]).unwrap();
            db.execute_sql(update).unwrap();
            let (violations, _) = t.check_pending(&mut db, &inst).unwrap();
            verdicts.push(violations.is_empty());
            db.truncate_events();
        }
        assert!(
            verdicts.windows(2).all(|w| w[0] == w[1]),
            "ablation verdicts diverge for {update}: {verdicts:?}"
        );
    }
}

#[test]
fn unoptimized_install_has_more_views() {
    let mut db1 = orders_db();
    let t1 = Tintin::new();
    let i1 = t1.install(&mut db1, &[AT_LEAST_ONE_LINEITEM]).unwrap();

    let mut db2 = orders_db();
    let t2 = Tintin::with_config(TintinConfig {
        edc: EdcConfig {
            optimize: false,
            assume_fks_valid: false,
            ..EdcConfig::default()
        },
        ..TintinConfig::default()
    });
    let i2 = t2.install(&mut db2, &[AT_LEAST_ONE_LINEITEM]).unwrap();
    assert!(
        i2.view_count() > i1.view_count(),
        "optimizations should reduce the number of EDC views ({} vs {})",
        i2.view_count(),
        i1.view_count()
    );
}

#[test]
fn reject_then_fix_then_commit_flow() {
    // The §3 demo flow: a rejected update leaves the system ready for a new
    // proposal.
    let mut db = orders_db();
    let tintin = Tintin::new();
    let inst = tintin.install(&mut db, &[AT_LEAST_ONE_LINEITEM]).unwrap();

    db.execute_sql("INSERT INTO orders VALUES (5, 1.0)")
        .unwrap();
    assert!(!tintin.safe_commit(&mut db, &inst).unwrap().is_committed());

    db.execute_sql("INSERT INTO orders VALUES (5, 1.0)")
        .unwrap();
    db.execute_sql("INSERT INTO lineitem VALUES (5, 1, 2)")
        .unwrap();
    assert!(tintin.safe_commit(&mut db, &inst).unwrap().is_committed());

    // And the final state satisfies the assertion.
    let checks = tintin.check_current_state(&db, &inst).unwrap();
    assert!(checks.iter().all(|(_, n)| *n == 0));
}

#[test]
fn union_assertion_lifecycle() {
    let mut db = orders_db();
    let tintin = Tintin::new();
    let inst = tintin
        .install(
            &mut db,
            &["CREATE ASSERTION keysNonNegative CHECK (NOT EXISTS (
                 SELECT o_orderkey FROM orders WHERE o_orderkey < 0
                 UNION
                 SELECT l_orderkey FROM lineitem WHERE l_orderkey < 0))"],
        )
        .unwrap();
    assert_eq!(inst.assertions[0].denial_count, 2);

    db.execute_sql("INSERT INTO orders VALUES (-1, 0.0); INSERT INTO lineitem VALUES (-1, 1, 1);")
        .unwrap();
    assert!(!tintin.safe_commit(&mut db, &inst).unwrap().is_committed());

    db.execute_sql("INSERT INTO orders VALUES (10, 0.0); INSERT INTO lineitem VALUES (10, 1, 1);")
        .unwrap();
    assert!(tintin.safe_commit(&mut db, &inst).unwrap().is_committed());
}

#[test]
fn generated_views_are_printable_portable_sql() {
    let mut db = orders_db();
    let tintin = Tintin::new();
    let inst = tintin.install(&mut db, &[AT_LEAST_ONE_LINEITEM]).unwrap();
    for v in inst.views() {
        // Portable: plain CREATE VIEW statements that reparse.
        let stmt = tintin_sql::parse_statement(&v.sql_text).unwrap();
        assert!(matches!(stmt, tintin_sql::Statement::CreateView(_)));
    }
}

#[test]
fn delete_and_reinsert_same_row_is_clean_noop() {
    let mut db = orders_db();
    let tintin = Tintin::new();
    let inst = tintin.install(&mut db, &[AT_LEAST_ONE_LINEITEM]).unwrap();

    db.execute_sql(
        "DELETE FROM lineitem WHERE l_orderkey = 1;
         INSERT INTO lineitem VALUES (1, 1, 5);",
    )
    .unwrap();
    let outcome = tintin.safe_commit(&mut db, &inst).unwrap();
    let CommitOutcome::Committed { stats, .. } = outcome else {
        panic!("cancelled events should commit cleanly");
    };
    assert_eq!(stats.normalization.cancelled, 1);
    assert_eq!(db.table("lineitem").unwrap().len(), 2);
}

#[test]
fn update_statement_checked_incrementally() {
    // UPDATE decomposes into del+ins events and flows through safeCommit.
    let mut db = orders_db();
    let tintin = Tintin::new();
    let inst = tintin
        .install(
            &mut db,
            &[
                AT_LEAST_ONE_LINEITEM,
                "CREATE ASSERTION positiveQuantity CHECK (NOT EXISTS (
                     SELECT * FROM lineitem WHERE l_quantity <= 0))",
            ],
        )
        .unwrap();

    // Valid update: bump a quantity.
    db.execute_sql("UPDATE lineitem SET l_quantity = l_quantity + 1 WHERE l_orderkey = 1")
        .unwrap();
    assert!(tintin.safe_commit(&mut db, &inst).unwrap().is_committed());
    let rs = db
        .query_sql("SELECT l_quantity FROM lineitem WHERE l_orderkey = 1")
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(6));

    // Violating update: zero out a quantity.
    db.execute_sql("UPDATE lineitem SET l_quantity = 0 WHERE l_orderkey = 2")
        .unwrap();
    let outcome = tintin.safe_commit(&mut db, &inst).unwrap();
    let CommitOutcome::Rejected { violations, .. } = outcome else {
        panic!("expected rejection")
    };
    assert_eq!(violations[0].assertion, "positivequantity");
    let rs = db
        .query_sql("SELECT l_quantity FROM lineitem WHERE l_orderkey = 2")
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(3), "update rolled back");

    // Violating update via key migration: moving a lineitem to another
    // order strands order 2.
    db.execute_sql("UPDATE lineitem SET l_orderkey = 1 WHERE l_orderkey = 2")
        .unwrap();
    let outcome = tintin.safe_commit(&mut db, &inst).unwrap();
    assert!(
        !outcome.is_committed(),
        "stranding order 2 must be rejected"
    );
}

#[test]
fn aggregate_assertion_checked_via_fallback() {
    // The paper lists aggregates as future work; here they are accepted in
    // fallback mode: re-run the original query on the hypothetical new
    // state, gated on the assertion's tables.
    let mut db = orders_db();
    let tintin = Tintin::new();
    let inst = tintin
        .install(
            &mut db,
            &[
                AT_LEAST_ONE_LINEITEM,
                "CREATE ASSERTION atMostThreeLines CHECK (NOT EXISTS (
                     SELECT l_orderkey FROM lineitem
                     GROUP BY l_orderkey HAVING COUNT(*) > 3))",
            ],
        )
        .unwrap();
    assert_eq!(inst.fallbacks.len(), 1);
    assert_eq!(inst.fallbacks[0].tables, vec!["lineitem"]);

    // Three more lineitems for order 1: exactly 4 → violation.
    db.execute_sql("INSERT INTO lineitem VALUES (1, 2, 1), (1, 3, 1), (1, 4, 1)")
        .unwrap();
    let outcome = tintin.safe_commit(&mut db, &inst).unwrap();
    let CommitOutcome::Rejected { violations, stats } = outcome else {
        panic!("4 lineitems must violate atMostThreeLines");
    };
    assert_eq!(violations[0].assertion, "atmostthreelines");
    assert_eq!(stats.fallbacks_evaluated, 1);
    assert_eq!(db.table("lineitem").unwrap().len(), 2, "rejected");

    // Two more lineitems (3 total) commit fine.
    db.execute_sql("INSERT INTO lineitem VALUES (1, 2, 1), (1, 3, 1)")
        .unwrap();
    assert!(tintin.safe_commit(&mut db, &inst).unwrap().is_committed());

    // An update not touching lineitem skips the fallback entirely.
    db.execute_sql("INSERT INTO orders VALUES (9, 1.0); INSERT INTO lineitem VALUES (9, 1, 1);")
        .unwrap();
    // (touches lineitem, so evaluated) — use an orders-only delete instead:
    tintin.safe_commit(&mut db, &inst).unwrap();
    db.execute_sql(
        "DELETE FROM orders WHERE o_orderkey = 9; DELETE FROM lineitem WHERE l_orderkey = 9;",
    )
    .unwrap();
    let (_, stats) = tintin.check_pending(&mut db, &inst).unwrap();
    assert_eq!(
        stats.fallbacks_evaluated, 1,
        "lineitem deletes gate it open"
    );
    db.truncate_events();

    // Customer-free schema here; an orders-only insert leaves lineitem
    // events empty → fallback skipped.
    db.execute_sql("INSERT INTO orders VALUES (12, 1.0)")
        .unwrap();
    let (_, stats) = tintin.check_pending(&mut db, &inst).unwrap();
    assert_eq!(stats.fallbacks_skipped, 1);
    db.truncate_events();
}

#[test]
fn aggregate_fallback_can_be_disabled() {
    let mut db = orders_db();
    let tintin = Tintin::with_config(TintinConfig {
        aggregate_fallback: false,
        ..TintinConfig::default()
    });
    let err = tintin
        .install(
            &mut db,
            &["CREATE ASSERTION agg CHECK (NOT EXISTS (
                  SELECT l_orderkey FROM lineitem GROUP BY l_orderkey HAVING COUNT(*) > 3))"],
        )
        .unwrap_err();
    assert!(matches!(err, TintinError::Translate(_)), "{err}");
}

#[test]
fn export_sql_is_a_portable_script() {
    let mut db = orders_db();
    let tintin = Tintin::new();
    let inst = tintin.install(&mut db, &[AT_LEAST_ONE_LINEITEM]).unwrap();
    let script = inst.export_sql(&db);
    // Event tables for both base tables plus the two views.
    for frag in [
        "CREATE TABLE ins_orders",
        "CREATE TABLE del_orders",
        "CREATE TABLE ins_lineitem",
        "CREATE TABLE del_lineitem",
        "CREATE VIEW vio_atleastonelineitem_0_0",
        "CREATE VIEW vio_atleastonelineitem_0_1",
    ] {
        assert!(script.contains(frag), "missing `{frag}` in:\n{script}");
    }
    // The whole script parses as SQL (comments included).
    let stmts = tintin_sql::parse_statements(&script).unwrap();
    assert_eq!(stmts.len(), 6);
    // And it installs cleanly on a fresh database with the base schema.
    let mut fresh = Database::new();
    fresh
        .execute_sql(
            "CREATE TABLE orders (o_orderkey INT PRIMARY KEY, o_totalprice REAL);
             CREATE TABLE lineitem (l_orderkey INT NOT NULL, l_linenumber INT NOT NULL,
                 l_quantity INT NOT NULL, PRIMARY KEY (l_orderkey, l_linenumber));",
        )
        .unwrap();
    fresh.execute_sql(&script).unwrap();
    assert_eq!(fresh.view_names().len(), 2);
}

#[test]
fn is_null_assertion_end_to_end() {
    // Completeness constraint: no order may have a NULL total price.
    let mut db = orders_db();
    let tintin = Tintin::new();
    let inst = tintin
        .install(
            &mut db,
            &["CREATE ASSERTION priceKnown CHECK (NOT EXISTS (
                  SELECT * FROM orders WHERE o_totalprice IS NULL))"],
        )
        .unwrap();

    db.execute_sql("INSERT INTO orders VALUES (8, NULL)")
        .unwrap();
    assert!(!tintin.safe_commit(&mut db, &inst).unwrap().is_committed());

    db.execute_sql("INSERT INTO orders VALUES (8, 80.0)")
        .unwrap();
    assert!(tintin.safe_commit(&mut db, &inst).unwrap().is_committed());
}

#[test]
fn view_generation_is_deterministic() {
    // Two installs on identical databases produce byte-identical SQL.
    let gen = || {
        let mut db = orders_db();
        let tintin = Tintin::new();
        let inst = tintin.install(&mut db, &[AT_LEAST_ONE_LINEITEM]).unwrap();
        inst.views()
            .iter()
            .map(|v| v.sql_text.clone())
            .collect::<Vec<_>>()
    };
    assert_eq!(gen(), gen());
}

#[test]
fn three_level_nesting_assertion() {
    // Every order of a "big spender" (totalprice > 15) has a line item with
    // quantity over 2 — exercises derived-predicate event rules in depth.
    let mut db = orders_db();
    let tintin = Tintin::new();
    let inst = tintin
        .install(
            &mut db,
            &["CREATE ASSERTION bigSpendersServed CHECK (NOT EXISTS (
                  SELECT * FROM orders o
                  WHERE o.o_totalprice > 15.0 AND NOT EXISTS (
                      SELECT * FROM lineitem l
                      WHERE l.l_orderkey = o.o_orderkey AND l.l_quantity > 2)))"],
        )
        .unwrap();

    // Order 2 (price 20, quantity 3) is compliant; shrinking the quantity
    // to 1 through delete+insert violates.
    db.execute_sql(
        "DELETE FROM lineitem WHERE l_orderkey = 2;
         INSERT INTO lineitem VALUES (2, 1, 1);",
    )
    .unwrap();
    assert!(!tintin.safe_commit(&mut db, &inst).unwrap().is_committed());

    // Raising the price of an order whose only line is small also violates…
    // via UPDATE (del+ins events on orders).
    db.execute_sql("INSERT INTO orders VALUES (4, 10.0); INSERT INTO lineitem VALUES (4, 1, 1);")
        .unwrap();
    assert!(tintin.safe_commit(&mut db, &inst).unwrap().is_committed());
    db.execute_sql("UPDATE orders SET o_totalprice = 99.0 WHERE o_orderkey = 4")
        .unwrap();
    assert!(!tintin.safe_commit(&mut db, &inst).unwrap().is_committed());

    // …while raising it with a big line item present commits.
    db.execute_sql("INSERT INTO lineitem VALUES (4, 2, 9)")
        .unwrap();
    assert!(tintin.safe_commit(&mut db, &inst).unwrap().is_committed());
    db.execute_sql("UPDATE orders SET o_totalprice = 99.0 WHERE o_orderkey = 4")
        .unwrap();
    assert!(tintin.safe_commit(&mut db, &inst).unwrap().is_committed());
}

#[test]
fn generated_views_plan_as_index_probes() {
    // EXPLAIN over a generated violation view: the event table is the outer
    // scan, all base-table accesses are index probes — the mechanics behind
    // the paper's O(update) claim.
    let mut db = orders_db();
    let tintin = Tintin::new();
    let inst = tintin.install(&mut db, &[AT_LEAST_ONE_LINEITEM]).unwrap();
    let v = &inst.views()[0];
    let plan = db.explain(&v.query).unwrap();
    assert!(plan.contains("Scan ins_orders"), "{plan}");
    assert!(plan.contains("AntiJoin (NOT EXISTS)"), "{plan}");
    assert!(
        plan.contains("Probe lineitem"),
        "base-table access must be an index probe:\n{plan}"
    );
    assert!(
        !plan.contains("Scan lineitem"),
        "no full scan of base data in the incremental view:\n{plan}"
    );
}

#[test]
fn uninstall_restores_plain_database() {
    let mut db = orders_db();
    let tintin = Tintin::new();
    let inst = tintin.install(&mut db, &[AT_LEAST_ONE_LINEITEM]).unwrap();
    assert!(!db.view_names().is_empty());
    assert!(db.is_captured("orders"));

    tintin.uninstall(&mut db, &inst, true).unwrap();
    assert!(db.view_names().is_empty());
    assert!(!db.is_captured("orders"));
    assert!(db.table("ins_orders").is_none());

    // DML goes straight to base tables again.
    db.execute_sql("INSERT INTO orders VALUES (7, 1.0)")
        .unwrap();
    assert_eq!(db.table("orders").unwrap().len(), 3);

    // And a re-install works afterwards (state must be consistent first).
    db.execute_sql("INSERT INTO lineitem VALUES (7, 1, 1)")
        .unwrap();
    let inst2 = tintin.install(&mut db, &[AT_LEAST_ONE_LINEITEM]).unwrap();
    assert_eq!(inst2.view_count(), 2);
}

#[test]
fn failed_install_leaves_database_unchanged() {
    // An install that fails the initial-state check must roll back
    // everything it created — views *and* event capture — so the data can
    // be fixed with plain DML and the install retried.
    let mut db = orders_db();
    db.execute_sql("INSERT INTO orders VALUES (9, 1.0)")
        .unwrap(); // no lineitem

    let tintin = Tintin::new();
    let err = tintin
        .install(&mut db, &[AT_LEAST_ONE_LINEITEM])
        .unwrap_err();
    assert!(matches!(err, TintinError::InitialStateViolated { .. }));
    assert!(db.view_names().is_empty(), "views rolled back");
    assert!(!db.is_captured("orders"), "capture rolled back");
    assert!(db.table("ins_orders").is_none(), "event tables rolled back");

    // The fix-up insert goes to the base table (capture is off again)…
    db.execute_sql("INSERT INTO lineitem VALUES (9, 1, 1)")
        .unwrap();
    assert_eq!(db.table("lineitem").unwrap().len(), 3);

    // …and the retry succeeds.
    let inst = tintin.install(&mut db, &[AT_LEAST_ONE_LINEITEM]).unwrap();
    assert_eq!(inst.view_count(), 2);
}
