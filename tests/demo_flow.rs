//! The paper's §3 demo script as an integration test: build event tables on
//! the TPC-H database, install assertions of different complexity, then
//! apply a mix of violating and non-violating updates, calling `safeCommit`
//! after each one.

use tintin::{CommitOutcome, Tintin};
use tintin_engine::Database;
use tintin_tpch::{assertion_sql, Dbgen, TpchCounts, UpdateGen, TPCH_TABLES};

fn demo_db() -> (Database, TpchCounts) {
    let gen = Dbgen::new(0.0005); // ~750 orders, ~3k lineitems
    (gen.generate(), gen.counts())
}

#[test]
fn demo_script_end_to_end() {
    let (mut db, counts) = demo_db();
    let tintin = Tintin::new();

    // Step 1: TINTIN builds the auxiliary tables and "triggers" — one
    // ins/del table per TPC table.
    let inst = tintin.install(&mut db, &assertion_sql()).unwrap();
    for t in TPCH_TABLES {
        assert!(db.table(&format!("ins_{t}")).is_some());
        assert!(db.table(&format!("del_{t}")).is_some());
        assert!(db.is_captured(t));
    }
    assert_eq!(inst.assertions.len(), 6);
    assert!(inst.view_count() >= 6, "views: {}", inst.view_count());

    let orders_before = db.table("orders").unwrap().len();
    let mut ug = UpdateGen::new(counts, 2024);

    // Step 2: a non-violating update commits.
    ug.valid_batch(&mut db, 2_000);
    let outcome = tintin.safe_commit(&mut db, &inst).unwrap();
    assert!(outcome.is_committed(), "{outcome:?}");
    assert_eq!(db.pending_counts(), (0, 0), "events truncated after commit");

    // Step 3: a violating update is rejected and reported; the database is
    // unchanged by it.
    let orders_mid = db.table("orders").unwrap().len();
    ug.violating_batch(&mut db, 1_000, 2);
    let outcome = tintin.safe_commit(&mut db, &inst).unwrap();
    let CommitOutcome::Rejected { violations, .. } = outcome else {
        panic!("expected rejection");
    };
    assert!(violations
        .iter()
        .any(|v| v.assertion == "atleastonelineitem"));
    assert_eq!(db.table("orders").unwrap().len(), orders_mid);
    assert_eq!(db.pending_counts(), (0, 0), "events truncated after reject");

    // Step 4: another valid update still commits (the system remains
    // usable after a rejection).
    ug.valid_batch(&mut db, 1_000);
    assert!(tintin.safe_commit(&mut db, &inst).unwrap().is_committed());

    // Final state satisfies everything.
    let checks = tintin.check_current_state(&db, &inst).unwrap();
    assert!(checks.iter().all(|(_, n)| *n == 0), "{checks:?}");
    assert!(db.table("orders").unwrap().len() >= orders_before / 2);
}

#[test]
fn incremental_and_baseline_agree_on_tpch_batches() {
    // Paired runs over several seeds: TINTIN's verdict equals the
    // non-incremental full recheck on the same pending update.
    for seed in [1u64, 2, 3] {
        let (mut db, counts) = demo_db();
        let tintin = Tintin::new();
        let inst = tintin.install(&mut db, &assertion_sql()).unwrap();
        let mut ug = UpdateGen::new(counts, seed);
        let violating = seed % 2 == 0;
        if violating {
            ug.violating_batch(&mut db, 1_500, 1);
        } else {
            ug.valid_batch(&mut db, 1_500);
        }

        let mut db2 = db.clone();
        let (violations, _) = tintin.check_pending(&mut db, &inst).unwrap();
        let full = tintin.full_recheck(&mut db2, &inst).unwrap();
        assert_eq!(
            violations.is_empty(),
            full.committed,
            "incremental vs baseline diverged (seed {seed})"
        );
        assert_eq!(!violating, full.committed, "expected verdict (seed {seed})");
    }
}

#[test]
fn check_time_is_independent_of_database_size() {
    // The heart of the paper's efficiency claim, as a coarse smoke test:
    // growing the database ~4x while keeping the update fixed must not grow
    // the incremental check time proportionally (timings in debug builds
    // are noisy, so only an order-of-magnitude bound is asserted).
    let mut times = Vec::new();
    for sf in [0.0005, 0.002] {
        let gen = Dbgen::new(sf);
        let mut db = gen.generate();
        let tintin = Tintin::new();
        let inst = tintin.install(&mut db, &assertion_sql()).unwrap();
        let mut ug = UpdateGen::new(gen.counts(), 5);
        ug.valid_batch(&mut db, 2_000);
        // Warm once, measure the second check on the same events.
        let (_, stats1) = tintin.check_pending(&mut db, &inst).unwrap();
        let (_, stats2) = tintin.check_pending(&mut db, &inst).unwrap();
        times.push(stats1.check_time.min(stats2.check_time));
        db.truncate_events();
    }
    let small = times[0].as_secs_f64().max(1e-6);
    let big = times[1].as_secs_f64();
    assert!(
        big / small < 20.0,
        "incremental check scaled with DB size: {small}s → {big}s"
    );
}
