//! Property test over *randomly generated assertions*: any assertion drawn
//! from the supported fragment must (a) install successfully, and (b) yield
//! an incremental verdict identical to the non-incremental ground truth on
//! random update batches.
//!
//! Together with `prop_incremental.rs` (fixed assertions, random data) this
//! covers the other axis: random assertions, semi-random data.

use proptest::prelude::*;
use tintin::{Tintin, TintinConfig};
use tintin_engine::Database;

fn make_db() -> Database {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE parent (pk INT PRIMARY KEY);
         CREATE TABLE child (ck INT PRIMARY KEY, fkc INT NOT NULL REFERENCES parent);
         CREATE TABLE item (ik INT PRIMARY KEY, grp INT NOT NULL, val INT NOT NULL);",
    )
    .unwrap();
    db
}

/// Columns per table (INT everywhere keeps comparisons well-typed).
const TABLES: &[(&str, &[&str])] = &[
    ("parent", &["pk"]),
    ("child", &["ck", "fkc"]),
    ("item", &["ik", "grp", "val"]),
];

#[derive(Debug, Clone)]
#[allow(clippy::enum_variant_names)]
enum Shape {
    /// NOT EXISTS (SELECT * FROM t WHERE col op const)
    Selection {
        table: usize,
        col: usize,
        op: &'static str,
        konst: i64,
    },
    /// NOT EXISTS (SELECT * FROM t1 a, t2 b WHERE a.c1 = b.c2 [AND a.c3 op k])
    Join {
        t1: usize,
        c1: usize,
        t2: usize,
        c2: usize,
        extra: Option<(usize, &'static str, i64)>,
    },
    /// NOT EXISTS (… WHERE NOT EXISTS (SELECT * FROM t2 b WHERE b.c2 = a.c1 [AND b.c3 op k]))
    Inclusion {
        t1: usize,
        c1: usize,
        t2: usize,
        c2: usize,
        extra: Option<(usize, &'static str, i64)>,
    },
    /// NOT EXISTS (SELECT * FROM t WHERE col [NOT] IN (SELECT c2 FROM t2))
    InShape {
        t1: usize,
        c1: usize,
        t2: usize,
        c2: usize,
        negated: bool,
    },
    /// Union of two selections.
    UnionShape {
        a: (usize, usize, &'static str, i64),
        b: (usize, usize, &'static str, i64),
    },
}

fn ops() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("<"),
        Just("<="),
        Just(">"),
        Just(">="),
        Just("="),
        Just("<>")
    ]
}

fn table_col() -> impl Strategy<Value = (usize, usize)> {
    (0..TABLES.len()).prop_flat_map(|t| (Just(t), 0..TABLES[t].1.len()))
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    let konst = -3..6i64;
    prop_oneof![
        (table_col(), ops(), konst.clone()).prop_map(|((t, c), op, k)| Shape::Selection {
            table: t,
            col: c,
            op,
            konst: k,
        }),
        (
            table_col(),
            table_col(),
            proptest::option::of((0..3usize, ops(), konst.clone()))
        )
            .prop_map(|((t1, c1), (t2, c2), extra)| Shape::Join {
                t1,
                c1,
                t2,
                c2,
                extra: extra.map(|(c, op, k)| (c % TABLES[t1].1.len(), op, k)),
            }),
        (
            table_col(),
            table_col(),
            proptest::option::of((0..3usize, ops(), konst.clone()))
        )
            .prop_map(|((t1, c1), (t2, c2), extra)| Shape::Inclusion {
                t1,
                c1,
                t2,
                c2,
                extra: extra.map(|(c, op, k)| (c % TABLES[t2].1.len(), op, k)),
            }),
        (table_col(), table_col(), any::<bool>()).prop_map(|((t1, c1), (t2, c2), negated)| {
            Shape::InShape {
                t1,
                c1,
                t2,
                c2,
                negated,
            }
        }),
        (table_col(), ops(), konst.clone(), table_col(), ops(), konst).prop_map(
            |((ta, ca), opa, ka, (tb, cb), opb, kb)| Shape::UnionShape {
                a: (ta, ca, opa, ka),
                b: (tb, cb, opb, kb),
            }
        ),
    ]
}

fn to_sql(shape: &Shape, name: &str) -> String {
    let t = |i: usize| TABLES[i].0;
    let c = |i: usize, j: usize| TABLES[i].1[j];
    let inner = match shape {
        Shape::Selection {
            table,
            col,
            op,
            konst,
        } => format!(
            "SELECT * FROM {} WHERE {} {} {}",
            t(*table),
            c(*table, *col),
            op,
            konst
        ),
        Shape::Join {
            t1,
            c1,
            t2,
            c2,
            extra,
        } => {
            let mut q = format!(
                "SELECT * FROM {} a, {} b WHERE a.{} = b.{}",
                t(*t1),
                t(*t2),
                c(*t1, *c1),
                c(*t2, *c2)
            );
            if let Some((ec, op, k)) = extra {
                q.push_str(&format!(" AND a.{} {} {}", c(*t1, *ec), op, k));
            }
            q
        }
        Shape::Inclusion {
            t1,
            c1,
            t2,
            c2,
            extra,
        } => {
            let mut sub = format!(
                "SELECT * FROM {} b WHERE b.{} = a.{}",
                t(*t2),
                c(*t2, *c2),
                c(*t1, *c1)
            );
            if let Some((ec, op, k)) = extra {
                sub.push_str(&format!(" AND b.{} {} {}", c(*t2, *ec), op, k));
            }
            format!("SELECT * FROM {} a WHERE NOT EXISTS ({sub})", t(*t1))
        }
        Shape::InShape {
            t1,
            c1,
            t2,
            c2,
            negated,
        } => format!(
            "SELECT * FROM {} a WHERE a.{} {} (SELECT {} FROM {})",
            t(*t1),
            c(*t1, *c1),
            if *negated { "NOT IN" } else { "IN" },
            c(*t2, *c2),
            t(*t2)
        ),
        Shape::UnionShape { a, b } => format!(
            "SELECT {} FROM {} WHERE {} {} {} UNION SELECT {} FROM {} WHERE {} {} {}",
            c(a.0, a.1),
            t(a.0),
            c(a.0, a.1),
            a.2,
            a.3,
            c(b.0, b.1),
            t(b.0),
            c(b.0, b.1),
            b.2,
            b.3
        ),
    };
    format!("CREATE ASSERTION {name} CHECK (NOT EXISTS ({inner}))")
}

/// Random DML batch issued through capture.
fn dml(seed: &[(u8, i64, i64, i64)], db: &mut Database) {
    for (kind, a, b, v) in seed {
        let stmt = match kind % 8 {
            0 => format!("INSERT INTO parent VALUES ({})", a % 6),
            1 => format!("INSERT INTO child VALUES ({}, {})", 10 + (a % 8), b % 6),
            2 => format!(
                "INSERT INTO item VALUES ({}, {}, {})",
                20 + (a % 8),
                b % 6,
                v % 5
            ),
            3 => format!("DELETE FROM parent WHERE pk = {}", a % 6),
            4 => format!("DELETE FROM child WHERE ck = {}", 10 + (a % 8)),
            5 => format!("DELETE FROM item WHERE ik = {}", 20 + (a % 8)),
            6 => format!("DELETE FROM child WHERE fkc = {}", a % 6),
            _ => format!("DELETE FROM item WHERE grp = {}", a % 6),
        };
        let _ = db.execute_sql(&stmt);
    }
}

/// Does the updated state violate? Ground truth over a clone.
fn ground_truth(base: &Database, assertion_sql: &str) -> Option<bool> {
    let mut db = base.clone();
    db.normalize_events().unwrap();
    if db.apply_pending().is_err() {
        return None; // PK conflict among events: skip case
    }
    let tintin_sql::Statement::CreateAssertion(a) =
        tintin_sql::parse_statement(assertion_sql).unwrap()
    else {
        unreachable!()
    };
    let mut violated = false;
    for conj in a.condition.conjuncts() {
        if let tintin_sql::Expr::Exists {
            query,
            negated: true,
        } = conj
        {
            if !db.query(query).unwrap().is_empty() {
                violated = true;
            }
        }
    }
    Some(violated)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        max_shrink_iters: 100,
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_assertions_check_incrementally(
        shape in shape_strategy(),
        batch1 in proptest::collection::vec((any::<u8>(), 0..64i64, 0..64i64, -4..8i64), 0..6),
        batch2 in proptest::collection::vec((any::<u8>(), 0..64i64, 0..64i64, -4..8i64), 1..8),
    ) {
        let assertion = to_sql(&shape, "rand_a");
        // Phase 0: empty database trivially satisfies any NOT EXISTS.
        let mut db = make_db();
        for t in ["parent", "child", "item"] {
            db.enable_capture(t).unwrap();
        }
        let tintin = Tintin::with_config(TintinConfig {
            check_initial_state: true,
            ..TintinConfig::default()
        });
        let inst = tintin
            .install(&mut db, &[assertion.as_str()])
            .unwrap_or_else(|e| panic!("in-fragment assertion failed to install: {e}\n{assertion}"));

        // Phase 1: reach some consistent non-empty state via safe_commit.
        dml(&batch1, &mut db);
        let _ = tintin.safe_commit(&mut db, &inst); // commit or reject, both fine

        // Phase 2: random batch → verdicts must agree.
        dml(&batch2, &mut db);
        let Some(truth) = ground_truth(&db, &assertion) else {
            return Ok(()); // apply conflict; skip
        };
        let (violations, _) = tintin.check_pending(&mut db, &inst).unwrap();
        prop_assert_eq!(
            !violations.is_empty(),
            truth,
            "verdicts diverged for assertion:\n{}\nbatch2: {:?}",
            assertion, batch2
        );
    }
}
