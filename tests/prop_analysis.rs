//! Property test of the install-time analysis's soundness claim:
//!
//! > `analyze_body` = Unsat implies the generated violation view returns
//! > no rows — for **any** database state and **any** pending update.
//!
//! The assertion pool below expands (with the analysis disabled, so the
//! pruned bodies still reach SQL generation) to a mix of satisfiable and
//! provably-unsatisfiable EDC bodies. Every body the analyzer rejects has
//! its view evaluated against 200 seeded random databases with random
//! pending event batches staged; a single returned row would be a
//! counterexample to soundness (a pruned view that could have fired).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tintin::Tintin;
use tintin_engine::{Database, Value};
use tintin_logic::{analyze_body, translate_assertion, EdcConfig, EdcGenerator, Registry};
use tintin_sql as sql;
use tintin_sqlgen::{generate_views, GeneratedView};

const SCHEMA: &str = "CREATE TABLE t (k INT PRIMARY KEY, a INT, b INT);
     CREATE TABLE u (uk INT PRIMARY KEY, fk INT NOT NULL, c INT);";

/// Assertions chosen so EDC expansion yields bodies each analysis rule
/// prunes — plus satisfiable controls that must *not* be pruned.
const ASSERTIONS: &[&str] = &[
    // Interval contradiction: a > 5 AND a < 3 can never hold.
    "CREATE ASSERTION p1 CHECK (NOT EXISTS (
        SELECT * FROM t WHERE a > 5 AND a < 3))",
    // Equality congruence: a = b merges the classes, whose interval
    // constraints (a < 1, b > 2) then contradict.
    "CREATE ASSERTION p2 CHECK (NOT EXISTS (
        SELECT * FROM t WHERE a = b AND a < 1 AND b > 2))",
    // Key subsumption: x and y are the same row of t, so x.a < 0 and
    // y.a > 0 contradict.
    "CREATE ASSERTION p3 CHECK (NOT EXISTS (
        SELECT * FROM t x, t y WHERE x.k = y.k AND x.a < 0 AND y.a > 0))",
    // Congruence through a join: u.fk = t.k pins t.k into u.fk's class,
    // whose bounds (fk >= 10, k <= 3) then contradict.
    "CREATE ASSERTION p4 CHECK (NOT EXISTS (
        SELECT * FROM t, u WHERE t.k = u.fk AND u.fk >= 10 AND t.k <= 3))",
    // Satisfiable controls — the analyzer must keep these.
    "CREATE ASSERTION s1 CHECK (NOT EXISTS (
        SELECT * FROM t WHERE a < 0))",
    "CREATE ASSERTION s2 CHECK (NOT EXISTS (
        SELECT * FROM t, u WHERE t.k = u.fk AND u.c > 100))",
];

/// Expand the assertion pool to EDCs with the analysis *off* (so nothing
/// is pruned before SQL generation), then partition the generated views by
/// the analyzer's verdict on their bodies.
fn expand() -> (Vec<GeneratedView>, Vec<GeneratedView>) {
    let mut db = Database::new();
    db.execute_sql(SCHEMA).unwrap();
    let cat = Tintin::catalog_of(&db);
    let mut reg = Registry::new();
    // Raw expansion: both the legacy optimizer and the analysis pass are
    // off, so provably-unsatisfiable bodies still reach SQL generation and
    // the analyzer's verdict can be tested against their actual views.
    let config = EdcConfig {
        optimize: false,
        analysis: false,
        ..EdcConfig::default()
    };
    let mut unsat = Vec::new();
    let mut sat = Vec::new();
    for text in ASSERTIONS {
        let sql::Statement::CreateAssertion(a) = sql::parse_statement(text).unwrap() else {
            panic!("assertion pool entry is not CREATE ASSERTION");
        };
        let denials = translate_assertion(&cat, &mut reg, &a).unwrap();
        for d in &denials {
            let mut generator = EdcGenerator::new(&mut reg, &cat, config);
            let edcs = generator.generate(d).unwrap();
            let views = generate_views(&cat, &reg, &edcs).unwrap();
            for (edc, view) in edcs.iter().zip(views) {
                match analyze_body(&edc.body, &cat, true) {
                    Err(_) => unsat.push(view),
                    Ok(_) => sat.push(view),
                }
            }
        }
    }
    (unsat, sat)
}

/// One seeded random database plus a staged random event batch.
fn random_state(seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    db.execute_sql(SCHEMA).unwrap();
    // Event capture creates the ins_/del_ tables the vio views join.
    db.enable_capture("t").unwrap();
    db.enable_capture("u").unwrap();

    // Base rows: distinct keys (the engine enforces the PK; key
    // subsumption's soundness also assumes it), adversarial values —
    // negative, boundary, NULL.
    let val = |rng: &mut StdRng| -> Value {
        if rng.gen_range(0..8usize) == 0 {
            Value::Null
        } else {
            Value::Int(rng.gen_range(-5i64..=6))
        }
    };
    let t_rows = rng.gen_range(0..12usize);
    let rows: Vec<Vec<Value>> = (0..t_rows)
        .map(|k| vec![Value::Int(k as i64), val(&mut rng), val(&mut rng)])
        .collect();
    db.insert_direct("t", rows).unwrap();
    let u_rows = rng.gen_range(0..12usize);
    let rows: Vec<Vec<Value>> = (0..u_rows)
        .map(|k| {
            vec![
                Value::Int(k as i64),
                Value::Int(rng.gen_range(-2i64..12)),
                val(&mut rng),
            ]
        })
        .collect();
    db.insert_direct("u", rows).unwrap();

    // Pending events: fresh-key inserts into both tables plus predicate
    // deletes, then event normalization — exactly the state the commit
    // path would hand to the vio views.
    let ins = rng.gen_range(0..6usize);
    for i in 0..ins {
        let k = 1000 + i as i64;
        db.insert_rows("t", vec![vec![Value::Int(k), val(&mut rng), val(&mut rng)]])
            .unwrap();
        db.insert_rows(
            "u",
            vec![vec![
                Value::Int(k),
                Value::Int(rng.gen_range(-2i64..12)),
                val(&mut rng),
            ]],
        )
        .unwrap();
    }
    let cut = rng.gen_range(-3i64..8);
    db.execute_sql(&format!("DELETE FROM u WHERE c > {cut}"))
        .unwrap();
    db.execute_sql(&format!("DELETE FROM t WHERE a < {}", -cut))
        .unwrap();
    db.normalize_events().unwrap();
    db
}

#[test]
fn unsat_bodies_generate_empty_views_under_random_states() {
    let (unsat, sat) = expand();
    // The pool must actually exercise both verdicts, or the property
    // below is vacuous.
    assert!(
        unsat.len() >= 4,
        "expected every pruned shape to appear, got {} unsat views",
        unsat.len()
    );
    assert!(
        sat.len() >= 2,
        "expected the satisfiable controls to survive, got {} sat views",
        sat.len()
    );

    for seed in 0..200u64 {
        let db = random_state(seed);
        for view in &unsat {
            let rs = db.query(&view.query).unwrap();
            assert!(
                rs.is_empty(),
                "seed {seed}: view {} of pruned (unsatisfiable) body returned {} row(s) — \
                 the analysis would have wrongly suppressed a violation",
                view.name,
                rs.len()
            );
        }
    }
}

/// The satisfiable controls are not vacuous: under at least one seeded
/// state some kept view actually fires, so the harness can distinguish an
/// empty-by-unsatisfiability view from an empty-by-construction one.
#[test]
fn sat_controls_can_fire() {
    let (_, sat) = expand();
    let fired = (0..200u64).any(|seed| {
        let db = random_state(seed);
        sat.iter().any(|v| !db.query(&v.query).unwrap().is_empty())
    });
    assert!(
        fired,
        "no satisfiable control view returned rows under any seed — \
         the random states never exercise the views at all"
    );
}
