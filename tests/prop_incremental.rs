//! Property-based test of the EDC method's central correctness theorem:
//!
//! > Given an old state that satisfies the assertions and a normalized
//! > update, the union of the EDC views is non-empty **iff** the updated
//! > state violates some assertion.
//!
//! Random (but initially consistent) database states and random update
//! batches are generated; the incremental verdict (per assertion) must match
//! the ground truth obtained by applying the update and running the original
//! assertion queries. The property is checked under three optimizer
//! configurations, which also validates the semantic optimizations.

use proptest::prelude::*;
use tintin::{EdcConfig, Tintin, TintinConfig};
use tintin_engine::{Database, Value};
use tintin_session::{Server, Session, SessionError};

/// The fixed test schema: a parent/child pair (with FK) plus a third table.
fn make_db() -> Database {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE parent (pk INT PRIMARY KEY);
         CREATE TABLE child (ck INT PRIMARY KEY, fkc INT NOT NULL REFERENCES parent);
         CREATE TABLE item (ik INT PRIMARY KEY, grp INT NOT NULL, val INT NOT NULL);",
    )
    .unwrap();
    db
}

/// Assertion suite covering the fragment's shapes: existential requirement,
/// FK-style inclusion, pure selection, join, derived predicate with a
/// comparison, union, NOT IN, and depth-3 nesting.
const ASSERTIONS: &[&str] = &[
    // A1: every parent has at least one child (the running example's shape).
    "CREATE ASSERTION a1 CHECK (NOT EXISTS (
        SELECT * FROM parent p WHERE NOT EXISTS (
            SELECT * FROM child c WHERE c.fkc = p.pk)))",
    // A2: every child references an existing parent (inclusion dependency).
    "CREATE ASSERTION a2 CHECK (NOT EXISTS (
        SELECT * FROM child c WHERE NOT EXISTS (
            SELECT * FROM parent p WHERE p.pk = c.fkc)))",
    // A3: selection only.
    "CREATE ASSERTION a3 CHECK (NOT EXISTS (
        SELECT * FROM item WHERE val < 0))",
    // A4: join between two tables.
    "CREATE ASSERTION a4 CHECK (NOT EXISTS (
        SELECT * FROM child c, item i WHERE c.fkc = i.ik AND i.val > 3))",
    // A5: negated subquery with an extra comparison (derived predicate).
    "CREATE ASSERTION a5 CHECK (NOT EXISTS (
        SELECT * FROM parent p WHERE NOT EXISTS (
            SELECT * FROM child c WHERE c.fkc = p.pk AND c.ck > 0)))",
    // A6: union of two violation queries.
    "CREATE ASSERTION a6 CHECK (NOT EXISTS (
        SELECT pk FROM parent WHERE pk < 0
        UNION
        SELECT ck FROM child WHERE ck < 0))",
    // A7: NOT IN (inclusion via NOT IN).
    "CREATE ASSERTION a7 CHECK (NOT EXISTS (
        SELECT * FROM item WHERE grp NOT IN (SELECT pk FROM parent)))",
    // A8: three levels of nesting with a positive EXISTS inside.
    "CREATE ASSERTION a8 CHECK (NOT EXISTS (
        SELECT * FROM item i WHERE NOT EXISTS (
            SELECT * FROM parent p WHERE p.pk = i.grp AND EXISTS (
                SELECT * FROM child c WHERE c.fkc = p.pk))))",
];

/// One randomly generated operation of an update batch.
#[derive(Debug, Clone)]
enum Op {
    InsParent(i64),
    InsChild(i64, i64),
    InsItem(i64, i64, i64),
    DelParent(i64),
    DelChild(i64),
    DelChildrenOf(i64),
    DelItem(i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Small domains so collisions (and therefore interesting interactions
    // between events and existing rows) are frequent.
    let key = 0..8i64;
    prop_oneof![
        key.clone().prop_map(Op::InsParent),
        (8..24i64, 0..8i64).prop_map(|(c, p)| Op::InsChild(c, p)),
        (24..40i64, 0..8i64, -2..6i64).prop_map(|(i, g, v)| Op::InsItem(i, g, v)),
        key.clone().prop_map(Op::DelParent),
        (8..24i64).prop_map(Op::DelChild),
        key.prop_map(Op::DelChildrenOf),
        (24..40i64).prop_map(Op::DelItem),
    ]
}

/// A consistent initial state: parents 0..n, each with ≥1 child (ck > 0),
/// items referencing existing parents with 0 ≤ val ≤ 3.
#[derive(Debug, Clone)]
struct InitialState {
    parents: Vec<i64>,
    children: Vec<(i64, i64)>,
    items: Vec<(i64, i64, i64)>,
}

fn initial_state_strategy() -> impl Strategy<Value = InitialState> {
    (1..6usize).prop_flat_map(|nparents| {
        let parents: Vec<i64> = (0..nparents as i64).collect();
        // Child keys are sequential from 8 (unique by construction); only
        // the parent reference is random.
        let child_fks = proptest::collection::vec(0..nparents as i64, nparents..nparents + 6);
        // Item keys sequential from 24; (grp, val) random but consistent
        // (grp references an existing parent, 0 ≤ val ≤ 3).
        let item_attrs = proptest::collection::vec((0..nparents as i64, 0..4i64), 0..6);
        (Just(parents), child_fks, item_attrs).prop_map(|(parents, mut child_fks, item_attrs)| {
            // Each parent gets at least one child (A1/A5).
            for (i, fk) in child_fks.iter_mut().enumerate().take(parents.len()) {
                *fk = parents[i];
            }
            let children: Vec<(i64, i64)> = child_fks
                .into_iter()
                .enumerate()
                .map(|(i, fk)| (8 + i as i64, fk))
                .collect();
            let items: Vec<(i64, i64, i64)> = item_attrs
                .into_iter()
                .enumerate()
                .map(|(i, (g, v))| (24 + i as i64, g, v))
                .collect();
            InitialState {
                parents,
                children,
                items,
            }
        })
    })
}

fn load_state(db: &mut Database, st: &InitialState) {
    db.insert_direct(
        "parent",
        st.parents.iter().map(|p| vec![Value::Int(*p)]).collect(),
    )
    .unwrap();
    db.insert_direct(
        "child",
        st.children
            .iter()
            .map(|(c, p)| vec![Value::Int(*c), Value::Int(*p)])
            .collect(),
    )
    .unwrap();
    db.insert_direct(
        "item",
        st.items
            .iter()
            .map(|(i, g, v)| vec![Value::Int(*i), Value::Int(*g), Value::Int(*v)])
            .collect(),
    )
    .unwrap();
}

/// Issue the ops through the capture layer: the base tables stay unchanged
/// and the events accumulate in `ins_*` / `del_*`.
fn apply_ops(db: &mut Database, ops: &[Op]) {
    for op in ops {
        let stmt = match op {
            Op::InsParent(p) => format!("INSERT INTO parent VALUES ({p})"),
            Op::InsChild(c, p) => format!("INSERT INTO child VALUES ({c}, {p})"),
            Op::InsItem(i, g, v) => format!("INSERT INTO item VALUES ({i}, {g}, {v})"),
            Op::DelParent(p) => format!("DELETE FROM parent WHERE pk = {p}"),
            Op::DelChild(c) => format!("DELETE FROM child WHERE ck = {c}"),
            Op::DelChildrenOf(p) => format!("DELETE FROM child WHERE fkc = {p}"),
            Op::DelItem(i) => format!("DELETE FROM item WHERE ik = {i}"),
        };
        db.execute_sql(&stmt).unwrap();
    }
}

/// Build the shared starting point: loaded state, capture enabled on every
/// table, the update batch captured as pending events.
fn captured_db(initial: &InitialState, ops: &[Op]) -> Database {
    let mut db = make_db();
    load_state(&mut db, initial);
    for t in ["parent", "child", "item"] {
        db.enable_capture(t).unwrap();
    }
    apply_ops(&mut db, ops);
    db
}

/// Dedupe insert ops by key so apply_pending cannot hit PK conflicts among
/// the new rows themselves, and drop inserts whose key already exists in the
/// initial state with different attributes.
fn sanitize_ops(ops: Vec<Op>, initial: &InitialState) -> Vec<Op> {
    let mut seen_p = std::collections::BTreeSet::new();
    let mut seen_c = std::collections::BTreeSet::new();
    let mut seen_i = std::collections::BTreeSet::new();
    ops.into_iter()
        .filter(|op| match op {
            Op::InsParent(p) => seen_p.insert(*p),
            Op::InsChild(c, p) => {
                // Same-key, different-attrs insert over an existing child
                // would be a PK conflict at apply; keep only identical ones.
                if initial.children.iter().any(|(ck, fk)| ck == c && fk != p) {
                    return false;
                }
                seen_c.insert(*c)
            }
            Op::InsItem(i, g, v) => {
                if initial
                    .items
                    .iter()
                    .any(|(ik, grp, val)| ik == i && (grp != g || val != v))
                {
                    return false;
                }
                seen_i.insert(*i)
            }
            _ => true,
        })
        .collect()
}

/// Ground truth: apply the captured events (same INSTEAD-OF semantics the
/// incremental checker sees) and run the original assertion queries on the
/// updated state.
fn ground_truth(base: &Database) -> Vec<bool> {
    let mut db = base.clone();
    db.normalize_events().unwrap();
    db.apply_pending().expect("sanitized batches apply cleanly");
    ASSERTIONS
        .iter()
        .map(|a| {
            let tintin_sql::Statement::CreateAssertion(ca) =
                tintin_sql::parse_statement(a).unwrap()
            else {
                unreachable!()
            };
            let mut violated = false;
            for conj in ca.condition.conjuncts() {
                if let tintin_sql::Expr::Exists {
                    query,
                    negated: true,
                } = conj
                {
                    if !db.query(query).unwrap().is_empty() {
                        violated = true;
                    }
                }
            }
            violated
        })
        .collect()
}

/// The incremental verdict for a given optimizer configuration.
fn incremental_verdict(base: &Database, edc: EdcConfig) -> Vec<bool> {
    let mut db = base.clone();
    let tintin = Tintin::with_config(TintinConfig {
        edc,
        check_initial_state: true,
        ..TintinConfig::default()
    });
    // The initial state is consistent by construction; if not, the
    // generator is wrong and install fails loudly.
    let inst = tintin
        .install(&mut db, ASSERTIONS)
        .expect("initial state consistent");
    let (violations, _) = tintin.check_pending(&mut db, &inst).unwrap();
    let mut verdict = vec![false; ASSERTIONS.len()];
    for v in violations {
        let idx = v
            .assertion
            .strip_prefix('a')
            .and_then(|n| n.parse::<usize>().ok())
            .map(|n| n - 1)
            .expect("assertion index");
        verdict[idx] = true;
    }
    verdict
}

/// Render the op as the SQL statement the session will execute.
fn op_sql(op: &Op) -> String {
    match op {
        Op::InsParent(p) => format!("INSERT INTO parent VALUES ({p})"),
        Op::InsChild(c, p) => format!("INSERT INTO child VALUES ({c}, {p})"),
        Op::InsItem(i, g, v) => format!("INSERT INTO item VALUES ({i}, {g}, {v})"),
        Op::DelParent(p) => format!("DELETE FROM parent WHERE pk = {p}"),
        Op::DelChild(c) => format!("DELETE FROM child WHERE ck = {c}"),
        Op::DelChildrenOf(p) => format!("DELETE FROM child WHERE fkc = {p}"),
        Op::DelItem(i) => format!("DELETE FROM item WHERE ik = {i}"),
    }
}

/// Full observable state: every table (base *and* event), rows sorted.
fn snapshot(db: &Database) -> Vec<(String, Vec<String>)> {
    db.table_names()
        .into_iter()
        .map(|t| {
            let mut rows: Vec<String> = db
                .table(&t)
                .unwrap()
                .scan()
                .map(|(_, r)| format!("{r:?}"))
                .collect();
            rows.sort();
            (t, rows)
        })
        .collect()
}

/// The state the *session* observes: base tables read through its
/// transaction overlay (read-your-writes), rows sorted. This is what
/// `ROLLBACK` / `ROLLBACK TO` must restore under the shared-database
/// design, where the shared state itself is untouched until `COMMIT`.
fn visible_snapshot(session: &Session) -> Vec<(String, Vec<String>)> {
    ["parent", "child", "item"]
        .iter()
        .map(|t| {
            let rs = session
                .query_rows(&format!("SELECT * FROM {t}"))
                .expect("base table is queryable");
            let mut rows: Vec<String> = rs.rows.iter().map(|r| format!("{r:?}")).collect();
            rows.sort();
            (t.to_string(), rows)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 200,
        .. ProptestConfig::default()
    })]

    /// The central theorem, under the default configuration.
    #[test]
    fn incremental_check_matches_ground_truth(
        initial in initial_state_strategy(),
        raw_ops in proptest::collection::vec(op_strategy(), 1..10),
    ) {
        let ops = sanitize_ops(raw_ops, &initial);
        let base = captured_db(&initial, &ops);
        let truth = ground_truth(&base);
        let verdict = incremental_verdict(&base, EdcConfig::default());
        prop_assert_eq!(
            &verdict, &truth,
            "incremental vs ground truth diverged\nops: {:?}\ninitial: {:?}", ops, initial
        );
    }

    /// The optimizations must not change any verdict.
    #[test]
    fn optimizations_preserve_verdicts(
        initial in initial_state_strategy(),
        raw_ops in proptest::collection::vec(op_strategy(), 1..8),
    ) {
        let ops = sanitize_ops(raw_ops, &initial);
        let base = captured_db(&initial, &ops);
        let default = incremental_verdict(&base, EdcConfig::default());
        let no_fk = incremental_verdict(&base, EdcConfig {
            optimize: true,
            assume_fks_valid: false,
            ..EdcConfig::default()
        });
        let raw = incremental_verdict(&base, EdcConfig {
            optimize: false,
            assume_fks_valid: false,
            ..EdcConfig::default()
        });
        prop_assert_eq!(&default, &no_fk, "FK pruning changed a verdict; ops: {:?}", ops);
        prop_assert_eq!(&default, &raw, "optimizer changed a verdict; ops: {:?}", ops);
    }

    /// After a committed safe_commit the new state satisfies every
    /// assertion; after a rejection the old state is intact.
    #[test]
    fn safe_commit_postconditions(
        initial in initial_state_strategy(),
        raw_ops in proptest::collection::vec(op_strategy(), 1..10),
    ) {
        let ops = sanitize_ops(raw_ops, &initial);
        let mut db = captured_db(&initial, &ops);
        let tintin = Tintin::new();
        let inst = tintin.install(&mut db, ASSERTIONS).expect("consistent start");
        let before: Vec<usize> = ["parent", "child", "item"]
            .iter()
            .map(|t| db.table(t).unwrap().len())
            .collect();
        let outcome = tintin.safe_commit(&mut db, &inst).unwrap();
        if outcome.is_committed() {
            let checks = tintin.check_current_state(&db, &inst).unwrap();
            prop_assert!(
                checks.iter().all(|(_, n)| *n == 0),
                "committed state violates an assertion: {:?}; ops {:?}", checks, ops
            );
        } else {
            let after: Vec<usize> = ["parent", "child", "item"]
                .iter()
                .map(|t| db.table(t).unwrap().len())
                .collect();
            prop_assert_eq!(&before, &after, "rejected update mutated the db");
        }
        prop_assert_eq!(db.pending_counts(), (0, 0), "events not truncated");
    }

    /// `BEGIN; <random DML>; ROLLBACK` is a no-op on the state the session
    /// observes — and the *shared* database never sees the uncommitted
    /// work at any point, even when the transaction starts with pending
    /// events already staged in the shared event tables.
    #[test]
    fn begin_dml_rollback_is_a_noop(
        initial in initial_state_strategy(),
        pre_ops in proptest::collection::vec(op_strategy(), 0..5),
        tx_ops in proptest::collection::vec(op_strategy(), 1..10),
    ) {
        let pre_ops = sanitize_ops(pre_ops, &initial);
        let db = captured_db(&initial, &pre_ops);
        let mut session = Session::with_database(db);

        let shared_before = snapshot(&session.database().read());
        let visible_before = visible_snapshot(&session);
        session.execute("BEGIN").unwrap();
        for op in &tx_ops {
            // Individual statements may legitimately fail; failures must
            // not break rollback either.
            let _ = session.execute(&op_sql(op));
        }
        prop_assert_eq!(
            snapshot(&session.database().read()),
            shared_before,
            "uncommitted work leaked into the shared database; tx_ops: {:?}",
            tx_ops
        );
        session.execute("ROLLBACK").unwrap();
        prop_assert_eq!(
            snapshot(&session.database().read()),
            shared_before,
            "rollback was not a no-op on the shared state; tx_ops: {:?}",
            tx_ops
        );
        prop_assert_eq!(
            visible_snapshot(&session),
            visible_before,
            "rollback was not a no-op on the visible state; tx_ops: {:?}",
            tx_ops
        );
    }

    /// `ROLLBACK TO <savepoint>` restores exactly the state the session
    /// observed at the savepoint and is replayable: more DML followed by
    /// another `ROLLBACK TO` lands on the same state again.
    #[test]
    fn rollback_to_savepoint_is_replayable(
        initial in initial_state_strategy(),
        ops_a in proptest::collection::vec(op_strategy(), 1..6),
        ops_b in proptest::collection::vec(op_strategy(), 1..6),
        ops_c in proptest::collection::vec(op_strategy(), 1..6),
    ) {
        let db = captured_db(&initial, &[]);
        let mut session = Session::with_database(db);
        let shared_before = snapshot(&session.database().read());

        session.execute("BEGIN").unwrap();
        for op in &ops_a {
            let _ = session.execute(&op_sql(op));
        }
        session.execute("SAVEPOINT mark").unwrap();
        let at_mark = visible_snapshot(&session);
        let pending_at_mark = session.pending_counts();

        for op in &ops_b {
            let _ = session.execute(&op_sql(op));
        }
        session.execute("ROLLBACK TO mark").unwrap();
        prop_assert_eq!(
            visible_snapshot(&session),
            at_mark,
            "first ROLLBACK TO missed the mark; ops_b: {:?}",
            ops_b
        );
        prop_assert_eq!(session.pending_counts(), pending_at_mark);

        for op in &ops_c {
            let _ = session.execute(&op_sql(op));
        }
        session.execute("ROLLBACK TO mark").unwrap();
        prop_assert_eq!(
            visible_snapshot(&session),
            at_mark,
            "second ROLLBACK TO missed the mark; ops_c: {:?}",
            ops_c
        );

        session.execute("ROLLBACK").unwrap();
        prop_assert_eq!(session.pending_counts(), (0, 0));
        prop_assert_eq!(
            snapshot(&session.database().read()),
            shared_before,
            "the whole transaction must leave the shared database untouched"
        );
    }

    // ------------------------------------------- MVCC snapshot isolation

    /// (a) Snapshot stability: a reader's repeated `SELECT` inside an open
    /// transaction is byte-identical across any number of concurrent
    /// committed writes, for random write batches at random interleaving
    /// points — and a fresh session afterwards sees the latest state, not
    /// the reader's snapshot.
    #[test]
    fn snapshot_reads_are_repeatable_across_concurrent_commits(
        initial in initial_state_strategy(),
        batches in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 1..4), 1..4),
    ) {
        let server = Server::with_database(captured_db(&initial, &[]));
        let reader = server.connect();
        let mut writer = server.connect();

        let mut reader = reader;
        reader.execute("BEGIN").unwrap();
        let first = visible_snapshot(&reader);
        for batch in &batches {
            // The writer commits (or fails to commit — either is fine for
            // the property) a random batch between the reader's reads.
            let _ = writer.execute("BEGIN");
            for op in batch {
                let _ = writer.execute(&op_sql(op));
            }
            let _ = writer.execute("COMMIT");
            prop_assert_eq!(
                visible_snapshot(&reader),
                first.clone(),
                "snapshot read changed under a concurrent commit; batch: {:?}",
                batch
            );
        }
        reader.execute("ROLLBACK").unwrap();
        // Outside the transaction the same session reads the latest
        // committed state — identical to what a fresh session sees.
        prop_assert_eq!(
            visible_snapshot(&reader),
            visible_snapshot(&server.connect()),
            "post-transaction reads must observe the latest committed state"
        );
    }

    /// (b) The visible-state equation: inside a transaction the session
    /// observes exactly `(snapshot − del) ∪ ins` — the `BEGIN`-time state
    /// transformed by its own statements alone. The reference is a second
    /// session over an isolated deep copy of the `BEGIN`-time database
    /// executing the same statements; concurrent autocommits on the shared
    /// database (which the reference cannot see) must not make the two
    /// diverge.
    #[test]
    fn visible_state_is_snapshot_minus_del_plus_ins(
        initial in initial_state_strategy(),
        tx_ops in proptest::collection::vec(op_strategy(), 1..8),
        concurrent in proptest::collection::vec(op_strategy(), 0..6),
    ) {
        let server = Server::with_database(captured_db(&initial, &[]));
        let mut session = server.connect();
        let mut other = server.connect();

        session.execute("BEGIN").unwrap();
        let mut reference = Session::with_database(server.database().snapshot());
        reference.execute("BEGIN").unwrap();

        for (i, op) in tx_ops.iter().enumerate() {
            if let Some(c) = concurrent.get(i) {
                // Concurrent committed writes, invisible to the snapshot.
                let _ = other.execute(&op_sql(c));
            }
            let in_session = session.execute(&op_sql(op));
            let in_reference = reference.execute(&op_sql(op));
            prop_assert_eq!(
                in_session.is_ok(),
                in_reference.is_ok(),
                "statement outcome diverged from the isolated reference: \
                 {:?} vs {:?}; op: {:?}",
                in_session.err().map(|e| e.to_string()),
                in_reference.err().map(|e| e.to_string()),
                op
            );
            prop_assert_eq!(
                visible_snapshot(&session),
                visible_snapshot(&reference),
                "visible state diverged from (snapshot − del) ∪ ins after op {:?}",
                op
            );
        }
        session.execute("ROLLBACK").unwrap();
        reference.execute("ROLLBACK").unwrap();
    }

    /// (c) Write-skew on primary-key rows: two transactions insert
    /// overlapping key sets and race their commits. The first committer
    /// wins everything; the second either commits too (disjoint keys) or
    /// loses with a serialization conflict (overlap) — and no committed
    /// state is ever lost either way.
    #[test]
    fn pk_write_skew_has_exactly_one_winner(
        raw_a in proptest::collection::vec(0..6i64, 1..4),
        raw_b in proptest::collection::vec(0..6i64, 1..4),
    ) {
        let keys_a: std::collections::BTreeSet<i64> = raw_a.into_iter().collect();
        let keys_b: std::collections::BTreeSet<i64> = raw_b.into_iter().collect();
        let server = Server::new();
        server
            .connect()
            .execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
            .unwrap();
        let mut a = server.connect();
        let mut b = server.connect();
        a.execute("BEGIN").unwrap();
        b.execute("BEGIN").unwrap();
        for k in &keys_a {
            a.execute(&format!("INSERT INTO t VALUES ({k}, 100)")).unwrap();
        }
        for k in &keys_b {
            b.execute(&format!("INSERT INTO t VALUES ({k}, 200)")).unwrap();
        }
        let first = a.execute("COMMIT").unwrap();
        prop_assert!(first[0].is_committed(), "first committer must win: {:?}", first);
        let second = b.execute("COMMIT");
        let overlap = keys_a.intersection(&keys_b).count() > 0;

        // Expected final state: A's rows always survive; B's join them only
        // when no key overlapped (first-committer-wins is all-or-nothing).
        let mut expected: Vec<(i64, i64)> = keys_a.iter().map(|k| (*k, 100)).collect();
        if overlap {
            prop_assert!(
                matches!(
                    second.as_ref().map_err(|e| &e.error),
                    Err(SessionError::SerializationConflict { .. })
                ),
                "overlapping insert must lose with a conflict, got {:?}",
                second.map(|o| format!("{o:?}"))
            );
        } else {
            let out = second.unwrap();
            prop_assert!(out[0].is_committed(), "disjoint commit rejected: {:?}", out);
            expected.extend(keys_b.iter().map(|k| (*k, 200)));
        }
        expected.sort_unstable();

        let rs = server
            .connect()
            .query_rows("SELECT k, v FROM t ORDER BY k")
            .unwrap();
        let got: Vec<(i64, i64)> = rs
            .rows
            .iter()
            .map(|r| match (&r[0], &r[1]) {
                (Value::Int(k), Value::Int(v)) => (*k, *v),
                other => panic!("non-int row {other:?}"),
            })
            .collect();
        prop_assert_eq!(got, expected, "committed state lost or corrupted");
    }
}
