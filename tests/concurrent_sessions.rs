//! Acceptance tests for concurrent sessions over one shared database.
//!
//! The contract under test (see `docs/ARCHITECTURE.md`):
//!
//! * any number of [`Session`]s attach to one [`SharedDatabase`] through a
//!   [`Server`];
//! * a transaction's pending update is visible to its own queries
//!   (read-your-writes) and to nobody else;
//! * `COMMIT` is one exclusive critical section — a violating commit rolls
//!   back atomically while a concurrent valid commit survives, and no
//!   session ever observes a torn intermediate state.

use std::sync::{Arc, Barrier};
use tintin_session::{Server, Session, StatementOutcome};

/// orders/lineitem schema with the paper's running-example assertion:
/// every order must have at least one lineitem.
fn orders_server() -> Server {
    let server = Server::new();
    let mut s = server.connect();
    s.execute(
        "CREATE TABLE orders (o_orderkey INT PRIMARY KEY, o_totalprice REAL);
         CREATE TABLE lineitem (
             l_orderkey INT NOT NULL REFERENCES orders,
             l_linenumber INT NOT NULL,
             PRIMARY KEY (l_orderkey, l_linenumber));
         CREATE ASSERTION atLeastOneLineItem CHECK (NOT EXISTS (
             SELECT * FROM orders o WHERE NOT EXISTS (
                 SELECT * FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)));",
    )
    .unwrap();
    server
}

fn count(s: &Session, sql: &str) -> usize {
    s.query_rows(sql).unwrap().len()
}

/// The acceptance scenario from the issue, single-threaded for a
/// deterministic interleaving: two sessions, both with open transactions;
/// a SELECT inside each observes that transaction's own pending
/// inserts/deletes but not the other session's; the violating commit rolls
/// back while the valid one survives.
#[test]
fn interleaved_transactions_are_isolated_until_commit() {
    let server = orders_server();
    let mut good = server.connect();
    let mut bad = server.connect();
    assert!(good.database().same_database(bad.database()));

    good.execute("BEGIN; INSERT INTO orders VALUES (1, 10.0); INSERT INTO lineitem VALUES (1, 1);")
        .unwrap();
    bad.execute("BEGIN; INSERT INTO orders VALUES (2, 20.0);")
        .unwrap();

    // Read-your-writes: each session sees exactly its own pending rows.
    assert_eq!(count(&good, "SELECT * FROM orders WHERE o_orderkey = 1"), 1);
    assert_eq!(count(&good, "SELECT * FROM orders WHERE o_orderkey = 2"), 0);
    assert_eq!(count(&bad, "SELECT * FROM orders WHERE o_orderkey = 2"), 1);
    assert_eq!(count(&bad, "SELECT * FROM orders WHERE o_orderkey = 1"), 0);
    // …including through joins/subqueries: `good`'s pending order has a
    // pending lineitem, `bad`'s does not.
    let orphans = "SELECT * FROM orders o WHERE NOT EXISTS (
        SELECT * FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)";
    assert_eq!(count(&good, orphans), 0);
    assert_eq!(count(&bad, orphans), 1);
    // The shared database itself has seen nothing.
    assert_eq!(server.database().read().table("orders").unwrap().len(), 0);

    // The valid commit survives; the violating one rolls back atomically.
    let out = good.execute("COMMIT").unwrap();
    assert!(out[0].is_committed(), "got {:?}", out[0]);
    let out = bad.execute("COMMIT").unwrap();
    let StatementOutcome::Rejected { violations, .. } = &out[0] else {
        panic!("expected rejection, got {:?}", out[0]);
    };
    assert_eq!(violations[0].assertion, "atleastonelineitem");

    // Final state: only the valid order, fully consistent, no stray events.
    for s in [&good, &bad] {
        assert_eq!(count(s, "SELECT * FROM orders"), 1);
        assert_eq!(count(s, orphans), 0);
        assert_eq!(s.pending_counts(), (0, 0));
    }
}

/// MVCC snapshot isolation: an open transaction keeps reading its
/// `BEGIN`-time state — a concurrent session's commit is invisible to it
/// (while its own pending writes remain visible), and only after the
/// transaction ends does the session observe the newly committed rows.
#[test]
fn open_transaction_reads_its_begin_time_snapshot() {
    let server = orders_server();
    let mut good = server.connect();
    let mut bad = server.connect();

    bad.execute("BEGIN; INSERT INTO orders VALUES (2, 20.0);")
        .unwrap();
    let before = bad
        .query_rows("SELECT * FROM orders ORDER BY o_orderkey")
        .unwrap();
    good.execute(
        "BEGIN; INSERT INTO orders VALUES (1, 10.0); INSERT INTO lineitem VALUES (1, 1); COMMIT;",
    )
    .unwrap();

    // The committed order 1 is invisible to bad's snapshot: repeated reads
    // are identical across the concurrent commit.
    assert_eq!(count(&bad, "SELECT * FROM orders"), 1);
    let after = bad
        .query_rows("SELECT * FROM orders ORDER BY o_orderkey")
        .unwrap();
    assert_eq!(before.rows, after.rows, "snapshot reads must be repeatable");
    // Autocommit readers (no snapshot pinned) see the latest state.
    assert_eq!(count(&server.connect(), "SELECT * FROM orders"), 1);

    bad.execute("ROLLBACK").unwrap();
    // Outside the transaction the session reads the latest committed state.
    assert_eq!(count(&bad, "SELECT * FROM orders"), 1);
    let rs = bad.query_rows("SELECT o_orderkey FROM orders").unwrap();
    assert_eq!(rs.rows[0][0], tintin_engine::Value::Int(1));
}

/// Two threads race their commits; one violates the assertion. Whatever the
/// interleaving, the violator rolls back, the valid commit survives, and
/// the final state is consistent.
#[test]
fn racing_commits_violator_rolls_back_valid_survives() {
    for round in 0..16 {
        let server = orders_server();
        let barrier = Arc::new(Barrier::new(2));

        let valid = {
            let mut s = server.connect();
            let b = barrier.clone();
            std::thread::spawn(move || {
                s.execute("BEGIN").unwrap();
                s.execute(&format!(
                    "INSERT INTO orders VALUES ({round}, 10.0);
                     INSERT INTO lineitem VALUES ({round}, 1);"
                ))
                .unwrap();
                b.wait();
                s.execute("COMMIT").unwrap().pop().unwrap()
            })
        };
        let violating = {
            let mut s = server.connect();
            let b = barrier.clone();
            std::thread::spawn(move || {
                s.execute("BEGIN").unwrap();
                s.execute(&format!(
                    "INSERT INTO orders VALUES ({}, 66.0)",
                    round + 1000
                ))
                .unwrap();
                b.wait();
                s.execute("COMMIT").unwrap().pop().unwrap()
            })
        };

        let valid_out = valid.join().unwrap();
        let violating_out = violating.join().unwrap();
        assert!(
            valid_out.is_committed(),
            "round {round}: valid commit lost: {valid_out:?}"
        );
        assert!(
            violating_out.is_rejected(),
            "round {round}: violating commit survived: {violating_out:?}"
        );

        let check = server.connect();
        assert_eq!(count(&check, "SELECT * FROM orders"), 1);
        assert_eq!(
            count(
                &check,
                "SELECT * FROM orders o WHERE NOT EXISTS (
                     SELECT * FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)"
            ),
            0,
            "round {round}: inconsistent state committed"
        );
        assert_eq!(server.database().read().pending_counts(), (0, 0));
    }
}

/// A reader hammering the invariant while writers commit valid batches:
/// because `COMMIT` holds the exclusive write lock for the whole
/// check-and-apply section, no read can ever observe an order without its
/// lineitem (a torn, mid-commit state).
#[test]
fn readers_never_observe_torn_commits() {
    let server = orders_server();
    let writers: Vec<_> = (0..2)
        .map(|w| {
            let mut s = server.connect();
            std::thread::spawn(move || {
                for i in 0..50 {
                    let key = w * 1000 + i;
                    let out = s
                        .execute(&format!(
                            "BEGIN;
                             INSERT INTO orders VALUES ({key}, 1.0);
                             INSERT INTO lineitem VALUES ({key}, 1);
                             COMMIT;"
                        ))
                        .unwrap();
                    assert!(out.last().unwrap().is_committed());
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let s = server.connect();
            std::thread::spawn(move || {
                let mut observed = 0usize;
                loop {
                    let orders = count(&s, "SELECT * FROM orders");
                    let orphans = count(
                        &s,
                        "SELECT * FROM orders o WHERE NOT EXISTS (
                             SELECT * FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)",
                    );
                    assert_eq!(orphans, 0, "torn commit observed at {orders} orders");
                    observed = observed.max(orders);
                    if orders == 100 {
                        return observed;
                    }
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    for r in readers {
        assert_eq!(r.join().unwrap(), 100);
    }
}

/// Write-write conflict on the same primary key with different payloads:
/// exactly one commit applies; the loser fails at apply time and its
/// transaction is discarded without corrupting the shared state.
#[test]
fn conflicting_commits_exactly_one_wins() {
    let server = Server::new();
    server
        .connect()
        .execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
        .unwrap();
    let barrier = Arc::new(Barrier::new(2));
    let handles: Vec<_> = (0..2)
        .map(|v| {
            let mut s = server.connect();
            let b = barrier.clone();
            std::thread::spawn(move || {
                s.execute("BEGIN").unwrap();
                s.execute(&format!("INSERT INTO t VALUES (1, {v})"))
                    .unwrap();
                b.wait();
                s.execute("COMMIT").map(|mut o| o.pop().unwrap())
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let committed = results
        .iter()
        .filter(|r| matches!(r, Ok(o) if o.is_committed()))
        .count();
    let failed = results.iter().filter(|r| r.is_err()).count();
    assert_eq!((committed, failed), (1, 1), "got {results:?}");

    let check = server.connect();
    assert_eq!(count(&check, "SELECT * FROM t"), 1);
    assert_eq!(server.database().read().pending_counts(), (0, 0));
}

/// Two transactions update the same row; the first commit wins and the
/// second surfaces as a **distinct serialization-conflict error** — not as
/// an assertion violation, and not as a silent "lost update" where both
/// versions of the row end up coexisting. The loser is fully rolled back,
/// and an immediate retry on a fresh snapshot succeeds.
#[test]
fn stale_delete_surfaces_as_conflict_not_lost_update() {
    use tintin_engine::Value;
    use tintin_session::SessionError;

    let server = Server::new();
    server
        .connect()
        .execute("CREATE TABLE t (a INT, b INT); INSERT INTO t VALUES (1, 10);")
        .unwrap();
    let mut first = server.connect();
    let mut second = server.connect();
    first
        .execute("BEGIN; UPDATE t SET b = 11 WHERE a = 1;")
        .unwrap();
    second
        .execute("BEGIN; UPDATE t SET b = 12 WHERE a = 1;")
        .unwrap();
    assert!(first.execute("COMMIT").unwrap()[0].is_committed());
    // Second's planned deletion of (1, 10) is stale now: first-committer
    // wins, and the loser gets the dedicated conflict error — not an
    // assertion Rejected outcome and not a generic engine error.
    let err = second.execute("COMMIT").unwrap_err();
    assert!(
        matches!(err.error, SessionError::SerializationConflict { ref table, .. } if table == "t"),
        "got {err:?}"
    );
    // The failing statement is identified, and the outcomes before it are
    // preserved (the BEGIN back when the transaction opened ran in an
    // earlier script, so this one has none).
    assert_eq!(err.statement_index, 0);
    assert_eq!(err.statement, "COMMIT");
    // The losing transaction is fully rolled back: session usable, no
    // pending work, no stray events.
    assert!(!second.in_transaction());
    assert_eq!(second.pending_counts(), (0, 0));

    let check = server.connect();
    let rs = check.query_rows("SELECT b FROM t").unwrap();
    assert_eq!(rs.len(), 1, "lost update: both versions survived");
    assert_eq!(rs.rows[0][0], Value::Int(11));
    assert_eq!(server.database().read().pending_counts(), (0, 0));

    // An immediate retry on a fresh snapshot observes the winner's row and
    // succeeds.
    let out = second
        .execute("BEGIN; UPDATE t SET b = 12 WHERE a = 1; COMMIT;")
        .unwrap();
    assert!(out.last().unwrap().is_committed(), "retry failed: {out:?}");
    let rs = check.query_rows("SELECT b FROM t").unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(12));
}

/// The MVCC acceptance criterion, demonstrated directly: a `SELECT` in an
/// open transaction completes — returning its `BEGIN`-time snapshot —
/// while another session's checked `COMMIT` is *in flight* (its check
/// phase entered, its decision not yet published). Under the old
/// database-wide lock this read would block until the commit finished.
#[test]
fn select_completes_while_checked_commit_is_in_flight() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    let server = orders_server();
    server
        .connect()
        .execute(
            "BEGIN; INSERT INTO orders VALUES (1, 1.0);
             INSERT INTO lineitem VALUES (1, 1); COMMIT;",
        )
        .unwrap();

    let mut reader = server.connect();
    reader.execute("BEGIN").unwrap();
    let before = reader.query_rows("SELECT * FROM orders").unwrap();

    // A writer thread spins many checked commits; the reader keeps
    // querying the whole time. With the phased commit the reader's reads
    // interleave with in-flight check phases (the 1ms sleep below keeps
    // the writer's window open long enough that overlap is certain in
    // aggregate), and every single read returns the BEGIN-time snapshot.
    let done = Arc::new(AtomicBool::new(false));
    let writer = {
        let mut s = server.connect();
        let done = done.clone();
        std::thread::spawn(move || {
            let mut k = 100;
            while !done.load(Ordering::Relaxed) {
                let out = s
                    .execute(&format!(
                        "BEGIN; INSERT INTO orders VALUES ({k}, 1.0);
                         INSERT INTO lineitem VALUES ({k}, 1); COMMIT;"
                    ))
                    .unwrap();
                assert!(out.last().unwrap().is_committed());
                k += 1;
            }
            k - 100
        })
    };
    let deadline = std::time::Instant::now() + Duration::from_millis(200);
    let mut reads = 0usize;
    while std::time::Instant::now() < deadline {
        let rs = reader.query_rows("SELECT * FROM orders").unwrap();
        assert_eq!(rs.rows, before.rows, "snapshot read changed mid-commit");
        reads += 1;
    }
    done.store(true, Ordering::Relaxed);
    let commits = writer.join().unwrap();
    assert!(reads > 0 && commits > 0, "no overlap exercised");
    reader.execute("ROLLBACK").unwrap();
    // The reader was simply behind, not wrong: the latest state has them.
    assert_eq!(count(&reader, "SELECT * FROM orders"), 1 + commits);
}

/// Regression: a reader polling the `ins_T` / `del_T` event tables — or a
/// vio view, which joins them — during another session's checked commit
/// must never observe the committer's staged events. Staged rows are
/// stamped with the committer's *unpublished* timestamp, so neither an
/// autocommit read (pinned to the published clock) nor a registered
/// `BEGIN`-time snapshot can see them; before the fix they were staged
/// visible-to-everyone (`begin = 0`) and leaked to both kinds of reader
/// throughout the check phase, which runs under the shared read lock.
///
/// The checked workload includes an aggregate assertion whose fallback
/// re-runs a `GROUP BY … HAVING` query over the whole (preloaded) table, so
/// each commit's check phase is wide enough that continuous polling is
/// guaranteed to land inside it many times over the run.
#[test]
fn staged_events_invisible_to_readers_mid_commit() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};
    use tintin_engine::Value;

    let server = Server::new();
    let mut s = server.connect();
    s.execute("CREATE TABLE item (ik INT PRIMARY KEY, grp INT NOT NULL, val INT NOT NULL)")
        .unwrap();
    {
        let mut db = server.database().write();
        let rows: Vec<Vec<Value>> = (0..4_000)
            .map(|i| vec![Value::Int(i), Value::Int(i % 64), Value::Int(1)])
            .collect();
        db.insert_direct("item", rows).unwrap();
    }
    let inst = s
        .install(&[
            "CREATE ASSERTION nonneg CHECK (NOT EXISTS (
                 SELECT * FROM item WHERE val < 0))",
            "CREATE ASSERTION group_total_nonneg CHECK (NOT EXISTS (
                 SELECT grp FROM item GROUP BY grp HAVING SUM(val) < 0))",
        ])
        .unwrap();
    // One incremental vio view of the simple assertion: were staged events
    // visible, a violating in-flight commit would surface its tuples here.
    let vio_view = inst.assertions[0].view_names[0].clone();

    // Writer: alternately a valid committed batch and a violating rejected
    // one, so both accepted and rejected commits hold staged events during
    // their check phases.
    let done = Arc::new(AtomicBool::new(false));
    let writer = {
        let mut s = server.connect();
        let done = done.clone();
        std::thread::spawn(move || {
            let mut k = 1_000_000i64;
            let mut commits = 0usize;
            while !done.load(Ordering::Relaxed) {
                let values: Vec<String> = (0..32).map(|i| format!("({}, 0, 1)", k + i)).collect();
                let out = s
                    .execute(&format!(
                        "BEGIN; INSERT INTO item VALUES {}; COMMIT;",
                        values.join(", ")
                    ))
                    .unwrap();
                assert!(out.last().unwrap().is_committed());
                k += 32;
                let out = s
                    .execute(&format!(
                        "BEGIN; INSERT INTO item VALUES ({k}, 0, -1); COMMIT;"
                    ))
                    .unwrap();
                assert!(out.last().unwrap().is_rejected());
                k += 1;
                commits += 2;
            }
            commits
        })
    };

    // Two readers: one in autocommit (published-clock reads), one holding a
    // registered BEGIN-time snapshot. Neither may ever see a staged event.
    let autocommit = server.connect();
    let mut snapshot = server.connect();
    snapshot.execute("BEGIN").unwrap();
    let deadline = Instant::now() + Duration::from_millis(300);
    let mut reads = 0usize;
    while Instant::now() < deadline {
        for reader in [&autocommit, &snapshot] {
            for probe in ["SELECT * FROM ins_item", "SELECT * FROM del_item"] {
                let rs = reader.query_rows(probe).unwrap();
                assert!(
                    rs.rows.is_empty(),
                    "{probe} leaked {} staged event row(s) mid-commit",
                    rs.len()
                );
            }
            let rs = reader
                .query_rows(&format!("SELECT * FROM {vio_view}"))
                .unwrap();
            assert!(
                rs.rows.is_empty(),
                "vio view {vio_view} leaked staged violations mid-commit"
            );
        }
        reads += 1;
    }
    done.store(true, Ordering::Relaxed);
    let commits = writer.join().unwrap();
    assert!(reads > 0 && commits > 0, "no overlap exercised");
    snapshot.execute("ROLLBACK").unwrap();
}

/// Stress battery (release-mode; `cargo test --release -- --ignored`):
/// N reader threads holding open transactions scan continuously while M
/// writer threads commit assertion-checked batches for ~1 second. Every
/// reader must observe exactly the state that was committed at its
/// snapshot — byte-identical across all its reads — and never a torn or
/// unchecked state.
#[test]
#[ignore = "stress battery: run in release via `cargo test --release -- --ignored`"]
fn stress_snapshot_readers_under_checked_commit_storm() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};

    const READERS: usize = 4;
    const WRITERS: usize = 3;

    let server = orders_server();
    let done = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let mut s = server.connect();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut committed = 0usize;
                let mut k = (w as i64 + 1) * 1_000_000;
                while !done.load(Ordering::Relaxed) {
                    // A checked batch: two orders with their lineitems.
                    let out = s
                        .execute(&format!(
                            "BEGIN;
                             INSERT INTO orders VALUES ({k}, 1.0);
                             INSERT INTO lineitem VALUES ({k}, 1);
                             INSERT INTO orders VALUES ({}, 2.0);
                             INSERT INTO lineitem VALUES ({}, 1);
                             COMMIT;",
                            k + 1,
                            k + 1
                        ))
                        .unwrap();
                    assert!(out.last().unwrap().is_committed());
                    committed += 2;
                    k += 2;
                }
                committed
            })
        })
        .collect();

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let server = server.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut snapshots_held = 0usize;
                while !done.load(Ordering::Relaxed) {
                    let mut s = server.connect();
                    s.execute("BEGIN").unwrap();
                    let orders = s.query_rows("SELECT * FROM orders").unwrap();
                    // Consistency: only fully checked states are visible —
                    // an order implies its lineitem, always.
                    let orphans = s
                        .query_rows(
                            "SELECT * FROM orders o WHERE NOT EXISTS (
                                 SELECT * FROM lineitem l
                                 WHERE l.l_orderkey = o.o_orderkey)",
                        )
                        .unwrap();
                    assert_eq!(orphans.len(), 0, "unchecked state observed");
                    // Stability: re-reads inside the transaction are
                    // byte-identical no matter what commits meanwhile.
                    for _ in 0..8 {
                        let again = s.query_rows("SELECT * FROM orders").unwrap();
                        assert_eq!(
                            again.rows, orders.rows,
                            "snapshot read shifted under concurrent commits"
                        );
                    }
                    s.execute("ROLLBACK").unwrap();
                    snapshots_held += 1;
                }
                snapshots_held
            })
        })
        .collect();

    std::thread::sleep(Duration::from_secs(1));
    done.store(true, Ordering::Relaxed);
    let total_committed: usize = writers.into_iter().map(|w| w.join().unwrap()).sum();
    let total_snapshots: usize = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(total_committed > 0, "writers starved");
    assert!(total_snapshots > 0, "readers starved");

    // Row-version accounting balances: the latest state is exactly the
    // committed orders, live version counts equal visible row counts, and
    // a final GC (no snapshots remain) drains every dead version without
    // touching the live ones.
    let check = server.connect();
    assert_eq!(count(&check, "SELECT * FROM orders"), total_committed);
    let (live_before, _dead_before) = {
        let db = server.database().read();
        let stats = db.mvcc_stats();
        let visible: usize = ["orders", "lineitem"]
            .iter()
            .map(|t| db.table(t).unwrap().len())
            .sum();
        assert_eq!(
            stats.live_versions, visible,
            "live version count diverged from visible rows"
        );
        (stats.live_versions, stats.dead_versions)
    };
    let horizon = {
        let db = server.database().read();
        db.current_ts()
    };
    assert_eq!(server.database().oldest_snapshot(), None);
    server.database().write().gc_versions(horizon);
    let stats = server.database().read().mvcc_stats();
    assert_eq!(stats.dead_versions, 0, "GC left dead versions behind");
    assert_eq!(stats.live_versions, live_before, "GC pruned live versions");
    assert_eq!(count(&check, "SELECT * FROM orders"), total_committed);

    // Deadline guard: the whole storm must not have wedged anything.
    let t0 = Instant::now();
    assert!(check.query_rows("SELECT * FROM orders").is_ok());
    assert!(t0.elapsed() < Duration::from_secs(1));
}

/// The deterministic-scheduler variant of the reader storm above, in the
/// default suite: instead of racing OS threads for a second, the commit
/// hook polls pinned reader snapshots at the `Staged` and `Checked` phase
/// boundaries of every commit — the exact interleavings the stress
/// battery can only hope to hit. Readers must observe byte-identical
/// snapshots and never a torn (orphaned-order) state; version accounting
/// and a final GC must balance just like the long version.
#[test]
fn snapshot_readers_under_checked_commit_storm_deterministic() {
    use std::sync::Mutex;
    use tintin_session::{CommitPhase, HookAction};

    const ROUNDS: usize = 12;
    const READERS: usize = 3;

    type Rows = Vec<Box<[tintin_engine::Value]>>;

    let server = orders_server();
    let orphans_sql = "SELECT * FROM orders o WHERE NOT EXISTS (
         SELECT * FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)";

    // Pinned readers with open snapshots; the hook re-reads them
    // mid-commit, so they live behind mutexes it can lock.
    let readers: Vec<Arc<Mutex<Session>>> = (0..READERS)
        .map(|_| Arc::new(Mutex::new(server.connect())))
        .collect();
    let baselines: Arc<Mutex<Vec<Rows>>> = Arc::new(Mutex::new(Vec::new()));
    let pin = |r: &Arc<Mutex<Session>>| {
        let mut s = r.lock().unwrap();
        s.execute("BEGIN").unwrap();
        s.query_rows("SELECT * FROM orders ORDER BY o_orderkey")
            .unwrap()
            .rows
    };
    {
        let mut b = baselines.lock().unwrap();
        for r in &readers {
            b.push(pin(r));
        }
    }

    // Mid-commit probes: any divergence is recorded, not panicked, so the
    // commit machinery unwinds normally and the test reports it after.
    let issues: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let probes = Arc::new(Mutex::new(0usize));
    {
        let readers = readers.clone();
        let baselines = baselines.clone();
        let issues = issues.clone();
        let probes = probes.clone();
        server.set_commit_hook(Arc::new(move |_ts, phase| {
            if matches!(phase, CommitPhase::Staged | CommitPhase::Checked) {
                *probes.lock().unwrap() += 1;
                let b = baselines.lock().unwrap();
                for (i, r) in readers.iter().enumerate() {
                    let s = r.lock().unwrap();
                    let rows = s
                        .query_rows("SELECT * FROM orders ORDER BY o_orderkey")
                        .unwrap()
                        .rows;
                    if rows != b[i] {
                        issues
                            .lock()
                            .unwrap()
                            .push(format!("reader {i} shifted at {phase:?}"));
                    }
                    if !s.query_rows(orphans_sql).unwrap().rows.is_empty() {
                        issues
                            .lock()
                            .unwrap()
                            .push(format!("reader {i} saw a torn state at {phase:?}"));
                    }
                }
            }
            HookAction::Continue
        }));
    }

    let mut writer = server.connect();
    for round in 0..ROUNDS {
        let k = 1_000_000 + 2 * round as i64;
        let out = writer
            .execute(&format!(
                "BEGIN;
                 INSERT INTO orders VALUES ({k}, 1.0);
                 INSERT INTO lineitem VALUES ({k}, 1);
                 INSERT INTO orders VALUES ({}, 2.0);
                 INSERT INTO lineitem VALUES ({}, 1);
                 COMMIT;",
                k + 1,
                k + 1
            ))
            .unwrap();
        assert!(out.last().unwrap().is_committed());
        // Deterministic rotation: after each commit one reader re-pins at
        // the newly published state, so snapshots of every age coexist.
        let rotate = round % READERS;
        readers[rotate].lock().unwrap().execute("ROLLBACK").unwrap();
        baselines.lock().unwrap()[rotate] = pin(&readers[rotate]);
    }
    server.clear_commit_hook();
    assert!(
        issues.lock().unwrap().is_empty(),
        "mid-commit snapshot violations: {:?}",
        issues.lock().unwrap()
    );
    assert_eq!(*probes.lock().unwrap(), 2 * ROUNDS, "hook probes missing");
    for r in &readers {
        r.lock().unwrap().execute("ROLLBACK").unwrap();
    }

    // Version accounting and a final GC balance exactly as in the
    // release-mode battery.
    let check = server.connect();
    assert_eq!(count(&check, "SELECT * FROM orders"), 2 * ROUNDS);
    let live_before = {
        let db = server.database().read();
        let stats = db.mvcc_stats();
        let visible: usize = ["orders", "lineitem"]
            .iter()
            .map(|t| db.table(t).unwrap().len())
            .sum();
        assert_eq!(stats.live_versions, visible);
        stats.live_versions
    };
    assert_eq!(server.database().oldest_snapshot(), None);
    let horizon = server.database().read().current_ts();
    server.database().write().gc_versions(horizon);
    let stats = server.database().read().mvcc_stats();
    assert_eq!(stats.dead_versions, 0, "GC left dead versions behind");
    assert_eq!(stats.live_versions, live_before, "GC pruned live versions");
}

/// Stress battery (release-mode): garbage collection racing live
/// snapshots. Writers churn versions (update-heavy, so dead versions
/// accumulate) while readers pin snapshots and GC runs aggressively at the
/// honest horizon — no reader may ever lose a version its snapshot can
/// still see.
#[test]
#[ignore = "stress battery: run in release via `cargo test --release -- --ignored`"]
fn stress_gc_never_reclaims_versions_a_live_snapshot_sees() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    let server = Server::new();
    server
        .connect()
        .execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
        .unwrap();
    let mut seed = server.connect();
    seed.execute("BEGIN").unwrap();
    for k in 0..50 {
        seed.execute(&format!("INSERT INTO t VALUES ({k}, 0)"))
            .unwrap();
    }
    assert!(seed.execute("COMMIT").unwrap()[0].is_committed());

    let done = Arc::new(AtomicBool::new(false));
    // Update-heavy writers: `v = v + 1` always changes every row, so every
    // committed round kills 50 versions and creates 50 fresh ones.
    let writers: Vec<_> = (0..2)
        .map(|_| {
            let mut s = server.connect();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut rounds = 0usize;
                while !done.load(Ordering::Relaxed) {
                    let r = s.execute("BEGIN; UPDATE t SET v = v + 1; COMMIT;");
                    // Losing a first-committer-wins race is expected noise.
                    match r {
                        Ok(out) => {
                            assert!(out.last().unwrap().is_committed());
                            rounds += 1;
                        }
                        Err(e)
                            if matches!(
                                e.error,
                                tintin_session::SessionError::SerializationConflict { .. }
                            ) => {}
                        Err(e) => panic!("unexpected commit failure: {e}"),
                    }
                }
                rounds
            })
        })
        .collect();
    // An aggressive collector at the honest horizon.
    let collector = {
        let server = server.clone();
        let done = done.clone();
        std::thread::spawn(move || {
            let mut pruned = 0usize;
            while !done.load(Ordering::Relaxed) {
                let current = server.database().read().current_ts();
                let horizon = server.database().gc_horizon(current);
                pruned += server.database().write().gc_versions(horizon);
            }
            pruned
        })
    };
    // Readers pin snapshots and verify them repeatedly against GC.
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let server = server.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    let mut s = server.connect();
                    s.execute("BEGIN").unwrap();
                    let rows = s.query_rows("SELECT k, v FROM t ORDER BY k").unwrap();
                    assert_eq!(rows.len(), 50, "rows vanished from a snapshot");
                    for _ in 0..4 {
                        let again = s.query_rows("SELECT k, v FROM t ORDER BY k").unwrap();
                        assert_eq!(
                            again.rows, rows.rows,
                            "GC reclaimed a version a live snapshot could see"
                        );
                    }
                    s.execute("ROLLBACK").unwrap();
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_secs(1));
    done.store(true, Ordering::Relaxed);
    let rounds: usize = writers.into_iter().map(|w| w.join().unwrap()).sum();
    for r in readers {
        r.join().unwrap();
    }
    let pruned = collector.join().unwrap();
    assert!(rounds > 0, "writers starved");
    assert!(pruned > 0, "collector never pruned anything");

    // Final accounting: 50 live rows; with no snapshots left a last GC
    // drains the remaining history completely, and the cumulative pruned
    // counter balances the versions the update rounds killed exactly.
    let current = server.database().read().current_ts();
    server.database().write().gc_versions(current);
    let stats = server.database().read().mvcc_stats();
    assert_eq!(stats.live_versions, 50);
    assert_eq!(stats.dead_versions, 0);
    assert_eq!(
        stats.gc_pruned,
        (rounds * 50) as u64,
        "version accounting out of balance: {rounds} committed update rounds"
    );
}

/// The deterministic-scheduler variant of the GC race above, in the
/// default suite: the commit hook runs the collector at the honest horizon
/// at every phase boundary of every update round — GC interleaved exactly
/// between staging, checking, and publication — while a pinned snapshot is
/// re-verified each time. No reader may lose a version its snapshot can
/// still see, and the cumulative pruned counter must balance the versions
/// the update rounds killed.
#[test]
fn gc_never_reclaims_versions_a_live_snapshot_sees_deterministic() {
    use std::sync::Mutex;
    use tintin_session::HookAction;

    const ROWS: usize = 20;
    const ROUNDS: usize = 9;

    let server = Server::new();
    server
        .connect()
        .execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
        .unwrap();
    let mut seed = server.connect();
    seed.execute("BEGIN").unwrap();
    for k in 0..ROWS {
        seed.execute(&format!("INSERT INTO t VALUES ({k}, 0)"))
            .unwrap();
    }
    assert!(seed.execute("COMMIT").unwrap()[0].is_committed());

    let reader = Arc::new(Mutex::new(server.connect()));
    let pin = |r: &Arc<Mutex<Session>>| {
        let mut s = r.lock().unwrap();
        s.execute("BEGIN").unwrap();
        s.query_rows("SELECT k, v FROM t ORDER BY k").unwrap().rows
    };
    let baseline = Arc::new(Mutex::new(pin(&reader)));

    let issues: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let pruned_total = Arc::new(Mutex::new(0usize));
    {
        let server = server.clone();
        let reader = reader.clone();
        let baseline = baseline.clone();
        let issues = issues.clone();
        let pruned_total = pruned_total.clone();
        server.clone().set_commit_hook(Arc::new(move |_ts, phase| {
            // The collector runs at every boundary — including `Staged`
            // and `Checked`, where the commit's own update is not yet
            // published and must not be disturbed.
            let current = server.database().read().current_ts();
            let horizon = server.database().gc_horizon(current);
            *pruned_total.lock().unwrap() += server.database().write().gc_versions(horizon);
            let s = reader.lock().unwrap();
            let rows = s.query_rows("SELECT k, v FROM t ORDER BY k").unwrap().rows;
            if rows != *baseline.lock().unwrap() {
                issues
                    .lock()
                    .unwrap()
                    .push(format!("GC reclaimed a pinned version at {phase:?}"));
            }
            HookAction::Continue
        }));
    }

    let mut writer = server.connect();
    for round in 0..ROUNDS {
        let out = writer.execute("BEGIN; UPDATE t SET v = v + 1; COMMIT;");
        assert!(out.unwrap().last().unwrap().is_committed());
        // Re-pin every third round so the horizon advances and the
        // in-hook collector gets something to prune mid-commit.
        if round % 3 == 2 {
            reader.lock().unwrap().execute("ROLLBACK").unwrap();
            *baseline.lock().unwrap() = pin(&reader);
        }
    }
    server.clear_commit_hook();
    assert!(
        issues.lock().unwrap().is_empty(),
        "GC violated snapshot isolation: {:?}",
        issues.lock().unwrap()
    );
    assert!(
        *pruned_total.lock().unwrap() > 0,
        "the in-hook collector never pruned anything"
    );
    reader.lock().unwrap().execute("ROLLBACK").unwrap();

    // Final accounting: ROWS live rows, a last GC drains all history, and
    // the cumulative pruned counter balances the killed versions exactly.
    let current = server.database().read().current_ts();
    server.database().write().gc_versions(current);
    let stats = server.database().read().mvcc_stats();
    assert_eq!(stats.live_versions, ROWS);
    assert_eq!(stats.dead_versions, 0);
    assert_eq!(
        stats.gc_pruned,
        (ROUNDS * ROWS) as u64,
        "version accounting out of balance after {ROUNDS} update rounds"
    );
}

/// Sessions are plain `Send` values: a session created on one thread can be
/// moved to another, and the server handle can be shared freely.
#[test]
fn sessions_and_server_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<Server>();
    assert_send::<Session>();

    let server = orders_server();
    let mut moved = server.connect();
    std::thread::spawn(move || {
        moved
            .execute("BEGIN; INSERT INTO orders VALUES (7, 1.0); INSERT INTO lineitem VALUES (7, 1); COMMIT;")
            .unwrap();
    })
    .join()
    .unwrap();
    assert_eq!(count(&server.connect(), "SELECT * FROM orders"), 1);
}
