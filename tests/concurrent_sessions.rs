//! Acceptance tests for concurrent sessions over one shared database.
//!
//! The contract under test (see `docs/ARCHITECTURE.md`):
//!
//! * any number of [`Session`]s attach to one [`SharedDatabase`] through a
//!   [`Server`];
//! * a transaction's pending update is visible to its own queries
//!   (read-your-writes) and to nobody else;
//! * `COMMIT` is one exclusive critical section — a violating commit rolls
//!   back atomically while a concurrent valid commit survives, and no
//!   session ever observes a torn intermediate state.

use std::sync::{Arc, Barrier};
use tintin_session::{Server, Session, StatementOutcome};

/// orders/lineitem schema with the paper's running-example assertion:
/// every order must have at least one lineitem.
fn orders_server() -> Server {
    let server = Server::new();
    let mut s = server.connect();
    s.execute(
        "CREATE TABLE orders (o_orderkey INT PRIMARY KEY, o_totalprice REAL);
         CREATE TABLE lineitem (
             l_orderkey INT NOT NULL REFERENCES orders,
             l_linenumber INT NOT NULL,
             PRIMARY KEY (l_orderkey, l_linenumber));
         CREATE ASSERTION atLeastOneLineItem CHECK (NOT EXISTS (
             SELECT * FROM orders o WHERE NOT EXISTS (
                 SELECT * FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)));",
    )
    .unwrap();
    server
}

fn count(s: &Session, sql: &str) -> usize {
    s.query_rows(sql).unwrap().len()
}

/// The acceptance scenario from the issue, single-threaded for a
/// deterministic interleaving: two sessions, both with open transactions;
/// a SELECT inside each observes that transaction's own pending
/// inserts/deletes but not the other session's; the violating commit rolls
/// back while the valid one survives.
#[test]
fn interleaved_transactions_are_isolated_until_commit() {
    let server = orders_server();
    let mut good = server.connect();
    let mut bad = server.connect();
    assert!(good.database().same_database(bad.database()));

    good.execute("BEGIN; INSERT INTO orders VALUES (1, 10.0); INSERT INTO lineitem VALUES (1, 1);")
        .unwrap();
    bad.execute("BEGIN; INSERT INTO orders VALUES (2, 20.0);")
        .unwrap();

    // Read-your-writes: each session sees exactly its own pending rows.
    assert_eq!(count(&good, "SELECT * FROM orders WHERE o_orderkey = 1"), 1);
    assert_eq!(count(&good, "SELECT * FROM orders WHERE o_orderkey = 2"), 0);
    assert_eq!(count(&bad, "SELECT * FROM orders WHERE o_orderkey = 2"), 1);
    assert_eq!(count(&bad, "SELECT * FROM orders WHERE o_orderkey = 1"), 0);
    // …including through joins/subqueries: `good`'s pending order has a
    // pending lineitem, `bad`'s does not.
    let orphans = "SELECT * FROM orders o WHERE NOT EXISTS (
        SELECT * FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)";
    assert_eq!(count(&good, orphans), 0);
    assert_eq!(count(&bad, orphans), 1);
    // The shared database itself has seen nothing.
    assert_eq!(server.database().read().table("orders").unwrap().len(), 0);

    // The valid commit survives; the violating one rolls back atomically.
    let out = good.execute("COMMIT").unwrap();
    assert!(out[0].is_committed(), "got {:?}", out[0]);
    let out = bad.execute("COMMIT").unwrap();
    let StatementOutcome::Rejected { violations, .. } = &out[0] else {
        panic!("expected rejection, got {:?}", out[0]);
    };
    assert_eq!(violations[0].assertion, "atleastonelineitem");

    // Final state: only the valid order, fully consistent, no stray events.
    for s in [&good, &bad] {
        assert_eq!(count(s, "SELECT * FROM orders"), 1);
        assert_eq!(count(s, orphans), 0);
        assert_eq!(s.pending_counts(), (0, 0));
    }
}

/// After `good` commits, `bad`'s open transaction observes the newly
/// committed rows alongside its own pending ones (read-committed plus
/// read-your-writes — the MVCC snapshot upgrade is a roadmap item).
#[test]
fn open_transaction_sees_other_sessions_commits_plus_own_writes() {
    let server = orders_server();
    let mut good = server.connect();
    let mut bad = server.connect();

    bad.execute("BEGIN; INSERT INTO orders VALUES (2, 20.0);")
        .unwrap();
    good.execute(
        "BEGIN; INSERT INTO orders VALUES (1, 10.0); INSERT INTO lineitem VALUES (1, 1); COMMIT;",
    )
    .unwrap();

    assert_eq!(count(&bad, "SELECT * FROM orders"), 2);
    bad.execute("ROLLBACK").unwrap();
    assert_eq!(count(&bad, "SELECT * FROM orders"), 1);
}

/// Two threads race their commits; one violates the assertion. Whatever the
/// interleaving, the violator rolls back, the valid commit survives, and
/// the final state is consistent.
#[test]
fn racing_commits_violator_rolls_back_valid_survives() {
    for round in 0..16 {
        let server = orders_server();
        let barrier = Arc::new(Barrier::new(2));

        let valid = {
            let mut s = server.connect();
            let b = barrier.clone();
            std::thread::spawn(move || {
                s.execute("BEGIN").unwrap();
                s.execute(&format!(
                    "INSERT INTO orders VALUES ({round}, 10.0);
                     INSERT INTO lineitem VALUES ({round}, 1);"
                ))
                .unwrap();
                b.wait();
                s.execute("COMMIT").unwrap().pop().unwrap()
            })
        };
        let violating = {
            let mut s = server.connect();
            let b = barrier.clone();
            std::thread::spawn(move || {
                s.execute("BEGIN").unwrap();
                s.execute(&format!(
                    "INSERT INTO orders VALUES ({}, 66.0)",
                    round + 1000
                ))
                .unwrap();
                b.wait();
                s.execute("COMMIT").unwrap().pop().unwrap()
            })
        };

        let valid_out = valid.join().unwrap();
        let violating_out = violating.join().unwrap();
        assert!(
            valid_out.is_committed(),
            "round {round}: valid commit lost: {valid_out:?}"
        );
        assert!(
            violating_out.is_rejected(),
            "round {round}: violating commit survived: {violating_out:?}"
        );

        let check = server.connect();
        assert_eq!(count(&check, "SELECT * FROM orders"), 1);
        assert_eq!(
            count(
                &check,
                "SELECT * FROM orders o WHERE NOT EXISTS (
                     SELECT * FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)"
            ),
            0,
            "round {round}: inconsistent state committed"
        );
        assert_eq!(server.database().read().pending_counts(), (0, 0));
    }
}

/// A reader hammering the invariant while writers commit valid batches:
/// because `COMMIT` holds the exclusive write lock for the whole
/// check-and-apply section, no read can ever observe an order without its
/// lineitem (a torn, mid-commit state).
#[test]
fn readers_never_observe_torn_commits() {
    let server = orders_server();
    let writers: Vec<_> = (0..2)
        .map(|w| {
            let mut s = server.connect();
            std::thread::spawn(move || {
                for i in 0..50 {
                    let key = w * 1000 + i;
                    let out = s
                        .execute(&format!(
                            "BEGIN;
                             INSERT INTO orders VALUES ({key}, 1.0);
                             INSERT INTO lineitem VALUES ({key}, 1);
                             COMMIT;"
                        ))
                        .unwrap();
                    assert!(out.last().unwrap().is_committed());
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let s = server.connect();
            std::thread::spawn(move || {
                let mut observed = 0usize;
                loop {
                    let orders = count(&s, "SELECT * FROM orders");
                    let orphans = count(
                        &s,
                        "SELECT * FROM orders o WHERE NOT EXISTS (
                             SELECT * FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)",
                    );
                    assert_eq!(orphans, 0, "torn commit observed at {orders} orders");
                    observed = observed.max(orders);
                    if orders == 100 {
                        return observed;
                    }
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    for r in readers {
        assert_eq!(r.join().unwrap(), 100);
    }
}

/// Write-write conflict on the same primary key with different payloads:
/// exactly one commit applies; the loser fails at apply time and its
/// transaction is discarded without corrupting the shared state.
#[test]
fn conflicting_commits_exactly_one_wins() {
    let server = Server::new();
    server
        .connect()
        .execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
        .unwrap();
    let barrier = Arc::new(Barrier::new(2));
    let handles: Vec<_> = (0..2)
        .map(|v| {
            let mut s = server.connect();
            let b = barrier.clone();
            std::thread::spawn(move || {
                s.execute("BEGIN").unwrap();
                s.execute(&format!("INSERT INTO t VALUES (1, {v})"))
                    .unwrap();
                b.wait();
                s.execute("COMMIT").map(|mut o| o.pop().unwrap())
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let committed = results
        .iter()
        .filter(|r| matches!(r, Ok(o) if o.is_committed()))
        .count();
    let failed = results.iter().filter(|r| r.is_err()).count();
    assert_eq!((committed, failed), (1, 1), "got {results:?}");

    let check = server.connect();
    assert_eq!(count(&check, "SELECT * FROM t"), 1);
    assert_eq!(server.database().read().pending_counts(), (0, 0));
}

/// Two transactions update the same row; the first commit wins and the
/// second surfaces as a write-write conflict — not as a silent "lost
/// update" where both versions of the row end up coexisting.
#[test]
fn stale_delete_surfaces_as_conflict_not_lost_update() {
    use tintin_engine::Value;
    use tintin_session::SessionError;

    let server = Server::new();
    server
        .connect()
        .execute("CREATE TABLE t (a INT, b INT); INSERT INTO t VALUES (1, 10);")
        .unwrap();
    let mut first = server.connect();
    let mut second = server.connect();
    first
        .execute("BEGIN; UPDATE t SET b = 11 WHERE a = 1;")
        .unwrap();
    second
        .execute("BEGIN; UPDATE t SET b = 12 WHERE a = 1;")
        .unwrap();
    assert!(first.execute("COMMIT").unwrap()[0].is_committed());
    // Second's planned deletion of (1, 10) is stale now: conflict error,
    // transaction discarded, nothing half-applied.
    let err = second.execute("COMMIT").unwrap_err();
    assert!(matches!(err, SessionError::Engine(_)), "got {err:?}");
    assert!(!second.in_transaction());

    let check = server.connect();
    let rs = check.query_rows("SELECT b FROM t").unwrap();
    assert_eq!(rs.len(), 1, "lost update: both versions survived");
    assert_eq!(rs.rows[0][0], Value::Int(11));
    assert_eq!(server.database().read().pending_counts(), (0, 0));
}

/// Sessions are plain `Send` values: a session created on one thread can be
/// moved to another, and the server handle can be shared freely.
#[test]
fn sessions_and_server_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<Server>();
    assert_send::<Session>();

    let server = orders_server();
    let mut moved = server.connect();
    std::thread::spawn(move || {
        moved
            .execute("BEGIN; INSERT INTO orders VALUES (7, 1.0); INSERT INTO lineitem VALUES (7, 1); COMMIT;")
            .unwrap();
    })
    .join()
    .unwrap();
    assert_eq!(count(&server.connect(), "SELECT * FROM orders"), 1);
}
