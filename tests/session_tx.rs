//! Acceptance test for the transaction subsystem: multi-statement
//! transactions on the TPC-H schema with installed assertions must commit
//! atomically when valid and roll back atomically (base tables *and* event
//! tables restored) when an assertion is violated.

use tintin_engine::Value;
use tintin_session::{Session, SessionError, StatementOutcome};
use tintin_tpch::{Dbgen, TPCH_ASSERTIONS, TPCH_TABLES};

/// A session over a small generated TPC-H database with the paper's
/// running-example assertion (plus the quantity range check) installed.
fn tpch_session() -> Session {
    let gen = Dbgen::new(0.0005).with_seed(11); // ~750 orders
    let mut session = Session::with_database(gen.generate());
    session
        .install(&[TPCH_ASSERTIONS[0].1, TPCH_ASSERTIONS[1].1])
        .expect("install");
    session
}

fn table_sizes(session: &Session) -> Vec<(String, usize)> {
    TPCH_TABLES
        .iter()
        .map(|t| {
            (
                t.to_string(),
                session.database().read().table(t).expect("table").len(),
            )
        })
        .collect()
}

#[test]
fn valid_tpch_transaction_commits_atomically() {
    let mut session = tpch_session();
    let before = table_sizes(&session);

    let out = session
        .execute(
            "BEGIN;
             INSERT INTO orders VALUES (900001, 1, 150.0);
             INSERT INTO lineitem VALUES (900001, 1, 10, 1, 2);
             INSERT INTO lineitem VALUES (900001, 2, 20, 2, 3);
             COMMIT;",
        )
        .expect("valid transaction executes");

    let StatementOutcome::Committed {
        inserted, deleted, ..
    } = out.last().unwrap()
    else {
        panic!("expected commit, got {:?}", out.last());
    };
    assert_eq!((*inserted, *deleted), (3, 0));

    let after = table_sizes(&session);
    for ((t, b), (_, a)) in before.iter().zip(&after) {
        match t.as_str() {
            "orders" => assert_eq!(*a, b + 1),
            "lineitem" => assert_eq!(*a, b + 2),
            _ => assert_eq!(a, b, "{t} must be unchanged"),
        }
    }
    assert_eq!(session.pending_counts(), (0, 0));
    assert!(!session.in_transaction());

    // The new order is queryable after COMMIT.
    let out = session
        .execute("SELECT * FROM lineitem WHERE l_orderkey = 900001")
        .unwrap();
    let StatementOutcome::Rows(rs) = &out[0] else {
        panic!()
    };
    assert_eq!(rs.len(), 2);
}

#[test]
fn violating_tpch_transaction_rolls_back_atomically() {
    let mut session = tpch_session();
    let before = table_sizes(&session);

    // The order never gets a lineitem: atLeastOneLineItem is violated at
    // COMMIT, and the *entire* transaction must be discarded — including
    // the deletes, which were individually harmless.
    let out = session
        .execute(
            "BEGIN;
             INSERT INTO orders VALUES (900002, 1, 99.0);
             DELETE FROM lineitem WHERE l_orderkey = 1;
             COMMIT;",
        )
        .expect("execution succeeds; the commit is rejected, not errored");

    let StatementOutcome::Rejected { violations, .. } = out.last().unwrap() else {
        panic!("expected rejection, got {:?}", out.last());
    };
    assert!(violations
        .iter()
        .any(|v| v.assertion == "atleastonelineitem"));

    // Base tables and event tables both restored.
    assert_eq!(table_sizes(&session), before);
    assert_eq!(session.pending_counts(), (0, 0));
    assert!(!session.in_transaction());

    // The session remains usable: the same work done right commits.
    let out = session
        .execute(
            "BEGIN;
             INSERT INTO orders VALUES (900002, 1, 99.0);
             INSERT INTO lineitem VALUES (900002, 1, 5, 1, 2);
             COMMIT;",
        )
        .unwrap();
    assert!(out.last().unwrap().is_committed());
}

#[test]
fn savepoints_inside_tpch_transaction() {
    let mut session = tpch_session();

    session
        .execute(
            "BEGIN;
             INSERT INTO orders VALUES (900003, 1, 10.0);
             INSERT INTO lineitem VALUES (900003, 1, 1, 1, 2);
             SAVEPOINT with_order;",
        )
        .unwrap();

    // Doomed detour: deleting every lineitem of an existing order.
    session
        .execute("DELETE FROM lineitem WHERE l_orderkey = 2")
        .unwrap();
    let (_, dels) = session.pending_counts();
    assert!(dels > 0);

    // Partial rollback keeps the order+lineitem, discards the deletes.
    session.execute("ROLLBACK TO with_order").unwrap();
    let out = session.execute("COMMIT").unwrap();
    assert!(out[0].is_committed(), "got {:?}", out[0]);
    let rs = session
        .execute("SELECT * FROM lineitem WHERE l_orderkey = 2")
        .unwrap();
    let StatementOutcome::Rows(rs) = &rs[0] else {
        panic!()
    };
    assert!(!rs.is_empty(), "order 2 keeps its lineitems");
}

#[test]
fn update_in_transaction_checked_at_commit() {
    let mut session = tpch_session();

    // quantityInRange forbids quantities outside (0, 50]. An UPDATE is
    // captured as delete+insert pairs and checked at COMMIT.
    let out = session
        .execute(
            "BEGIN;
             UPDATE lineitem SET l_quantity = 99 WHERE l_orderkey = 1;
             COMMIT;",
        )
        .unwrap();
    let StatementOutcome::Rejected { violations, .. } = out.last().unwrap() else {
        panic!("expected rejection, got {:?}", out.last());
    };
    assert!(violations.iter().any(|v| v.assertion == "quantityinrange"));

    // Quantities unchanged.
    let out = session
        .execute("SELECT * FROM lineitem WHERE l_quantity > 50")
        .unwrap();
    let StatementOutcome::Rows(rs) = &out[0] else {
        panic!()
    };
    assert!(rs.is_empty());

    // A legal update commits.
    let out = session
        .execute("BEGIN; UPDATE lineitem SET l_quantity = 42 WHERE l_orderkey = 1; COMMIT;")
        .unwrap();
    assert!(out.last().unwrap().is_committed());
    let out = session
        .execute("SELECT l_quantity FROM lineitem WHERE l_orderkey = 1")
        .unwrap();
    let StatementOutcome::Rows(rs) = &out[0] else {
        panic!()
    };
    assert!(rs.rows.iter().all(|r| r[0] == Value::Int(42)));
}

#[test]
fn autocommit_equivalent_to_single_statement_transaction() {
    let mut a = tpch_session();
    let mut b = tpch_session();

    let stmt = "INSERT INTO orders VALUES (900010, 1, 1.0)"; // violates A1
    let out_a = a.execute(stmt).unwrap();
    let out_b = b.execute(&format!("BEGIN; {stmt}; COMMIT;")).unwrap();
    assert!(out_a[0].is_rejected());
    assert!(out_b.last().unwrap().is_rejected());
    assert_eq!(table_sizes(&a), table_sizes(&b));
}

#[test]
fn ddl_is_fenced_out_of_transactions() {
    let mut session = tpch_session();
    session.execute("BEGIN").unwrap();
    for (ddl, kind) in [
        ("CREATE TABLE z (a INT)", "CREATE TABLE"),
        ("DROP TABLE region", "DROP TABLE"),
        ("TRUNCATE TABLE region", "TRUNCATE TABLE"),
        (
            "CREATE ASSERTION zz CHECK (NOT EXISTS (SELECT * FROM region WHERE r_regionkey < 0))",
            "CREATE ASSERTION",
        ),
        // The reported verb phrase comes from the AST variant, not from the
        // first two printed tokens ("CREATE UNIQUE" is not a statement).
        (
            "CREATE UNIQUE INDEX z_ix ON region (r_regionkey)",
            "CREATE UNIQUE INDEX",
        ),
        ("CREATE INDEX z_ix ON region (r_name)", "CREATE INDEX"),
        ("DROP INDEX z_ix ON region", "DROP INDEX"),
    ] {
        let err = session
            .execute(ddl)
            .expect_err(&format!("{ddl} must be rejected inside a transaction"));
        assert!(
            matches!(err.error, SessionError::DdlInTransaction(ref k) if k == kind),
            "{ddl}: expected DdlInTransaction({kind}), got {err:?}"
        );
    }
    session.execute("ROLLBACK").unwrap();
}
