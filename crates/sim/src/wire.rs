//! Wire-layer fault injection: drive a live `tintin-server` over real TCP
//! and hit it with the failure modes the protocol documents — garbage
//! (non-UTF-8) payloads, oversized frame announcements, torn length
//! prefixes, and connections dropped mid-transaction — asserting the
//! documented behavior for each and that the server stays healthy
//! throughout.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use tintin_client::Client;
use tintin_server::protocol::{decode_response, read_frame, write_frame, MAX_FRAME};
use tintin_server::{ServerConfig, WireServer};
use tintin_session::{Server, StatementOutcome};

const READ_TIMEOUT: Duration = Duration::from_secs(10);

fn raw_connect(addr: std::net::SocketAddr) -> Result<TcpStream, String> {
    let s = TcpStream::connect(addr).map_err(|e| format!("raw connect failed: {e}"))?;
    s.set_read_timeout(Some(READ_TIMEOUT))
        .map_err(|e| format!("set_read_timeout failed: {e}"))?;
    Ok(s)
}

/// Run the wire-fault battery. Returns one log line per passed check.
pub fn run_wire_faults(seed: u64) -> Result<Vec<String>, String> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5157_4952_455f_4654); // "QWIRE_FT"
    let mut log = Vec::new();

    let sessions = Server::new();
    let wire = WireServer::bind(sessions, "127.0.0.1:0", ServerConfig::default())
        .map_err(|e| format!("bind failed: {e}"))?;
    let addr = wire.local_addr();

    // --- baseline: a well-formed workload -------------------------------
    let mut c1 = Client::connect(addr).map_err(|e| format!("connect failed: {e}"))?;
    c1.execute("CREATE TABLE w0 (k INT PRIMARY KEY, a INT NOT NULL)")
        .map_err(|e| format!("DDL failed: {e}"))?;
    c1.execute("CREATE ASSERTION w0_nonneg CHECK (NOT EXISTS (SELECT * FROM w0 WHERE a < 0))")
        .map_err(|e| format!("CREATE ASSERTION failed: {e}"))?;
    let out = c1
        .execute("INSERT INTO w0 VALUES (1, 5)")
        .map_err(|e| format!("INSERT failed: {e}"))?;
    if !matches!(out.first(), Some(o) if o.is_committed()) {
        return Err(format!("expected a committed insert, got {out:?}"));
    }
    let out = c1
        .execute("INSERT INTO w0 VALUES (2, -1)")
        .map_err(|e| format!("violating INSERT errored instead of rejecting: {e}"))?;
    if !matches!(out.first(), Some(o) if o.is_rejected()) {
        return Err(format!("expected a rejected insert, got {out:?}"));
    }
    log.push("baseline workload: commit + assertion rejection over the wire".to_string());

    // --- garbage (non-UTF-8) frame: typed error, connection kept ---------
    {
        let mut s = raw_connect(addr)?;
        let n = rng.gen_range(1..=64usize);
        let mut payload = vec![0u8; n];
        rng.fill_bytes(&mut payload);
        payload[0] = 0xff; // 0xff can never appear in UTF-8
        s.write_all(&(n as u32).to_be_bytes())
            .and_then(|()| s.write_all(&payload))
            .map_err(|e| format!("garbage frame write failed: {e}"))?;
        let resp = read_frame(&mut s)
            .map_err(|e| format!("no response to a garbage frame: {e}"))?
            .ok_or("server closed the connection on a garbage frame (expected a typed error)")?;
        match decode_response(&resp) {
            Ok(Err(_)) => {}
            other => return Err(format!("expected a typed error response, got {other:?}")),
        }
        // The stream stayed frame-aligned: the same connection must still
        // serve well-formed requests.
        write_frame(&mut s, "SELECT * FROM w0 ORDER BY k")
            .map_err(|e| format!("follow-up write failed: {e}"))?;
        let resp = read_frame(&mut s)
            .map_err(|e| format!("follow-up read failed: {e}"))?
            .ok_or("connection was closed after a recoverable garbage frame")?;
        match decode_response(&resp) {
            Ok(Ok(outcomes)) => match outcomes.first() {
                Some(StatementOutcome::Rows(rs)) if rs.rows.len() == 1 => {}
                other => {
                    return Err(format!(
                        "expected one row after garbage frame, got {other:?}"
                    ))
                }
            },
            other => return Err(format!("follow-up request failed: {other:?}")),
        }
        log.push(format!(
            "garbage frame ({n} bytes): typed error, connection survived"
        ));
    }

    // --- oversized frame announcement: typed error, connection ends ------
    {
        let mut s = raw_connect(addr)?;
        let announced = (MAX_FRAME + 1 + rng.gen_range(0..1024usize)) as u32;
        s.write_all(&announced.to_be_bytes())
            .map_err(|e| format!("oversized prefix write failed: {e}"))?;
        let resp = read_frame(&mut s)
            .map_err(|e| format!("no response to an oversized announcement: {e}"))?
            .ok_or("server closed without the documented typed error on an oversized frame")?;
        match decode_response(&resp) {
            Ok(Err(_)) => {}
            other => return Err(format!("expected a typed error response, got {other:?}")),
        }
        // The stream is desynchronized; the server must end the connection.
        match read_frame(&mut s) {
            Ok(None) | Err(_) => {}
            Ok(Some(x)) => {
                return Err(format!(
                    "connection survived an oversized announcement (got frame {x:?})"
                ))
            }
        }
        log.push(format!(
            "oversized announcement ({announced} bytes): typed error, connection ended"
        ));
    }

    // --- torn length prefix: typed error, connection ends, server stays up
    {
        let mut s = raw_connect(addr)?;
        s.write_all(&[0x00, 0x01])
            .map_err(|e| format!("torn prefix write failed: {e}"))?;
        s.shutdown(std::net::Shutdown::Write)
            .map_err(|e| format!("torn prefix shutdown failed: {e}"))?;
        let resp = read_frame(&mut s)
            .map_err(|e| format!("no response to a torn prefix: {e}"))?
            .ok_or("server closed without the documented typed error on a torn prefix")?;
        match decode_response(&resp) {
            Ok(Err(_)) => {}
            other => return Err(format!("expected a typed error response, got {other:?}")),
        }
        match read_frame(&mut s) {
            Ok(None) | Err(_) => {}
            Ok(Some(x)) => {
                return Err(format!(
                    "connection survived a torn prefix (got frame {x:?})"
                ))
            }
        }
        let mut probe =
            Client::connect(addr).map_err(|e| format!("server died after a torn prefix: {e}"))?;
        probe
            .ping()
            .map_err(|e| format!("server unresponsive after a torn prefix: {e}"))?;
        probe.close();
        log.push("torn length prefix: typed error, connection ended, server healthy".to_string());
    }

    // --- connection dropped mid-transaction: uncommitted work vanishes ---
    {
        let k = rng.gen_range(100..1000);
        let mut c2 = Client::connect(addr).map_err(|e| format!("connect failed: {e}"))?;
        let out = c2
            .execute(&format!("BEGIN; INSERT INTO w0 VALUES ({k}, 9)"))
            .map_err(|e| format!("mid-tx script failed: {e}"))?;
        if out.len() != 2 {
            return Err(format!("expected BEGIN + pending insert, got {out:?}"));
        }
        c2.close(); // drop the connection with the transaction open
        let rows = c1
            .query_rows(&format!("SELECT * FROM w0 WHERE k = {k}"))
            .map_err(|e| format!("post-drop query failed: {e}"))?;
        if !rows.rows.is_empty() {
            return Err(format!(
                "uncommitted row k={k} leaked after its connection dropped"
            ));
        }
        log.push("dropped mid-transaction connection: pending insert discarded".to_string());
    }

    // --- final sanity + shutdown -----------------------------------------
    let rows = c1
        .query_rows("SELECT * FROM w0 ORDER BY k")
        .map_err(|e| format!("final query failed: {e}"))?;
    if rows.rows.len() != 1 {
        return Err(format!(
            "expected exactly the one committed row at the end, got {}",
            rows.rows.len()
        ));
    }
    c1.close();
    wire.shutdown();
    log.push("graceful shutdown".to_string());
    Ok(log)
}
