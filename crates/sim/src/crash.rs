//! Crash and torn-write fault injection for the durable server.
//!
//! Each scenario drives a scripted, seeded workload against a
//! [`Server`] opened over a temp data directory, "crashes" it at a chosen
//! commit-phase hook point (capturing the log's durable/appended
//! watermarks at that exact instant), then simulates what a real crash
//! could leave on disk by rewriting the log tail — truncation at the
//! durable watermark, a torn partial frame, a flipped bit, a duplicated
//! record — and reopens the directory. The oracle then checks the
//! durability contract:
//!
//! * every **acknowledged** commit is present after recovery;
//! * **no rejected or aborted residue** — the recovered state is exactly
//!   the acknowledged prefix (plus, for a crash *after publication but
//!   before the ack*, optionally the one in-doubt commit);
//! * the recovered state passes `check_current_state` for every installed
//!   assertion (recovery's own `full_recheck` already ran too);
//! * recovery is **idempotent**: reopening again yields bit-identical
//!   state and the same commit clock.
//!
//! The battery also runs under the durability mutants
//! ([`Mutant::SkipFsync`], [`Mutant::AckBeforeLog`],
//! [`Mutant::TornCheckpoint`]) to prove the oracle catches each class of
//! write-protocol bug — a battery that cannot fail proves nothing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tintin_session::{
    CommitPhase, DurabilityFault, DurabilityOptions, HookAction, Server, StatementOutcome,
};

use crate::{fnv1a, Mutant, SimFailure};

/// Where in the phased commit the simulated crash lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// After phase 1 (staged, unchecked): the commit is abandoned — it was
    /// never acknowledged and must leave no trace.
    Staged,
    /// After phase 2 (checked, unpublished): same contract as `Staged`.
    Checked,
    /// After phase 3 published (record appended, fsync still pending, ack
    /// never delivered): the commit is *in-doubt* — recovery may or may
    /// not include it, but never a prefix of it.
    Published,
    /// After `COMMIT` returned: the commit is acknowledged and must
    /// survive any crash.
    AfterAck,
}

impl CrashPoint {
    /// All crash points, battery order.
    pub const ALL: [CrashPoint; 4] = [
        CrashPoint::Staged,
        CrashPoint::Checked,
        CrashPoint::Published,
        CrashPoint::AfterAck,
    ];

    /// CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            CrashPoint::Staged => "staged",
            CrashPoint::Checked => "checked",
            CrashPoint::Published => "published",
            CrashPoint::AfterAck => "after-ack",
        }
    }

    /// Parse a CLI name.
    pub fn parse(name: &str) -> Option<CrashPoint> {
        CrashPoint::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// What the simulated crash does to the bytes of the log file, relative to
/// the watermarks captured at the crash instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailFault {
    /// Every appended byte reached disk (the luckiest crash).
    KeepAll,
    /// Everything past the durable watermark is lost — the guaranteed
    /// survivor set. This is the fault that exposes `skip-fsync` and
    /// `ack-before-log`.
    LoseTail,
    /// Everything past the durable watermark is replaced by a torn partial
    /// frame (a header promising more bytes than exist).
    TornTail,
    /// The appended bytes survive but one bit past the durable watermark
    /// flipped (degenerates to `KeepAll` when nothing is past it).
    BitFlip,
    /// The final complete record was written twice (a retried append).
    DuplicateRecord,
}

impl TailFault {
    /// All tail faults, battery order.
    pub const ALL: [TailFault; 5] = [
        TailFault::KeepAll,
        TailFault::LoseTail,
        TailFault::TornTail,
        TailFault::BitFlip,
        TailFault::DuplicateRecord,
    ];

    /// CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            TailFault::KeepAll => "keep-all",
            TailFault::LoseTail => "lose-tail",
            TailFault::TornTail => "torn-tail",
            TailFault::BitFlip => "bit-flip",
            TailFault::DuplicateRecord => "duplicate-record",
        }
    }

    /// Parse a CLI name.
    pub fn parse(name: &str) -> Option<TailFault> {
        TailFault::ALL.into_iter().find(|f| f.name() == name)
    }
}

/// One cell of the crash matrix.
#[derive(Debug, Clone, Copy)]
pub struct CrashScenario {
    /// Where the crash lands.
    pub point: CrashPoint,
    /// What it does to the log tail.
    pub fault: TailFault,
}

/// The full crash matrix (every point × every tail fault).
pub fn scenarios() -> Vec<CrashScenario> {
    let mut out = Vec::new();
    for point in CrashPoint::ALL {
        for fault in TailFault::ALL {
            out.push(CrashScenario { point, fault });
        }
    }
    out
}

/// Map a durability mutant to the fault it injects into the server.
fn durability_fault(mutant: Mutant) -> DurabilityFault {
    match mutant {
        Mutant::SkipFsync => DurabilityFault::SkipFsync,
        Mutant::AckBeforeLog => DurabilityFault::AckBeforeLog,
        Mutant::TornCheckpoint => DurabilityFault::TornCheckpoint,
        _ => DurabilityFault::None,
    }
}

/// The crash instant, captured inside the commit hook (or after the acked
/// statement returned): the log watermarks a real crash at that moment
/// would race against.
#[derive(Debug, Clone, Copy, Default)]
struct Captured {
    durable_size: u64,
    appended_size: u64,
}

/// Shared state between the workload driver and the commit hook.
#[derive(Default)]
struct CrashTrigger {
    /// Non-no-op phased commits seen so far (counted at `Staged`).
    attempts: AtomicU64,
    /// Which attempt to crash in.
    target: AtomicU64,
    /// The captured watermarks, once the crash fired.
    captured: Mutex<Option<Captured>>,
}

/// Canonical dump of the scenario table, via a session read (so MVCC
/// visibility rules apply exactly as clients see them).
fn dump(server: &Server) -> Vec<String> {
    let sess = server.connect();
    // A recovery that lost the very DDL (no `t0` at all) is still a state
    // the oracle must compare against the model, not a harness crash.
    let rs = match sess.query_rows("SELECT * FROM t0") {
        Ok(rs) => rs,
        Err(e) => return vec![format!("<dump failed: {e}>")],
    };
    let mut rows: Vec<String> = rs.rows.iter().map(|r| format!("{r:?}")).collect();
    rows.sort();
    rows
}

fn model_dump(model: &std::collections::BTreeMap<i64, i64>) -> Vec<String> {
    let mut rows: Vec<String> = model
        .iter()
        .map(|(k, v)| format!("[Int({k}), Int({v})]"))
        .collect();
    rows.sort();
    rows
}

/// Apply the scenario's tail fault to the log file, relative to the
/// captured crash-instant watermarks.
fn apply_tail_fault(
    wal_path: &std::path::Path,
    fault: TailFault,
    cap: Captured,
) -> Result<String, String> {
    let bytes = std::fs::read(wal_path).map_err(|e| format!("read wal: {e}"))?;
    let durable = (cap.durable_size as usize).min(bytes.len());
    let appended = (cap.appended_size as usize).min(bytes.len());
    let out = match fault {
        TailFault::KeepAll => bytes[..appended].to_vec(),
        TailFault::LoseTail => bytes[..durable].to_vec(),
        TailFault::TornTail => {
            let mut out = bytes[..durable].to_vec();
            // A frame header promising 64 payload bytes, then silence.
            out.extend_from_slice(&64u32.to_le_bytes());
            out.extend_from_slice(&0xdead_beefu32.to_le_bytes());
            out.extend_from_slice(&[0xab; 7]);
            out
        }
        TailFault::BitFlip => {
            let mut out = bytes[..appended].to_vec();
            if durable < out.len() {
                let idx = durable + (out.len() - durable) / 2;
                out[idx] ^= 0x10;
            }
            out
        }
        TailFault::DuplicateRecord => {
            let mut out = bytes[..appended].to_vec();
            let scan = tintin_wal::scan(&out);
            if let Some(last) = scan.frames.last() {
                let copy = out[last.span.clone()].to_vec();
                out.extend_from_slice(&copy);
            }
            out
        }
    };
    let desc = format!(
        "{}: {} -> {} bytes (durable {}, appended {})",
        fault.name(),
        bytes.len(),
        out.len(),
        durable,
        appended
    );
    std::fs::write(wal_path, &out).map_err(|e| format!("write wal: {e}"))?;
    Ok(desc)
}

/// Run one crash scenario. Returns the scenario log, or a failure message.
fn run_scenario(
    seed: u64,
    index: usize,
    scenario: CrashScenario,
    mutant: Mutant,
    log: &mut Vec<String>,
) -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!(
        "tintin-sim-crash-{}-{seed}-{index}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let result = run_scenario_in(&dir, seed, index, scenario, mutant, log);
    if result.is_ok() {
        let _ = std::fs::remove_dir_all(&dir);
    }
    result
}

fn run_scenario_in(
    dir: &std::path::Path,
    seed: u64,
    index: usize,
    scenario: CrashScenario,
    mutant: Mutant,
    log: &mut Vec<String>,
) -> Result<(), String> {
    // Every random choice derives from (seed, scenario index).
    let mut rng = StdRng::seed_from_u64(seed ^ fnv1a(&(index as u64).to_le_bytes()));
    let fault = durability_fault(mutant);
    // The torn-checkpoint mutant only bites when a checkpoint happens.
    let n_statements = 14usize;
    let checkpoint_at = if mutant == Mutant::TornCheckpoint || rng.gen_bool(0.5) {
        Some(n_statements / 2)
    } else {
        None
    };
    let crash_at = rng.gen_range(4..n_statements as u64);

    let server =
        Server::open_with(dir, &DurabilityOptions::default()).map_err(|e| format!("open: {e}"))?;
    server.set_durability_fault(fault);
    let mut sess = server.connect();
    sess.execute(
        "CREATE TABLE t0 (k INT PRIMARY KEY, v INT);
         CREATE ASSERTION nonNegative CHECK (NOT EXISTS (SELECT * FROM t0 WHERE v < 0));",
    )
    .map_err(|e| format!("setup: {e}"))?;

    // Crash trigger: the hook counts non-no-op phased commits and, in the
    // target one, captures the log watermarks at the scenario's phase
    // boundary. Staged/Checked crashes abort the commit (a crashed
    // committer never published anything); Published crashes let it
    // publish but the ack never arrives.
    let trigger = Arc::new(CrashTrigger::default());
    trigger.target.store(crash_at, Ordering::Relaxed);
    {
        let trigger = Arc::clone(&trigger);
        let server = server.clone();
        let point = scenario.point;
        server.clone().set_commit_hook(Arc::new(move |_sid, phase| {
            if phase == CommitPhase::Staged {
                trigger.attempts.fetch_add(1, Ordering::Relaxed);
            }
            let in_target = trigger.attempts.load(Ordering::Relaxed)
                == trigger.target.load(Ordering::Relaxed) + 1;
            if !in_target {
                return HookAction::Continue;
            }
            let capture_now = matches!(
                (point, phase),
                (CrashPoint::Staged, CommitPhase::Staged)
                    | (CrashPoint::Checked, CommitPhase::Checked)
                    | (CrashPoint::Published, CommitPhase::Published)
            );
            if capture_now {
                let st = server.wal_status().expect("durable server");
                *trigger.captured.lock().unwrap() = Some(Captured {
                    durable_size: st.durable_size,
                    appended_size: st.appended_size,
                });
                if matches!(point, CrashPoint::Staged | CrashPoint::Checked) {
                    return HookAction::Abort;
                }
            }
            HookAction::Continue
        }));
    }

    // The scripted workload: monotonically-keyed inserts (occasionally
    // violating), occasional deletes; the model tracks acknowledged state.
    let mut model = std::collections::BTreeMap::new();
    let mut next_key = 1i64;
    let mut acked = 0usize;
    let mut rejected = 0usize;
    let mut in_doubt: Option<(String, i64, i64)> = None;
    for i in 0..n_statements {
        if checkpoint_at == Some(i) {
            server
                .checkpoint()
                .map_err(|e| format!("checkpoint: {e}"))?;
            log.push(format!("  [{i}] checkpoint"));
        }
        let delete = !model.is_empty() && rng.gen_bool(0.2);
        let stmt = if delete {
            let keys: Vec<i64> = model.keys().copied().collect();
            let k = keys[rng.gen_range(0..keys.len() as u64) as usize];
            format!("DELETE FROM t0 WHERE k = {k}")
        } else {
            let v: i64 = rng.gen_range(0..40) as i64 - rng.gen_range(0..8) as i64;
            let k = next_key;
            next_key += 1;
            format!("INSERT INTO t0 VALUES ({k}, {v})")
        };
        let res = sess.execute(&stmt);
        let crashed = trigger.captured.lock().unwrap().is_some();
        match res {
            Ok(outcomes) => match outcomes.last() {
                Some(StatementOutcome::Committed { .. }) => {
                    if crashed && scenario.point == CrashPoint::Published {
                        // Published-but-unacked: the in-doubt commit. Do
                        // NOT fold it into the model.
                        let (k, v, del_k) = parse_stmt(&stmt);
                        in_doubt = Some((stmt.clone(), k.unwrap_or(del_k.unwrap_or(0)), v));
                        log.push(format!("  [{i}] {stmt} -> published, ack lost"));
                        break;
                    }
                    apply_stmt_to_model(&stmt, &mut model);
                    acked += 1;
                    if crashed {
                        // AfterAck capture happens here, right after the
                        // acked statement returned.
                        break;
                    }
                    if scenario.point == CrashPoint::AfterAck
                        && trigger.attempts.load(Ordering::Relaxed) == crash_at + 1
                    {
                        let st = server.wal_status().expect("durable server");
                        *trigger.captured.lock().unwrap() = Some(Captured {
                            durable_size: st.durable_size,
                            appended_size: st.appended_size,
                        });
                        log.push(format!("  [{i}] {stmt} -> acked, then crash"));
                        break;
                    }
                }
                Some(StatementOutcome::Rejected { .. }) => {
                    rejected += 1;
                }
                other => return Err(format!("unexpected outcome {other:?} for {stmt}")),
            },
            Err(e) => {
                if crashed {
                    // The Staged/Checked abort — unacked by construction.
                    log.push(format!("  [{i}] {stmt} -> crashed mid-commit ({e})"));
                    break;
                }
                return Err(format!("statement failed unexpectedly: {stmt}: {e}"));
            }
        }
    }

    // If the crash never fired (e.g. the target attempt was rejected, so
    // the Published hook point never came), crash at quiescence instead.
    let cap = trigger.captured.lock().unwrap().take().unwrap_or_else(|| {
        let st = server.wal_status().expect("durable server");
        Captured {
            durable_size: st.durable_size,
            appended_size: st.appended_size,
        }
    });
    let wal_path = server.wal_status().expect("durable server").wal_path;
    drop(sess);
    drop(server);

    let fault_desc = apply_tail_fault(&wal_path, scenario.fault, cap)?;
    log.push(format!(
        "  crash: point={} {} acked={acked} rejected={rejected} in_doubt={}",
        scenario.point.name(),
        fault_desc,
        in_doubt.is_some(),
    ));

    // Reopen and run the oracle.
    let recovered = Server::open(dir).map_err(|e| {
        format!(
            "recovery failed (point={} fault={}): {e}",
            scenario.point.name(),
            scenario.fault.name()
        )
    })?;
    let summary = recovered.recovery_summary().expect("durable server");
    let got = dump(&recovered);
    let expect_base = model_dump(&model);
    let expect_with_doubt = in_doubt.as_ref().map(|(stmt, _, _)| {
        let mut m = model.clone();
        apply_stmt_to_model(stmt, &mut m);
        model_dump(&m)
    });
    let matches_base = got == expect_base;
    let matches_doubt = expect_with_doubt.as_ref().is_some_and(|e| got == *e);
    if !(matches_base || matches_doubt) {
        return Err(format!(
            "state divergence after recovery (point={} fault={}): acked commits must \
             survive and rejected/aborted commits must leave no residue.\n  recovered: \
             {got:?}\n  expected:  {expect_base:?}{}",
            scenario.point.name(),
            scenario.fault.name(),
            expect_with_doubt
                .map(|e| format!("\n  or (with in-doubt commit): {e:?}"))
                .unwrap_or_default()
        ));
    }
    if scenario.fault == TailFault::DuplicateRecord
        && cap.appended_size > 0
        && summary.duplicates_skipped == 0
    {
        return Err("duplicated record was not detected/skipped by recovery".into());
    }

    // The recovered state must satisfy every installed assertion under the
    // paper's trusted current-state check.
    {
        let checker = recovered.checker();
        let db = recovered.database().read();
        for inst in recovered.installations() {
            let violations = checker
                .check_current_state(&db, &inst)
                .map_err(|e| format!("check_current_state failed: {e}"))?;
            if violations.iter().any(|(_, n)| *n > 0) {
                return Err(format!(
                    "recovered state violates assertions: {violations:?}"
                ));
            }
        }
    }

    // Idempotence: recovering again must change nothing.
    let ts1 = {
        let ts = recovered.database().read().current_ts();
        ts
    };
    drop(recovered);
    let again = Server::open(dir).map_err(|e| format!("second recovery failed: {e}"))?;
    let got2 = dump(&again);
    let ts2 = {
        let ts = again.database().read().current_ts();
        ts
    };
    if got2 != got || ts1 != ts2 {
        return Err(format!(
            "recovery is not idempotent: first {got:?} ts={ts1}, second {got2:?} ts={ts2}"
        ));
    }
    log.push(format!(
        "  recovered: lsn={} commits_replayed={} truncated={}B dup_skipped={} rows={}",
        summary.recovered_lsn,
        summary.commits_replayed,
        summary.tail_bytes_truncated,
        summary.duplicates_skipped,
        got.len()
    ));
    Ok(())
}

/// Locate the `tintin-server` binary next to the current executable
/// (`target/<profile>/tintin-server`, also checked one level up for test
/// binaries living in `target/<profile>/deps/`).
fn server_binary() -> Result<std::path::PathBuf, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut dir = exe.parent().map(|p| p.to_path_buf());
    while let Some(d) = dir {
        let candidate = d.join("tintin-server");
        if candidate.is_file() {
            return Ok(candidate);
        }
        let parent = d.parent().map(|p| p.to_path_buf());
        if d.file_name().is_some_and(|n| n == "deps") {
            dir = parent;
        } else {
            return Err(format!(
                "tintin-server binary not found next to {} — build it first \
                 (cargo build -p tintin-server)",
                exe.display()
            ));
        }
    }
    Err("cannot locate the tintin-server binary".to_string())
}

/// One kill-matrix trial: start a real `tintin-server --data-dir` process,
/// storm autocommit inserts over TCP from a client thread, `SIGKILL` the
/// server mid-storm, then recover the directory **in-process** and check
/// the durability contract against the client's acknowledgment log.
fn run_kill_trial(
    seed: u64,
    trial: usize,
    bin: &std::path::Path,
    log: &mut Vec<String>,
) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed ^ fnv1a(&(trial as u64 ^ 0x6b69_6c6c).to_le_bytes()));
    let dir = std::env::temp_dir().join(format!(
        "tintin-sim-kill-{}-{seed}-{trial}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    // Each trial gets its own port so a dying listener never collides with
    // the next trial's bind.
    let port = 21000 + ((seed.wrapping_mul(131).wrapping_add(trial as u64 * 17)) % 20000) as u16;
    let addr = format!("127.0.0.1:{port}");

    let mut child = std::process::Command::new(bin)
        .args(["--listen", &addr, "--data-dir"])
        .arg(&dir)
        .args(["--log", "off"])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", bin.display()))?;

    let result = (|| {
        // Wait for the listener (the child recovers the dir, then binds).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let mut setup = loop {
            match tintin_client::Client::connect(addr.as_str()) {
                Ok(c) => break c,
                Err(e) => {
                    if std::time::Instant::now() > deadline {
                        return Err(format!("server never came up on {addr}: {e}"));
                    }
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
            }
        };
        setup
            .execute(
                "CREATE TABLE t0 (k INT PRIMARY KEY, v INT);
                 CREATE ASSERTION nonNegative CHECK (NOT EXISTS (SELECT * FROM t0 WHERE v < 0));",
            )
            .map_err(|e| format!("setup: {e}"))?;
        setup.close();

        // The storm: one client thread autocommitting monotone inserts.
        // `acked` records a key only after its COMMIT acknowledgment
        // arrived; `attempted` is bumped before the request is sent, so
        // attempted \ acked is the in-doubt frontier (at most the one
        // statement in flight when the SIGKILL lands).
        let acked = Arc::new(Mutex::new(Vec::<i64>::new()));
        let attempted = Arc::new(AtomicU64::new(0));
        let storm = {
            let acked = Arc::clone(&acked);
            let attempted = Arc::clone(&attempted);
            let addr = addr.clone();
            std::thread::spawn(move || {
                let Ok(mut c) = tintin_client::Client::connect(addr.as_str()) else {
                    return;
                };
                for k in 1..=10_000i64 {
                    attempted.store(k as u64, Ordering::SeqCst);
                    match c.execute(&format!("INSERT INTO t0 VALUES ({k}, {k})")) {
                        Ok(outcomes)
                            if matches!(
                                outcomes.last(),
                                Some(StatementOutcome::Committed { .. })
                            ) =>
                        {
                            acked.lock().unwrap().push(k);
                        }
                        // The kill severs the connection mid-request.
                        _ => return,
                    }
                }
            })
        };

        // Let the storm run a seed-chosen while, then SIGKILL — no
        // shutdown handler runs, exactly like a power cut for this process.
        std::thread::sleep(std::time::Duration::from_millis(
            30 + rng.gen_range(0..120u64),
        ));
        child.kill().map_err(|e| format!("kill: {e}"))?;
        let _ = child.wait();
        let _ = storm.join();

        let acked: Vec<i64> = acked.lock().unwrap().clone();
        let attempted = attempted.load(Ordering::SeqCst) as i64;

        // Recover in-process and run the oracle.
        let recovered =
            Server::open(&dir).map_err(|e| format!("recovery after SIGKILL failed: {e}"))?;
        let summary = recovered.recovery_summary().expect("durable server");
        let rows = {
            let sess = recovered.connect();
            let rs = sess
                .query_rows("SELECT k FROM t0")
                .map_err(|e| format!("{e}"))?;
            let mut keys: Vec<i64> = rs
                .rows
                .iter()
                .map(|r| format!("{:?}", r[0]))
                .map(|s| {
                    s.trim_start_matches("Int(")
                        .trim_end_matches(')')
                        .parse()
                        .unwrap_or(-1)
                })
                .collect();
            keys.sort_unstable();
            keys
        };
        for k in &acked {
            if rows.binary_search(k).is_err() {
                return Err(format!(
                    "acknowledged commit lost by SIGKILL: key {k} was acked but is absent \
                     after recovery ({} acked, {} recovered)",
                    acked.len(),
                    rows.len()
                ));
            }
        }
        for k in &rows {
            if *k < 1 || *k > attempted {
                return Err(format!(
                    "recovered key {k} was never attempted (attempted up to {attempted})"
                ));
            }
        }
        {
            let checker = recovered.checker();
            let db = recovered.database().read();
            for inst in recovered.installations() {
                let violations = checker
                    .check_current_state(&db, &inst)
                    .map_err(|e| format!("check_current_state failed: {e}"))?;
                if violations.iter().any(|(_, n)| *n > 0) {
                    return Err(format!(
                        "recovered state violates assertions: {violations:?}"
                    ));
                }
            }
        }
        log.push(format!(
            "trial {trial}: acked={} recovered={} in_doubt<= {} lsn={} replayed={}",
            acked.len(),
            rows.len(),
            attempted - acked.len() as i64,
            summary.recovered_lsn,
            summary.commits_replayed
        ));
        Ok(())
    })();

    // Belt and braces: never leave the child running on a failure path.
    let _ = child.kill();
    let _ = child.wait();
    if result.is_ok() {
        let _ = std::fs::remove_dir_all(&dir);
    }
    result
}

/// SIGKILL a live `tintin-server` process mid-commit-storm, `trials`
/// times, recovering and oracle-checking the data directory after each
/// kill. Unlike the single-threaded crash battery this uses real processes,
/// threads and wall-clock sleeps — it is a CI robustness job, not a
/// deterministic replay artifact (the seed still fixes the kill delays).
pub fn run_kill_matrix(seed: u64, trials: usize) -> Result<Vec<String>, String> {
    let bin = server_binary()?;
    let mut log = vec![format!("server binary: {}", bin.display())];
    for trial in 0..trials {
        run_kill_trial(seed, trial, &bin, &mut log)?;
    }
    Ok(log)
}

fn parse_stmt(stmt: &str) -> (Option<i64>, i64, Option<i64>) {
    if let Some(rest) = stmt.strip_prefix("INSERT INTO t0 VALUES (") {
        let inner = rest.trim_end_matches(')');
        let mut parts = inner.split(',');
        let k = parts.next().and_then(|s| s.trim().parse().ok());
        let v = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0);
        (k, v, None)
    } else if let Some(rest) = stmt.strip_prefix("DELETE FROM t0 WHERE k = ") {
        (None, 0, rest.trim().parse().ok())
    } else {
        (None, 0, None)
    }
}

fn apply_stmt_to_model(stmt: &str, model: &mut std::collections::BTreeMap<i64, i64>) {
    let (k, v, del) = parse_stmt(stmt);
    if let Some(k) = k {
        model.insert(k, v);
    } else if let Some(k) = del {
        model.remove(&k);
    }
}

/// Run the crash battery: every scenario of the matrix (or just `only`)
/// for one seed, optionally under a durability mutant. Returns the
/// per-scenario log; the first failing scenario aborts the battery with a
/// replayable [`SimFailure`].
pub fn run_crash_battery(
    seed: u64,
    mutant: Mutant,
    only: Option<CrashScenario>,
) -> Result<Vec<String>, SimFailure> {
    let all = scenarios();
    let selected: Vec<(usize, CrashScenario)> = match only {
        Some(s) => vec![(
            all.iter()
                .position(|c| c.point == s.point && c.fault == s.fault)
                .unwrap_or(0),
            s,
        )],
        None => all.into_iter().enumerate().collect(),
    };
    let mut log = Vec::new();
    for (index, scenario) in selected {
        log.push(format!(
            "crash scenario {index}: point={} fault={} mutant={}",
            scenario.point.name(),
            scenario.fault.name(),
            mutant.name()
        ));
        if let Err(message) = run_scenario(seed, index, scenario, mutant, &mut log) {
            return Err(SimFailure {
                seed,
                step: index,
                message: format!(
                    "{message}\nreplay with: tintin-sim --crash --seed {seed} --crash-point {} \
                     --fault {}{}",
                    scenario.point.name(),
                    scenario.fault.name(),
                    if mutant == Mutant::None {
                        String::new()
                    } else {
                        format!(" --mutant {}", mutant.name())
                    }
                ),
                trace: log,
            });
        }
    }
    Ok(log)
}
