//! Greedy minimization of a failing workload.
//!
//! The workload is generated up front as a list of step *intents* whose
//! infeasible members execute as deterministic skips, so a subset of the
//! step list is itself a valid workload: shrinking is a pure keep-mask
//! search. The shrinker drops chunks (halving the chunk size down to
//! single steps) and keeps any drop that still reproduces a failure —
//! classic delta debugging, deterministic because every candidate run is.

use crate::exec::run_workload;
use crate::gen::Workload;
use crate::{SimConfig, SimFailure};

/// Outcome of a shrink: the minimized keep list (indices into the
/// generated step list, ascending) and the failure the minimized workload
/// still produces.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// Steps that remain — replay with `--seed N --keep i,j,k,…`.
    pub keep: Vec<usize>,
    /// The failure the minimized workload reproduces.
    pub failure: SimFailure,
}

fn fails(wl: &Workload, mask: &[bool], cfg: &SimConfig) -> Option<SimFailure> {
    run_workload(wl, Some(mask), cfg).err()
}

/// Minimize the step set of a failing workload. `initial` is the failure
/// of the full run (returned unchanged if nothing can be dropped).
///
/// Any failure counts as a reproduction, not just a byte-identical
/// message: dropping steps legitimately changes which invariant breaks
/// first, and for replay purposes any surviving failure is a witness.
pub fn minimize(wl: &Workload, cfg: &SimConfig, initial: SimFailure) -> Shrunk {
    let n = wl.steps.len();
    let mut mask = vec![true; n];
    let mut failure = initial;

    let mut chunk = n.div_ceil(2).max(1);
    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            let dropped: Vec<usize> = (start..end).filter(|&i| mask[i]).collect();
            if !dropped.is_empty() {
                let mut candidate = mask.clone();
                for &i in &dropped {
                    candidate[i] = false;
                }
                if let Some(f) = fails(wl, &candidate, cfg) {
                    mask = candidate;
                    failure = f;
                    progressed = true;
                }
            }
            start = end;
        }
        if chunk == 1 {
            if !progressed {
                break;
            }
            // Single-step drops made progress: sweep again until a full
            // fixed point — later drops can unlock earlier ones.
            continue;
        }
        chunk = (chunk / 2).max(1);
    }

    Shrunk {
        keep: (0..n).filter(|&i| mask[i]).collect(),
        failure,
    }
}

/// Build a keep mask for an explicit `--keep` index list.
pub fn mask_from_keep(n: usize, keep: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; n];
    for &i in keep {
        if i < n {
            mask[i] = true;
        }
    }
    mask
}
