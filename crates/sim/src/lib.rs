//! `tintin-sim` — deterministic simulation and fault injection for the
//! whole TINTIN stack, checked by a full-recheck differential oracle.
//!
//! The paper's core claim is a *safety property*: an incrementally-checked
//! commit is accepted iff a full recheck of every installed assertion
//! would accept it, and a rejected (or crashed) commit leaves no trace.
//! This crate turns that property into an executable oracle and hammers it
//! with seeded random workloads:
//!
//! * **generator** ([`gen`]) — from one `u64` seed, produce a random
//!   schema, a random assertion set, and a multi-session workload of
//!   interleaved `BEGIN`/DML/`SAVEPOINT`/`COMMIT`/`ROLLBACK` step intents;
//! * **deterministic scheduler** ([`exec`]) — drive N logical
//!   [`Session`](tintin_session::Session)s through the workload on a
//!   *single thread*. Mid-commit interleavings are not left to OS-thread
//!   timing: the session layer's commit-phase hook
//!   ([`Server::set_commit_hook`](tintin_session::Server::set_commit_hook))
//!   fires at every phase boundary of every phased commit, and the
//!   scheduler runs seed-chosen read probes (snapshot stability,
//!   staged-event invisibility) and fault injections (mid-commit aborts)
//!   inside it;
//! * **fault injection** — forced first-committer-wins
//!   serialization conflicts, commit-hook aborts between phases, and — in
//!   [`wire`] — connection drops, torn frames, oversized frames and
//!   garbage payloads against a live `tintin-server`;
//! * **differential oracle** — a mirror database replays every accepted
//!   update through [`Tintin::full_recheck`](tintin::Tintin), the paper's
//!   trusted non-incremental comparator. After every decided commit the
//!   oracle asserts verdict agreement (incremental ≡ full recheck), state
//!   equivalence (shared ≡ mirror, and periodically ≡ a from-scratch
//!   replay into a fresh database), MVCC version accounting, and
//!   conservation of the `tintin-obs` outcome counters
//!   (`attempts == commits + rejects + conflicts + errors`);
//! * **replay + shrinking** ([`shrink`]) — every failure prints a
//!   `SIM_SEED` and a step trace that reproduces it exactly, then greedily
//!   minimizes the failing workload to a small `--keep` list replayable
//!   from the command line.
//!
//! ```text
//! cargo run -p tintin-sim --release -- --seed 42 --steps 60
//! cargo run -p tintin-sim --release -- --sweep 500
//! cargo run -p tintin-sim --release -- --seed 7 --mutant ghost-write   # must fail
//! ```

pub mod crash;
pub mod exec;
pub mod gen;
pub mod shrink;
pub mod wire;

use std::fmt;

/// Configuration of one simulation run (or sweep).
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed: every random choice in the run derives from it.
    pub seed: u64,
    /// Number of workload step intents to generate.
    pub steps: usize,
    /// Number of scheduler-driven logical sessions.
    pub sessions: usize,
    /// Maximum number of base tables in the generated schema.
    pub tables: usize,
    /// Injected implementation bug (to prove the oracle catches it).
    pub mutant: Mutant,
    /// Run the from-scratch replay check every N accepted commits
    /// (1 = after every committed step; a final replay always runs).
    pub replay_every: usize,
    /// Run the shared server with the install-time constraint analysis
    /// (unsatisfiability pruning + residual event gates) enabled. The
    /// mirror's full recheck never uses the analysis either way — it
    /// evaluates the original assertion queries — so a run with the
    /// analysis on is checked against the same trusted oracle as one
    /// with it off, and [`run_differential`] compares the two runs
    /// bit for bit.
    pub analysis: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            steps: 48,
            sessions: 3,
            tables: 2,
            mutant: Mutant::None,
            replay_every: 1,
            analysis: true,
        }
    }
}

/// A deliberately wrong implementation behavior, injected through the
/// commit-phase hook, that the differential oracle must detect. Used to
/// test the oracle itself: a harness that never fails proves nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mutant {
    /// Correct behavior (the default).
    #[default]
    None,
    /// After staging, silently truncate the staged `ins_T`/`del_T` events:
    /// the incremental check then sees an empty update and waves every
    /// commit through — incremental-vs-full divergence (and state
    /// divergence, since nothing gets applied).
    SkipStagedEvents,
    /// After a successful publish, smuggle an extra assertion-violating
    /// row into a base table, bypassing the check entirely: the committed
    /// state no longer satisfies the installed assertions.
    GhostWrite,
    /// Apply part of the pending update directly at the staged boundary
    /// and then abort the commit: a torn rollback that leaves a partial
    /// update behind.
    TornAbort,
    /// Durability mutant: acknowledge commits without running `fdatasync`
    /// — a crash loses acknowledged history. Caught by the crash battery's
    /// lose-tail scenarios ([`crash::run_crash_battery`]).
    SkipFsync,
    /// Durability mutant: acknowledge commits without writing their
    /// write-ahead log record at all. Caught by every crash scenario that
    /// loses in-memory state.
    AckBeforeLog,
    /// Durability mutant: rotate the log *before* the checkpoint is
    /// durable and write the checkpoint non-atomically — a crash strands a
    /// torn checkpoint with no log to fall back on. Caught at reopen.
    TornCheckpoint,
    /// Static-analysis mutant: at install time, misclassify satisfiable
    /// event rules (any body with a strict comparison against a constant)
    /// as unsatisfiable and prune their views. The incremental check then
    /// silently skips real violations — the full-recheck oracle, which
    /// evaluates the *original* assertion queries rather than the pruned
    /// views, must report a verdict divergence. Unlike the hook mutants
    /// this one corrupts install-time configuration, not the commit path.
    OverPrune,
}

impl Mutant {
    /// Parse a CLI mutant name.
    pub fn parse(name: &str) -> Option<Mutant> {
        match name {
            "none" => Some(Mutant::None),
            "skip-staged-events" => Some(Mutant::SkipStagedEvents),
            "ghost-write" => Some(Mutant::GhostWrite),
            "torn-abort" => Some(Mutant::TornAbort),
            "skip-fsync" => Some(Mutant::SkipFsync),
            "ack-before-log" => Some(Mutant::AckBeforeLog),
            "torn-checkpoint" => Some(Mutant::TornCheckpoint),
            "over-prune" => Some(Mutant::OverPrune),
            _ => None,
        }
    }

    /// The CLI name of this mutant.
    pub fn name(&self) -> &'static str {
        match self {
            Mutant::None => "none",
            Mutant::SkipStagedEvents => "skip-staged-events",
            Mutant::GhostWrite => "ghost-write",
            Mutant::TornAbort => "torn-abort",
            Mutant::SkipFsync => "skip-fsync",
            Mutant::AckBeforeLog => "ack-before-log",
            Mutant::TornCheckpoint => "torn-checkpoint",
            Mutant::OverPrune => "over-prune",
        }
    }

    /// Is this a durability mutant (exercised by the crash battery rather
    /// than the in-memory workload scheduler)?
    pub fn is_durability(&self) -> bool {
        matches!(
            self,
            Mutant::SkipFsync | Mutant::AckBeforeLog | Mutant::TornCheckpoint
        )
    }
}

/// Outcome tallies of one run, tracked by the scheduler from the outcomes
/// it observes and cross-checked against the server's `tintin-obs`
/// counters (the conservation invariant).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tally {
    /// Phased-commit attempts (explicit and autocommit, fast path
    /// included).
    pub attempts: u64,
    /// Accepted commits.
    pub commits: u64,
    /// Assertion-violating commits, rolled back atomically.
    pub rejects: u64,
    /// First-committer-wins serialization conflicts.
    pub conflicts: u64,
    /// Commit-path errors (injected mid-commit aborts, apply failures).
    pub errors: u64,
}

/// A successful simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// The seed that produced the run.
    pub seed: u64,
    /// Steps actually executed (skips included, dropped steps not).
    pub steps_run: usize,
    /// Commit-outcome tallies.
    pub tally: Tally,
    /// FNV-1a hash of the canonical final state dump — the bit-for-bit
    /// reproducibility fingerprint.
    pub state_hash: u64,
    /// One line per executed step (the deterministic trace).
    pub trace: Vec<String>,
}

/// A failed simulation run: an oracle invariant broke (or the harness hit
/// an internal error). Printing it yields the replayable failure artifact.
#[derive(Debug, Clone)]
pub struct SimFailure {
    /// The seed that produced the failing run.
    pub seed: u64,
    /// Index (into the generated workload) of the step that failed.
    pub step: usize,
    /// What broke.
    pub message: String,
    /// The trace up to and including the failing step.
    pub trace: Vec<String>,
}

impl fmt::Display for SimFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SIM_SEED={}", self.seed)?;
        writeln!(f, "sim failed at step {}: {}", self.step, self.message)?;
        writeln!(f, "trace:")?;
        for line in &self.trace {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

impl std::error::Error for SimFailure {}

/// Run one full simulation: generate the workload for `cfg.seed` and
/// execute it under the differential oracle.
pub fn run_sim(cfg: &SimConfig) -> Result<SimReport, SimFailure> {
    let workload = gen::generate(cfg);
    exec::run_workload(&workload, None, cfg)
}

/// The analysis-on/off differential regime: run the *same* generated
/// workload twice — once with the install-time constraint analysis
/// (unsatisfiability pruning + residual gates) enabled, once with it
/// disabled — and require the two runs to agree bit for bit: identical
/// commit/reject tallies, identical step traces, identical final-state
/// hash. Both runs are independently checked by the full-recheck oracle;
/// the pairwise comparison additionally proves the analysis is *pure
/// optimization* — it may skip work, never change a verdict.
pub fn run_differential(cfg: &SimConfig) -> Result<SimReport, SimFailure> {
    let on_cfg = SimConfig {
        analysis: true,
        ..cfg.clone()
    };
    let off_cfg = SimConfig {
        analysis: false,
        ..cfg.clone()
    };
    let workload = gen::generate(&on_cfg);
    let on = exec::run_workload(&workload, None, &on_cfg)?;
    let off = exec::run_workload(&workload, None, &off_cfg)?;
    if on.state_hash != off.state_hash || on.tally != off.tally || on.trace != off.trace {
        let first_diff = on
            .trace
            .iter()
            .zip(off.trace.iter())
            .position(|(a, b)| a != b)
            .map(|i| {
                format!(
                    "first trace divergence at line {i}:\n  analysis-on:  {}\n  analysis-off: {}",
                    on.trace[i], off.trace[i]
                )
            })
            .unwrap_or_else(|| {
                format!(
                    "state_hash on={:#x} off={:#x}; tally on={:?} off={:?}",
                    on.state_hash, off.state_hash, on.tally, off.tally
                )
            });
        return Err(SimFailure {
            seed: cfg.seed,
            step: on.steps_run.min(off.steps_run),
            message: format!("analysis-on/off differential divergence: {first_diff}"),
            trace: on.trace,
        });
    }
    Ok(on)
}

/// FNV-1a over a byte string: the deterministic state-hash primitive
/// (never `DefaultHasher`, whose seeds vary across processes).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
