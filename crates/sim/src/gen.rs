//! Seeded workload generation: schema, assertion set, and a step-intent
//! script for the deterministic scheduler.
//!
//! Everything is generated *up front* from the master seed, before a
//! single statement executes. Steps are **intents**, not guaranteed-legal
//! statements: an intent that is infeasible when its turn comes (e.g.
//! `RollbackTo` with no live savepoint) executes as a deterministic
//! `skip`. This makes the step list a stable coordinate system, which is
//! what shrinking needs: dropping a step never changes what the remaining
//! steps *are*, only whether they are feasible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::SimConfig;

/// Number of distinct primary-key values ops draw from. Small on purpose:
/// collisions are what make conflicts, unique-violations and assertion
/// rejections actually happen.
pub const KEY_SPACE: i64 = 24;

/// Upper cap used by the `cap` assertion: `a` must stay `<= CAP`.
pub const CAP: i64 = 100;

/// Savepoint names sessions cycle through.
pub const SAVEPOINTS: [&str; 4] = ["sp0", "sp1", "sp2", "sp3"];

/// The generated schema + assertion set.
#[derive(Debug, Clone)]
pub struct Schema {
    /// Base table names (`t0`, `t1`, ...).
    pub tables: Vec<String>,
    /// Whether the child table `c0` (with an `fk` column into `t0.k`)
    /// exists.
    pub child: bool,
    /// `CREATE TABLE` statements, in creation order.
    pub ddl: Vec<String>,
    /// `CREATE ASSERTION` statements (name, full DDL), in creation order.
    pub assertions: Vec<(String, String)>,
}

/// Where a commit-hook fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortPoint {
    /// Between staging and checking (phase 1 → 2 boundary).
    Staged,
    /// Between checking and publishing (phase 2 → 3 boundary).
    Checked,
}

/// Scheduler instructions attached to a `Commit` intent.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommitPlan {
    /// Inject a mid-commit abort at this phase boundary.
    pub abort_at: Option<AbortPoint>,
    /// At the staged boundary, probe that staged events are invisible to
    /// the published clock and to every pinned reader snapshot.
    pub probe_staged: bool,
    /// At the checked boundary, probe pinned reader snapshots for
    /// stability (the commit has not published yet).
    pub probe_checked: bool,
}

/// One workload step intent: which session acts, and what it tries.
#[derive(Debug, Clone)]
pub enum Op {
    /// `BEGIN` (skip if a transaction is already open).
    Begin,
    /// Insert a row `(k, g, a)` into a base table (autocommit or in-tx).
    Insert {
        table: usize,
        k: i64,
        g: i64,
        a: i64,
    },
    /// Insert `(k, fk)` into the child table `c0` (skip if no child).
    InsertChild { k: i64, fk: i64 },
    /// `UPDATE t SET a = a + delta WHERE k = k`.
    Update { table: usize, k: i64, delta: i64 },
    /// `DELETE FROM t WHERE k = k`.
    Delete { table: usize, k: i64 },
    /// `SAVEPOINT <name>` (skip if no transaction).
    Savepoint { name: usize },
    /// `ROLLBACK TO <name>` (skip if not live).
    RollbackTo { name: usize },
    /// `RELEASE <name>` (skip if not live).
    Release { name: usize },
    /// `ROLLBACK` (skip if no transaction).
    Rollback,
    /// `COMMIT` (skip if no transaction), with scheduler instructions.
    Commit(CommitPlan),
    /// Open a long-lived snapshot by starting a transaction on a
    /// dedicated reader session and running one query (skip if already
    /// pinned).
    PinReader { reader: usize },
    /// Close a pinned reader snapshot via `ROLLBACK` (skip if not
    /// pinned).
    UnpinReader { reader: usize },
    /// Deterministically force a first-committer-wins conflict between
    /// the two dedicated conflict sessions on `t0.k`.
    ForcedConflict { k: i64 },
    /// Run a GC pass at the server's honest horizon.
    Gc,
}

/// One scheduled step: session index + intent.
#[derive(Debug, Clone)]
pub struct Step {
    /// Index into the scheduler's session vector (ignored by ops that use
    /// dedicated sessions, e.g. `ForcedConflict`).
    pub session: usize,
    /// The intent.
    pub op: Op,
}

/// A fully generated workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The schema + assertions to install first.
    pub schema: Schema,
    /// Seed rows per base table, inserted before the workload runs
    /// (`(table, k, g, a)` with `a` values that satisfy every assertion).
    pub seed_rows: Vec<(usize, i64, i64, i64)>,
    /// The step intents, in schedule order.
    pub steps: Vec<Step>,
    /// Number of reader sessions (snapshot pinners).
    pub readers: usize,
}

/// Generate the schema: 1..=cfg.tables base tables, each
/// `(k INT PRIMARY KEY, g INT NOT NULL, a INT NOT NULL)`, an optional
/// child table, and 2-4 assertions drawn from four families.
fn gen_schema(rng: &mut StdRng, cfg: &SimConfig) -> Schema {
    let n_tables = rng.gen_range(1..=cfg.tables.max(1));
    let tables: Vec<String> = (0..n_tables).map(|i| format!("t{i}")).collect();
    let child = rng.gen_bool(0.5);

    let mut ddl = Vec::new();
    for t in &tables {
        ddl.push(format!(
            "CREATE TABLE {t} (k INT PRIMARY KEY, g INT NOT NULL, a INT NOT NULL)"
        ));
    }
    if child {
        ddl.push("CREATE TABLE c0 (k INT PRIMARY KEY, fk INT NOT NULL)".to_string());
    }

    let mut assertions = Vec::new();
    // Family 1: non-negativity on a random table (always installed — it
    // is the workhorse that turns random deltas into rejections).
    let t = &tables[rng.gen_range(0..tables.len())];
    assertions.push((
        format!("{t}_nonneg"),
        format!("CREATE ASSERTION {t}_nonneg CHECK (NOT EXISTS (SELECT * FROM {t} WHERE a < 0))"),
    ));
    // Family 2: an upper cap on a random table.
    if rng.gen_bool(0.7) {
        let t = &tables[rng.gen_range(0..tables.len())];
        assertions.push((
            format!("{t}_cap"),
            format!(
                "CREATE ASSERTION {t}_cap CHECK (NOT EXISTS (SELECT * FROM {t} WHERE a > {CAP}))"
            ),
        ));
    }
    // Family 3: referential integrity from c0.fk into t0.k, as the paper's
    // NOT EXISTS inclusion-dependency pattern.
    if child && rng.gen_bool(0.8) {
        assertions.push((
            "c0_fk".to_string(),
            "CREATE ASSERTION c0_fk CHECK (NOT EXISTS (SELECT * FROM c0 c WHERE NOT EXISTS \
             (SELECT * FROM t0 p WHERE p.k = c.fk)))"
                .to_string(),
        ));
    }
    // Family 4: an aggregate constraint — every group's sum stays
    // non-negative.
    if rng.gen_bool(0.5) {
        let t = &tables[rng.gen_range(0..tables.len())];
        assertions.push((
            format!("{t}_gsum"),
            format!(
                "CREATE ASSERTION {t}_gsum CHECK (NOT EXISTS \
                 (SELECT g FROM {t} GROUP BY g HAVING SUM(a) < 0))"
            ),
        ));
    }

    Schema {
        tables,
        child,
        ddl,
        assertions,
    }
}

/// Generate the full workload for `cfg`.
pub fn generate(cfg: &SimConfig) -> Workload {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let schema = gen_schema(&mut rng, cfg);
    let readers = 2;

    // Seed rows: a handful per table, all assertion-satisfying (a in
    // 0..=CAP/2, so group sums start comfortably positive).
    let mut seed_rows = Vec::new();
    for (ti, _) in schema.tables.iter().enumerate() {
        let n = rng.gen_range(3..=6);
        let mut used = Vec::new();
        for _ in 0..n {
            let k = rng.gen_range(0..KEY_SPACE);
            if used.contains(&k) {
                continue;
            }
            used.push(k);
            let g = rng.gen_range(0..4);
            let a = rng.gen_range(0..=CAP / 2);
            seed_rows.push((ti, k, g, a));
        }
    }

    let n_sessions = cfg.sessions.max(1);
    let mut steps = Vec::with_capacity(cfg.steps);
    for _ in 0..cfg.steps {
        let session = rng.gen_range(0..n_sessions);
        let roll = rng.gen_range(0..100u32);
        let op = match roll {
            0..=11 => Op::Begin,
            12..=31 => Op::Insert {
                table: rng.gen_range(0..schema.tables.len()),
                k: rng.gen_range(0..KEY_SPACE),
                g: rng.gen_range(0..4),
                a: rng.gen_range(-20..=CAP + 20),
            },
            32..=37 => Op::InsertChild {
                k: rng.gen_range(0..KEY_SPACE),
                fk: rng.gen_range(0..KEY_SPACE),
            },
            38..=55 => Op::Update {
                table: rng.gen_range(0..schema.tables.len()),
                k: rng.gen_range(0..KEY_SPACE),
                delta: rng.gen_range(-40..=40),
            },
            56..=63 => Op::Delete {
                table: rng.gen_range(0..schema.tables.len()),
                k: rng.gen_range(0..KEY_SPACE),
            },
            64..=68 => Op::Savepoint {
                name: rng.gen_range(0..SAVEPOINTS.len()),
            },
            69..=71 => Op::RollbackTo {
                name: rng.gen_range(0..SAVEPOINTS.len()),
            },
            72..=73 => Op::Release {
                name: rng.gen_range(0..SAVEPOINTS.len()),
            },
            74..=77 => Op::Rollback,
            78..=89 => {
                let abort_at = match rng.gen_range(0..10u32) {
                    0 => Some(AbortPoint::Staged),
                    1 => Some(AbortPoint::Checked),
                    _ => None,
                };
                Op::Commit(CommitPlan {
                    abort_at,
                    probe_staged: rng.gen_bool(0.6),
                    probe_checked: rng.gen_bool(0.4),
                })
            }
            90..=92 => Op::PinReader {
                reader: rng.gen_range(0..readers),
            },
            93..=94 => Op::UnpinReader {
                reader: rng.gen_range(0..readers),
            },
            95..=97 => Op::ForcedConflict {
                k: rng.gen_range(0..KEY_SPACE),
            },
            _ => Op::Gc,
        };
        steps.push(Step { session, op });
    }

    Workload {
        schema,
        seed_rows,
        steps,
        readers,
    }
}

/// Render a step intent as the short trace token used in failure traces.
pub fn op_label(op: &Op) -> String {
    match op {
        Op::Begin => "begin".to_string(),
        Op::Insert { table, k, g, a } => format!("insert t{table} ({k},{g},{a})"),
        Op::InsertChild { k, fk } => format!("insert c0 ({k},{fk})"),
        Op::Update { table, k, delta } => format!("update t{table} k={k} a+={delta}"),
        Op::Delete { table, k } => format!("delete t{table} k={k}"),
        Op::Savepoint { name } => format!("savepoint {}", SAVEPOINTS[*name]),
        Op::RollbackTo { name } => format!("rollback-to {}", SAVEPOINTS[*name]),
        Op::Release { name } => format!("release {}", SAVEPOINTS[*name]),
        Op::Rollback => "rollback".to_string(),
        Op::Commit(plan) => match plan.abort_at {
            Some(AbortPoint::Staged) => "commit(abort@staged)".to_string(),
            Some(AbortPoint::Checked) => "commit(abort@checked)".to_string(),
            None => "commit".to_string(),
        },
        Op::PinReader { reader } => format!("pin-reader {reader}"),
        Op::UnpinReader { reader } => format!("unpin-reader {reader}"),
        Op::ForcedConflict { k } => format!("forced-conflict k={k}"),
        Op::Gc => "gc".to_string(),
    }
}
