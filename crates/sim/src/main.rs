//! `tintin-sim` — the command-line front end of the simulation harness.
//!
//! ```text
//! tintin-sim --seed 42 --steps 60         # one seeded run
//! tintin-sim --sweep 500                  # seeds 0..500
//! tintin-sim --seed 7 --mutant ghost-write   # must fail (oracle self-test)
//! tintin-sim --seed 7 --keep 3,9,12       # replay a minimized trace
//! tintin-sim --wire-faults --seed 1       # protocol-layer fault battery
//! tintin-sim --crash --seed 3             # crash/torn-write recovery matrix
//! tintin-sim --crash --seed 3 --crash-point published --fault lose-tail
//! tintin-sim --seed 3 --mutant skip-fsync    # durability mutant (must fail)
//! tintin-sim --kill-matrix 5 --seed 1     # SIGKILL a live server, recover
//! ```
//!
//! Exit codes: `0` success, `1` simulation failure (a `SIM_SEED` line and
//! the step trace — plus a minimized `--keep` list unless `--no-shrink` —
//! are printed as the replayable artifact), `2` usage error.

use std::process::ExitCode;

use tintin_sim::crash::{CrashPoint, CrashScenario, TailFault};
use tintin_sim::{crash, exec, gen, shrink, Mutant, SimConfig, SimFailure};

struct Args {
    cfg: SimConfig,
    sweep: Option<u64>,
    keep: Option<Vec<usize>>,
    no_shrink: bool,
    wire_faults: bool,
    crash: bool,
    crash_point: Option<CrashPoint>,
    crash_fault: Option<TailFault>,
    kill_matrix: Option<usize>,
    differential: bool,
    quiet: bool,
}

fn usage() -> String {
    "usage: tintin-sim [--seed N] [--steps N] [--sessions N] [--tables N]\n\
     \x20                [--sweep N] [--mutant NAME] [--keep i,j,…] [--no-shrink]\n\
     \x20                [--wire-faults] [--replay-every N] [--quiet]\n\
     \x20                [--differential] [--analysis-off]\n\
     \x20                [--crash] [--crash-point P] [--fault F] [--kill-matrix N]\n\
     mutants: none | skip-staged-events | ghost-write | torn-abort | over-prune\n\
     \x20         | skip-fsync | ack-before-log | torn-checkpoint (crash battery)\n\
     crash points: staged | checked | published | after-ack\n\
     tail faults: keep-all | lose-tail | torn-tail | bit-flip | duplicate-record\n\
     --differential runs each workload twice (constraint analysis on and off)\n\
     and requires bit-for-bit identical traces, tallies and state hashes;\n\
     --analysis-off disables install-time pruning/residual gates for the run"
        .to_string()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cfg: SimConfig::default(),
        sweep: None,
        keep: None,
        no_shrink: false,
        wire_faults: false,
        crash: false,
        crash_point: None,
        crash_fault: None,
        kill_matrix: None,
        differential: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value\n{}", usage()))
        };
        match flag.as_str() {
            "--seed" => args.cfg.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--steps" => args.cfg.steps = value("--steps")?.parse().map_err(|e| format!("{e}"))?,
            "--sessions" => {
                args.cfg.sessions = value("--sessions")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--tables" => {
                args.cfg.tables = value("--tables")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--replay-every" => {
                args.cfg.replay_every = value("--replay-every")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--sweep" => args.sweep = Some(value("--sweep")?.parse().map_err(|e| format!("{e}"))?),
            "--mutant" => {
                let name = value("--mutant")?;
                args.cfg.mutant = Mutant::parse(&name)
                    .ok_or_else(|| format!("unknown mutant '{name}'\n{}", usage()))?;
            }
            "--keep" => {
                let list = value("--keep")?;
                let parsed: Result<Vec<usize>, _> =
                    list.split(',').map(|s| s.trim().parse()).collect();
                args.keep = Some(parsed.map_err(|e| format!("bad --keep list: {e}"))?);
            }
            "--no-shrink" => args.no_shrink = true,
            "--wire-faults" => args.wire_faults = true,
            "--differential" => args.differential = true,
            "--analysis-off" => args.cfg.analysis = false,
            "--crash" => args.crash = true,
            "--crash-point" => {
                let name = value("--crash-point")?;
                args.crash_point = Some(
                    CrashPoint::parse(&name)
                        .ok_or_else(|| format!("unknown crash point '{name}'\n{}", usage()))?,
                );
            }
            "--fault" => {
                let name = value("--fault")?;
                args.crash_fault = Some(
                    TailFault::parse(&name)
                        .ok_or_else(|| format!("unknown tail fault '{name}'\n{}", usage()))?,
                );
            }
            "--kill-matrix" => {
                args.kill_matrix = Some(
                    value("--kill-matrix")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                );
            }
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    Ok(args)
}

/// Print the failure artifact: the `SIM_SEED` line, the trace, and (when
/// shrinking is on) the minimized `--keep` replay list.
fn report_failure(args: &Args, failure: &SimFailure) {
    print!("{failure}");
    if args.no_shrink || args.keep.is_some() {
        return;
    }
    let cfg = SimConfig {
        seed: failure.seed,
        ..args.cfg.clone()
    };
    let wl = gen::generate(&cfg);
    let shrunk = shrink::minimize(&wl, &cfg, failure.clone());
    let keep: Vec<String> = shrunk.keep.iter().map(usize::to_string).collect();
    println!(
        "minimized to {} of {} steps; replay with: tintin-sim --seed {} --steps {} \
         --sessions {} --tables {} --keep {}",
        shrunk.keep.len(),
        wl.steps.len(),
        failure.seed,
        cfg.steps,
        cfg.sessions,
        cfg.tables,
        keep.join(",")
    );
    println!("minimized failure: {}", shrunk.failure.message);
}

fn run(args: &Args) -> ExitCode {
    if let Some(trials) = args.kill_matrix {
        return match crash::run_kill_matrix(args.cfg.seed, trials) {
            Ok(log) => {
                if !args.quiet {
                    for line in log {
                        println!("kill: {line}");
                    }
                }
                println!(
                    "kill matrix passed ({trials} trials, seed {})",
                    args.cfg.seed
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                println!("SIM_SEED={}", args.cfg.seed);
                println!("kill matrix failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // Durability mutants are exercised by the crash battery, so a uniform
    // `--mutant $m` loop (as CI runs) routes here automatically.
    if args.crash || args.cfg.mutant.is_durability() {
        let only = match (args.crash_point, args.crash_fault) {
            (Some(point), Some(fault)) => Some(CrashScenario { point, fault }),
            (None, None) => None,
            _ => {
                eprintln!("--crash-point and --fault must be given together");
                return ExitCode::from(2);
            }
        };
        return match crash::run_crash_battery(args.cfg.seed, args.cfg.mutant, only) {
            Ok(log) => {
                if !args.quiet {
                    for line in log {
                        println!("crash: {line}");
                    }
                }
                println!(
                    "crash battery passed (seed {}, mutant {})",
                    args.cfg.seed,
                    args.cfg.mutant.name()
                );
                ExitCode::SUCCESS
            }
            Err(failure) => {
                print!("{failure}");
                ExitCode::FAILURE
            }
        };
    }

    if args.wire_faults {
        return match tintin_sim::wire::run_wire_faults(args.cfg.seed) {
            Ok(log) => {
                if !args.quiet {
                    for line in log {
                        println!("wire: {line}");
                    }
                }
                println!("wire-fault battery passed (seed {})", args.cfg.seed);
                ExitCode::SUCCESS
            }
            Err(e) => {
                println!("SIM_SEED={}", args.cfg.seed);
                println!("wire-fault battery failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if let Some(n) = args.sweep {
        let base = args.cfg.seed;
        for seed in base..base + n {
            let cfg = SimConfig {
                seed,
                ..args.cfg.clone()
            };
            let result = if args.differential {
                tintin_sim::run_differential(&cfg)
            } else {
                tintin_sim::run_sim(&cfg)
            };
            match result {
                Ok(report) => {
                    if !args.quiet {
                        println!(
                            "seed {seed}: ok ({} steps, {} commits, {} rejects, {} conflicts, \
                             {} errors, state hash {:016x})",
                            report.steps_run,
                            report.tally.commits,
                            report.tally.rejects,
                            report.tally.conflicts,
                            report.tally.errors,
                            report.state_hash
                        );
                    }
                }
                Err(failure) => {
                    let sweep_args = Args {
                        cfg,
                        sweep: None,
                        keep: None,
                        // A differential divergence only reproduces when
                        // both runs are compared, which the shrinker's
                        // single-run replay cannot do.
                        no_shrink: args.no_shrink || args.differential,
                        wire_faults: false,
                        crash: false,
                        crash_point: None,
                        crash_fault: None,
                        kill_matrix: None,
                        differential: false,
                        quiet: args.quiet,
                    };
                    report_failure(&sweep_args, &failure);
                    return ExitCode::FAILURE;
                }
            }
        }
        let mode = if args.differential {
            " (analysis-on/off differential)"
        } else {
            ""
        };
        println!("sweep passed: seeds {base}..{} clean{mode}", base + n);
        return ExitCode::SUCCESS;
    }

    if args.differential {
        return match tintin_sim::run_differential(&args.cfg) {
            Ok(report) => {
                if !args.quiet {
                    for line in &report.trace {
                        println!("{line}");
                    }
                }
                println!(
                    "seed {} differential ok: {} steps, tally {:?}, state hash {:016x} \
                     (identical with analysis on and off)",
                    report.seed, report.steps_run, report.tally, report.state_hash
                );
                ExitCode::SUCCESS
            }
            Err(failure) => {
                print!("{failure}");
                ExitCode::FAILURE
            }
        };
    }

    let wl = gen::generate(&args.cfg);
    let mask = args
        .keep
        .as_ref()
        .map(|keep| shrink::mask_from_keep(wl.steps.len(), keep));
    match exec::run_workload(&wl, mask.as_deref(), &args.cfg) {
        Ok(report) => {
            if !args.quiet {
                for line in &report.trace {
                    println!("{line}");
                }
            }
            println!(
                "seed {} ok: {} steps, tally {:?}, state hash {:016x}",
                report.seed, report.steps_run, report.tally, report.state_hash
            );
            ExitCode::SUCCESS
        }
        Err(failure) => {
            report_failure(args, &failure);
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(args) => run(&args),
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
