//! The deterministic scheduler + differential oracle.
//!
//! One OS thread drives every logical session. Mid-commit interleavings
//! come from the session layer's commit-phase hook, which fires at every
//! phase boundary of every phased commit on this thread: the scheduler
//! uses it to run read probes (published-clock stability, pinned-reader
//! snapshot stability) and to inject mid-commit aborts and mutants —
//! so an interleaving is a pure function of the seed, not of OS-thread
//! timing.
//!
//! The oracle keeps a **mirror**: a plain single-threaded [`Database`]
//! with the same schema, seed rows and assertions, advanced only by
//! replaying the *overlay effects* of commits the shared server accepted,
//! each through [`Tintin::full_recheck`] — the paper's trusted
//! non-incremental comparator. Replaying effects rather than raw SQL is
//! deliberate: under snapshot isolation a predicate UPDATE re-planned on
//! the mirror could match different rows than it matched on the
//! committer's snapshot (a phantom), so the mirror replays exactly what
//! the committer staged.

use std::sync::{Arc, Mutex, PoisonError};

use tintin::Tintin;
use tintin_engine::{Database, EngineError, TxOverlay, Value, TS_LATEST};
use tintin_session::{CommitPhase, HookAction, Server, Session, SessionError, StatementOutcome};
use tintin_sql as sql;

use crate::gen::{op_label, AbortPoint, CommitPlan, Op, Workload};
use crate::{fnv1a, Mutant, SimConfig, SimFailure, SimReport, Tally};

/// State shared between the scheduler and the commit-phase hook.
struct HookShared {
    /// The scheduler arms this immediately before an explicit `COMMIT`
    /// step and disarms it right after; it never applies to autocommits.
    plan: CommitPlan,
    armed: bool,
    mutant: Mutant,
    /// Unique-key counter for mutant-injected rows.
    seq: i64,
    /// Probe failures recorded by the hook (the hook itself never
    /// panics); drained by the scheduler after every commit.
    issues: Vec<String>,
    /// Published-clock dump captured just before the armed commit.
    published_baseline: Option<String>,
    /// Per-reader dump captured when the reader pinned its snapshot.
    reader_baselines: Vec<Option<String>>,
}

type SharedHookState = Arc<Mutex<HookShared>>;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Canonical dump of `tables` as seen by `sess` (its snapshot: the
/// published clock outside a transaction, the `BEGIN` snapshot inside).
fn dump_via(sess: &Session, tables: &[String]) -> Result<String, String> {
    let mut out = String::new();
    for t in tables {
        let rs = sess
            .query_rows(&format!("SELECT * FROM {t} ORDER BY k"))
            .map_err(|e| format!("dump of {t} failed: {e}"))?;
        push_rows(&mut out, t, &rs.rows);
    }
    Ok(out)
}

/// Canonical dump of `tables` from a plain (mirror / replay) database.
fn dump_db(db: &Database, tables: &[String]) -> Result<String, String> {
    let mut out = String::new();
    for t in tables {
        let q = sql::parse_query(&format!("SELECT * FROM {t} ORDER BY k"))
            .map_err(|e| format!("dump parse of {t} failed: {e}"))?;
        let rs = db
            .query(&q)
            .map_err(|e| format!("mirror dump of {t} failed: {e}"))?;
        push_rows(&mut out, t, &rs.rows);
    }
    Ok(out)
}

fn push_rows(out: &mut String, table: &str, rows: &[Box<[Value]>]) {
    out.push_str(table);
    out.push(':');
    for row in rows {
        for (i, v) in row.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&v.to_string());
        }
        out.push(';');
    }
    out.push('\n');
}

/// How a decided commit ended, as the scheduler classifies it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Decided {
    Committed {
        inserted: usize,
        deleted: usize,
    },
    Rejected {
        violations: usize,
    },
    Conflict,
    /// Injected mid-commit abort (fault injection, not a real error).
    Aborted,
}

impl Decided {
    fn label(&self) -> String {
        match self {
            Decided::Committed { inserted, deleted } => {
                format!("committed(+{inserted},-{deleted})")
            }
            Decided::Rejected { violations } => format!("rejected({violations})"),
            Decided::Conflict => "conflict".to_string(),
            Decided::Aborted => "aborted".to_string(),
        }
    }
}

/// Classify a commit result; `None` means an outcome the harness does not
/// expect from a commit (a harness failure).
fn classify(res: &Result<StatementOutcome, SessionError>) -> Option<Decided> {
    match res {
        Ok(StatementOutcome::Committed {
            inserted, deleted, ..
        }) => Some(Decided::Committed {
            inserted: *inserted,
            deleted: *deleted,
        }),
        Ok(StatementOutcome::Rejected { violations, .. }) => Some(Decided::Rejected {
            violations: violations.len(),
        }),
        Err(SessionError::SerializationConflict { .. }) => Some(Decided::Conflict),
        Err(SessionError::Engine(EngineError::Transaction(msg))) if msg.contains("commit hook") => {
            Some(Decided::Aborted)
        }
        _ => None,
    }
}

/// The running simulation.
struct Sim<'a> {
    cfg: &'a SimConfig,
    wl: &'a Workload,
    server: Server,
    workers: Vec<Session>,
    readers: Vec<Arc<Mutex<Session>>>,
    pinned: Vec<bool>,
    /// Dedicated sessions for the forced-conflict choreography.
    fa: Session,
    fb: Session,
    /// Out-of-transaction session used for published-clock dumps (shared
    /// with the hook, hence the mutex).
    probe: Arc<Mutex<Session>>,
    hook_state: SharedHookState,
    /// All user tables, in canonical dump order.
    tables: Vec<String>,
    assertion_texts: Vec<String>,
    mirror_db: Database,
    mirror_tintin: Tintin,
    mirror_inst: tintin::Installation,
    /// Overlay effects of every accepted (non-empty) commit, in commit
    /// order — the accepted history the fresh replay re-validates.
    accepted: Vec<TxOverlay>,
    accepted_since_replay: usize,
    tally: Tally,
    trace: Vec<String>,
    steps_run: usize,
}

impl<'a> Sim<'a> {
    fn fail(&self, step: usize, message: String) -> SimFailure {
        SimFailure {
            seed: self.cfg.seed,
            step,
            message,
            trace: self.trace.clone(),
        }
    }

    fn dump_shared(&self, step: usize) -> Result<String, SimFailure> {
        dump_via(&lock(&self.probe), &self.tables).map_err(|e| self.fail(step, e))
    }

    fn dump_mirror(&self, step: usize) -> Result<String, SimFailure> {
        dump_db(&self.mirror_db, &self.tables).map_err(|e| self.fail(step, e))
    }

    /// Drain probe failures the hook recorded during a commit.
    fn drain_issues(&mut self, step: usize) -> Result<(), SimFailure> {
        let issues = std::mem::take(&mut lock(&self.hook_state).issues);
        if let Some(first) = issues.into_iter().next() {
            return Err(self.fail(step, first));
        }
        Ok(())
    }

    /// The invariant battery after every decided commit.
    fn oracle_after_commit(
        &mut self,
        step: usize,
        decided: Decided,
        overlay: &TxOverlay,
        before: &str,
    ) -> Result<(), SimFailure> {
        self.drain_issues(step)?;
        match decided {
            Decided::Committed { .. } => {
                if overlay.is_empty() {
                    // Fast-path (no-op) commit: nothing may change.
                    let after = self.dump_shared(step)?;
                    if after != before {
                        return Err(self.fail(
                            step,
                            format!(
                                "no-op commit changed published state\nbefore:\n{before}\nafter:\n{after}"
                            ),
                        ));
                    }
                } else {
                    self.mirror_db
                        .stage_overlay(overlay)
                        .map_err(|e| self.fail(step, format!("mirror staging failed: {e}")))?;
                    let out = self
                        .mirror_tintin
                        .full_recheck(&mut self.mirror_db, &self.mirror_inst)
                        .map_err(|e| self.fail(step, format!("mirror full recheck failed: {e}")))?;
                    if !out.committed {
                        let vs: Vec<String> =
                            out.violations.iter().map(|v| v.assertion.clone()).collect();
                        return Err(self.fail(
                            step,
                            format!(
                                "verdict divergence: incremental check accepted a commit the \
                                 full recheck rejects (violated: {})",
                                vs.join(", ")
                            ),
                        ));
                    }
                    let shared = self.dump_shared(step)?;
                    let mirror = self.dump_mirror(step)?;
                    if shared != mirror {
                        return Err(self.fail(
                            step,
                            format!(
                                "state divergence after accepted commit\nshared:\n{shared}\nmirror:\n{mirror}"
                            ),
                        ));
                    }
                    self.accepted.push(overlay.clone());
                    self.accepted_since_replay += 1;
                    if self.accepted_since_replay >= self.cfg.replay_every.max(1) {
                        self.accepted_since_replay = 0;
                        self.check_fresh_replay(step)?;
                    }
                }
            }
            Decided::Rejected { .. } => {
                // A rejected commit leaves no trace on the shared side, and
                // the full recheck must agree with the rejection.
                if !overlay.is_empty() {
                    self.mirror_db
                        .stage_overlay(overlay)
                        .map_err(|e| self.fail(step, format!("mirror staging failed: {e}")))?;
                    let out = self
                        .mirror_tintin
                        .full_recheck(&mut self.mirror_db, &self.mirror_inst)
                        .map_err(|e| self.fail(step, format!("mirror full recheck failed: {e}")))?;
                    if out.committed {
                        return Err(self.fail(
                            step,
                            "verdict divergence: incremental check rejected a commit the \
                             full recheck accepts"
                                .to_string(),
                        ));
                    }
                }
                let after = self.dump_shared(step)?;
                if after != before {
                    return Err(self.fail(
                        step,
                        format!("rejected commit left a trace\nbefore:\n{before}\nafter:\n{after}"),
                    ));
                }
            }
            Decided::Conflict | Decided::Aborted => {
                // Conflicted and aborted commits must be trace-free too.
                let after = self.dump_shared(step)?;
                if after != before {
                    return Err(self.fail(
                        step,
                        format!(
                            "{} commit left a trace (torn rollback)\nbefore:\n{before}\nafter:\n{after}",
                            decided.label()
                        ),
                    ));
                }
            }
        }
        self.check_conservation(step)?;
        self.check_mvcc(step)
    }

    /// `attempts == commits + rejects + conflicts + errors`, and every
    /// counter equals the scheduler's independent tally.
    fn check_conservation(&self, step: usize) -> Result<(), SimFailure> {
        let m = self.server.metrics_snapshot();
        let got = Tally {
            attempts: m.counter("tintin_commit_attempts_total").unwrap_or(0),
            commits: m.counter("tintin_commits_total").unwrap_or(0),
            rejects: m.counter("tintin_commit_rejects_total").unwrap_or(0),
            conflicts: m.counter("tintin_commit_conflicts_total").unwrap_or(0),
            errors: m.counter("tintin_commit_errors_total").unwrap_or(0),
        };
        if got != self.tally {
            return Err(self.fail(
                step,
                format!(
                    "outcome-counter divergence: server reports {got:?}, scheduler tallied {:?}",
                    self.tally
                ),
            ));
        }
        if got.attempts != got.commits + got.rejects + got.conflicts + got.errors {
            return Err(self.fail(step, format!("conservation violated: {got:?}")));
        }
        Ok(())
    }

    /// MVCC accounting: live versions equal visible rows, table by table
    /// in aggregate.
    fn check_mvcc(&self, step: usize) -> Result<(), SimFailure> {
        let db = self.server.database().read();
        let stats = db.mvcc_stats();
        let visible: usize = db
            .table_names()
            .iter()
            .filter_map(|n| db.table(n))
            .map(|t| t.len())
            .sum();
        if stats.live_versions != visible {
            return Err(self.fail(
                step,
                format!(
                    "MVCC accounting divergence: {} live versions but {visible} visible rows",
                    stats.live_versions
                ),
            ));
        }
        Ok(())
    }

    /// Replay the accepted history, from scratch, into a fresh database —
    /// every accepted overlay must pass a full recheck again, and the end
    /// state must match the shared server's published state.
    fn check_fresh_replay(&self, step: usize) -> Result<(), SimFailure> {
        let mut db = Database::new();
        let tintin = Tintin::new();
        build_base(&mut db, self.wl).map_err(|e| self.fail(step, e))?;
        let texts: Vec<&str> = self.assertion_texts.iter().map(String::as_str).collect();
        let inst = tintin
            .install(&mut db, &texts)
            .map_err(|e| self.fail(step, format!("replay install failed: {e}")))?;
        for (i, ov) in self.accepted.iter().enumerate() {
            db.stage_overlay(ov)
                .map_err(|e| self.fail(step, format!("replay staging failed: {e}")))?;
            let out = tintin
                .full_recheck(&mut db, &inst)
                .map_err(|e| self.fail(step, format!("replay full recheck failed: {e}")))?;
            if !out.committed {
                return Err(self.fail(step, format!("fresh replay rejected accepted commit #{i}")));
            }
        }
        let replayed = dump_db(&db, &self.tables).map_err(|e| self.fail(step, e))?;
        let shared = self.dump_shared(step)?;
        if replayed != shared {
            return Err(self.fail(
                step,
                format!(
                    "fresh replay diverged from published state\nshared:\n{shared}\nreplay:\n{replayed}"
                ),
            ));
        }
        Ok(())
    }

    /// Run one commit on `sess` (already known to be in a transaction),
    /// with `plan` armed in the hook, and feed the outcome through the
    /// oracle. Returns the trace label.
    fn commit_with_plan(
        &mut self,
        step: usize,
        sess_idx: usize,
        plan: CommitPlan,
    ) -> Result<String, SimFailure> {
        let overlay = self.workers[sess_idx].pending_overlay().unwrap_or_default();
        let before = self.dump_shared(step)?;
        {
            let mut sh = lock(&self.hook_state);
            sh.plan = plan;
            sh.armed = true;
            sh.published_baseline = plan.probe_staged.then(|| before.clone());
        }
        let res = self.workers[sess_idx].commit();
        {
            let mut sh = lock(&self.hook_state);
            sh.armed = false;
            sh.published_baseline = None;
        }
        self.finish_commit(step, res, &overlay, &before)
    }

    /// Tally + oracle for a commit result obtained without an armed plan
    /// (autocommit DML and the forced-conflict choreography go through
    /// here as well).
    fn finish_commit(
        &mut self,
        step: usize,
        res: Result<StatementOutcome, SessionError>,
        overlay: &TxOverlay,
        before: &str,
    ) -> Result<String, SimFailure> {
        let Some(decided) = classify(&res) else {
            let msg = match res {
                Ok(out) => format!("unexpected commit outcome: {out:?}"),
                Err(e) => format!("unexpected commit error: {e}"),
            };
            return Err(self.fail(step, msg));
        };
        match decided {
            Decided::Committed { .. } => {
                self.tally.attempts += 1;
                self.tally.commits += 1;
            }
            Decided::Rejected { .. } => {
                self.tally.attempts += 1;
                self.tally.rejects += 1;
            }
            Decided::Conflict => {
                self.tally.attempts += 1;
                self.tally.conflicts += 1;
            }
            Decided::Aborted => {
                self.tally.attempts += 1;
                self.tally.errors += 1;
            }
        }
        self.oracle_after_commit(step, decided, overlay, before)?;
        Ok(decided.label())
    }

    /// A DML statement on a worker session: pending inside a transaction,
    /// a full phased commit (with mirror-plan discrimination) outside one.
    fn run_dml(&mut self, step: usize, sess_idx: usize, text: &str) -> Result<String, SimFailure> {
        let stmt = sql::parse_statement(text)
            .map_err(|e| self.fail(step, format!("generated DML failed to parse: {e}")))?;
        if self.workers[sess_idx].in_transaction() {
            return Ok(match self.workers[sess_idx].execute_statement(&stmt) {
                Ok(StatementOutcome::RowsAffected(n)) => format!("rows={n}"),
                Ok(out) => {
                    return Err(self.fail(step, format!("unexpected in-tx DML outcome: {out:?}")))
                }
                Err(e) => format!("err:{e}"),
            });
        }
        // Autocommit: plan the same statement against the mirror first.
        // The mirror's plan verdict discriminates a *plan* error (which
        // never reaches the commit path and counts no attempt) from a
        // commit-path outcome (which always counts one).
        let mirror_plan = self
            .mirror_db
            .plan_dml_at(&stmt, &TxOverlay::new(), TS_LATEST);
        let before = self.dump_shared(step)?;
        let res = self.workers[sess_idx].execute_statement(&stmt);
        match mirror_plan {
            Ok(delta) => {
                let mut overlay = TxOverlay::new();
                overlay.apply_delta(&delta);
                self.finish_commit(step, res, &overlay, &before)
            }
            Err(me) => match res {
                // Plan error on both sides: no attempt was counted. The
                // two must agree on what went wrong.
                Err(e) => {
                    let (se, sm) = (e.to_string(), me.to_string());
                    if sm != se {
                        return Err(self.fail(
                            step,
                            format!("plan-error divergence: shared '{se}', mirror '{sm}'"),
                        ));
                    }
                    self.check_conservation(step)?;
                    Ok(format!("err:{se}"))
                }
                Ok(out) => Err(self.fail(
                    step,
                    format!("plan divergence: shared produced {out:?}, mirror errored '{me}'"),
                )),
            },
        }
    }

    /// The forced-conflict choreography on the two dedicated sessions:
    /// both open snapshots, both update the same `t0` row, the first
    /// commits, and — when the first actually changed the row the second
    /// staged against — the second MUST lose with a serialization
    /// conflict.
    fn run_forced_conflict(&mut self, step: usize, k: i64) -> Result<String, SimFailure> {
        let update = format!("UPDATE t0 SET a = a + 1 WHERE k = {k}");
        let stmt = sql::parse_statement(&update)
            .map_err(|e| self.fail(step, format!("conflict DML failed to parse: {e}")))?;
        self.fa
            .begin()
            .map_err(|e| self.fail(step, format!("fa BEGIN failed: {e}")))?;
        self.fb
            .begin()
            .map_err(|e| self.fail(step, format!("fb BEGIN failed: {e}")))?;
        self.fa
            .execute_statement(&stmt)
            .map_err(|e| self.fail(step, format!("fa UPDATE failed: {e}")))?;
        self.fb
            .execute_statement(&stmt)
            .map_err(|e| self.fail(step, format!("fb UPDATE failed: {e}")))?;

        let ov_a = self.fa.pending_overlay().unwrap_or_default();
        let before_a = self.dump_shared(step)?;
        let res_a = self.fa.commit();
        let a_deleted = matches!(
            &res_a,
            Ok(StatementOutcome::Committed { deleted, .. }) if *deleted > 0
        );
        let label_a = self.finish_commit(step, res_a, &ov_a, &before_a)?;

        let ov_b = self.fb.pending_overlay().unwrap_or_default();
        let before_b = self.dump_shared(step)?;
        let res_b = self.fb.commit();
        let b_conflicted = matches!(&res_b, Err(SessionError::SerializationConflict { .. }));
        let label_b = self.finish_commit(step, res_b, &ov_b, &before_b)?;

        if a_deleted && !ov_b.is_empty() && !b_conflicted {
            return Err(self.fail(
                step,
                format!(
                    "expected a serialization conflict: first committer replaced t0 k={k} \
                     after the second staged against it, but the second ended '{label_b}'"
                ),
            ));
        }
        Ok(format!("a={label_a} b={label_b}"))
    }

    /// Pin reader `i`: open a transaction (registering its snapshot) and
    /// record the dump it sees as the stability baseline.
    fn pin_reader(&mut self, step: usize, i: usize) -> Result<String, SimFailure> {
        {
            let mut r = lock(&self.readers[i]);
            r.begin()
                .map_err(|e| self.fail(step, format!("reader BEGIN failed: {e}")))?;
        }
        let dump =
            dump_via(&lock(&self.readers[i]), &self.tables).map_err(|e| self.fail(step, e))?;
        lock(&self.hook_state).reader_baselines[i] = Some(dump);
        self.pinned[i] = true;
        Ok("pinned".to_string())
    }

    /// Unpin reader `i`: its view must still match the pin-time baseline
    /// (snapshot stability across every commit since), then release.
    fn unpin_reader(&mut self, step: usize, i: usize) -> Result<String, SimFailure> {
        let baseline = lock(&self.hook_state).reader_baselines[i].take();
        let dump =
            dump_via(&lock(&self.readers[i]), &self.tables).map_err(|e| self.fail(step, e))?;
        if let Some(base) = baseline {
            if dump != base {
                return Err(self.fail(
                    step,
                    format!("pinned snapshot drifted\nat pin:\n{base}\nat unpin:\n{dump}"),
                ));
            }
        }
        lock(&self.readers[i])
            .rollback()
            .map_err(|e| self.fail(step, format!("reader ROLLBACK failed: {e}")))?;
        self.pinned[i] = false;
        Ok("unpinned".to_string())
    }

    /// Execute one step intent; returns its trace result token.
    fn run_step(&mut self, step: usize, sess_idx: usize, op: &Op) -> Result<String, SimFailure> {
        match op {
            Op::Begin => {
                if self.workers[sess_idx].in_transaction() {
                    return Ok("skip".to_string());
                }
                self.workers[sess_idx]
                    .begin()
                    .map_err(|e| self.fail(step, format!("BEGIN failed: {e}")))?;
                Ok("ok".to_string())
            }
            Op::Insert { table, k, g, a } => {
                let t = &self.wl.schema.tables[*table];
                let text = format!("INSERT INTO {t} VALUES ({k}, {g}, {a})");
                self.run_dml(step, sess_idx, &text)
            }
            Op::InsertChild { k, fk } => {
                if !self.wl.schema.child {
                    return Ok("skip".to_string());
                }
                let text = format!("INSERT INTO c0 VALUES ({k}, {fk})");
                self.run_dml(step, sess_idx, &text)
            }
            Op::Update { table, k, delta } => {
                let t = &self.wl.schema.tables[*table];
                let expr = if *delta >= 0 {
                    format!("a + {delta}")
                } else {
                    format!("a - {}", -delta)
                };
                let text = format!("UPDATE {t} SET a = {expr} WHERE k = {k}");
                self.run_dml(step, sess_idx, &text)
            }
            Op::Delete { table, k } => {
                let t = &self.wl.schema.tables[*table];
                let text = format!("DELETE FROM {t} WHERE k = {k}");
                self.run_dml(step, sess_idx, &text)
            }
            Op::Savepoint { name } => {
                let sp = crate::gen::SAVEPOINTS[*name];
                let live = self.workers[sess_idx].in_transaction()
                    && !self.workers[sess_idx].savepoints().iter().any(|n| n == sp);
                if !live {
                    return Ok("skip".to_string());
                }
                self.workers[sess_idx]
                    .savepoint(sp)
                    .map_err(|e| self.fail(step, format!("SAVEPOINT failed: {e}")))?;
                Ok("ok".to_string())
            }
            Op::RollbackTo { name } => {
                let sp = crate::gen::SAVEPOINTS[*name];
                if !self.workers[sess_idx].savepoints().iter().any(|n| n == sp) {
                    return Ok("skip".to_string());
                }
                self.workers[sess_idx]
                    .rollback_to(sp)
                    .map_err(|e| self.fail(step, format!("ROLLBACK TO failed: {e}")))?;
                Ok("ok".to_string())
            }
            Op::Release { name } => {
                let sp = crate::gen::SAVEPOINTS[*name];
                if !self.workers[sess_idx].savepoints().iter().any(|n| n == sp) {
                    return Ok("skip".to_string());
                }
                self.workers[sess_idx]
                    .release(sp)
                    .map_err(|e| self.fail(step, format!("RELEASE failed: {e}")))?;
                Ok("ok".to_string())
            }
            Op::Rollback => {
                if !self.workers[sess_idx].in_transaction() {
                    return Ok("skip".to_string());
                }
                self.workers[sess_idx]
                    .rollback()
                    .map_err(|e| self.fail(step, format!("ROLLBACK failed: {e}")))?;
                Ok("ok".to_string())
            }
            Op::Commit(plan) => {
                if !self.workers[sess_idx].in_transaction() {
                    return Ok("skip".to_string());
                }
                self.commit_with_plan(step, sess_idx, *plan)
            }
            Op::PinReader { reader } => {
                if self.pinned[*reader] {
                    return Ok("skip".to_string());
                }
                self.pin_reader(step, *reader)
            }
            Op::UnpinReader { reader } => {
                if !self.pinned[*reader] {
                    return Ok("skip".to_string());
                }
                self.unpin_reader(step, *reader)
            }
            Op::ForcedConflict { k } => self.run_forced_conflict(step, *k),
            Op::Gc => {
                let sd = self.server.database().clone();
                let mut db = sd.write();
                let horizon = sd.gc_horizon(db.current_ts());
                let pruned = db.gc_versions(horizon);
                drop(db);
                Ok(format!("pruned={pruned}"))
            }
        }
    }

    /// End-of-run battery: unwind every open transaction and pin, run a
    /// final GC at the honest horizon, and check the terminal invariants.
    fn final_checks(&mut self) -> Result<(), SimFailure> {
        let end = self.wl.steps.len();
        for i in 0..self.readers.len() {
            if self.pinned[i] {
                self.unpin_reader(end, i)?;
            }
        }
        for i in 0..self.workers.len() {
            if self.workers[i].in_transaction() {
                self.workers[i]
                    .rollback()
                    .map_err(|e| self.fail(end, format!("final rollback failed: {e}")))?;
            }
        }
        // Final GC: nothing pins the horizon anymore, so every dead
        // version must be reclaimable.
        {
            let sd = self.server.database().clone();
            let mut db = sd.write();
            let horizon = sd.gc_horizon(db.current_ts());
            db.gc_versions(horizon);
            let stats = db.mvcc_stats();
            if stats.dead_versions != 0 {
                let n = stats.dead_versions;
                drop(db);
                return Err(self.fail(end, format!("{n} dead versions survived a full-horizon GC")));
            }
        }
        // The published state must satisfy every installed assertion.
        {
            let db = self.server.database().read();
            let checker = self.server.checker();
            for inst in self.server.installations() {
                let bad: Vec<(String, usize)> = checker
                    .check_current_state(&db, &inst)
                    .map_err(|e| self.fail(end, format!("final state check failed: {e}")))?
                    .into_iter()
                    .filter(|(_, n)| *n > 0)
                    .collect();
                if !bad.is_empty() {
                    return Err(self.fail(
                        end,
                        format!("final state violates installed assertions: {bad:?}"),
                    ));
                }
            }
        }
        self.check_conservation(end)?;
        self.check_mvcc(end)?;
        self.check_fresh_replay(end)
    }
}

/// Create a database with the workload's tables and seed rows (used for
/// the shared server, the mirror, and every fresh replay — they must all
/// start from the identical state).
fn build_base(db: &mut Database, wl: &Workload) -> Result<(), String> {
    for ddl in &wl.schema.ddl {
        db.execute_sql(ddl)
            .map_err(|e| format!("DDL failed: {e}"))?;
    }
    for (ti, k, g, a) in &wl.seed_rows {
        let t = &wl.schema.tables[*ti];
        db.insert_direct(
            t,
            vec![vec![Value::Int(*k), Value::Int(*g), Value::Int(*a)]],
        )
        .map_err(|e| format!("seeding {t} failed: {e}"))?;
    }
    Ok(())
}

/// Build the commit-phase hook: mutant injection, armed-plan aborts, and
/// mid-commit read probes. The hook must never panic — probe failures are
/// recorded as issues for the scheduler to drain.
fn make_hook(
    state: SharedHookState,
    db: tintin_engine::SharedDatabase,
    probe: Arc<Mutex<Session>>,
    readers: Vec<Arc<Mutex<Session>>>,
    tables: Vec<String>,
) -> tintin_session::CommitHook {
    Arc::new(move |_sid, phase| {
        let mut sh = lock(&state);
        match (sh.mutant, phase) {
            (Mutant::SkipStagedEvents, CommitPhase::Staged) => {
                db.write().truncate_events();
            }
            (Mutant::GhostWrite, CommitPhase::Published) => {
                sh.seq += 1;
                let k = 100_000 + sh.seq;
                let _ = db.write().insert_direct(
                    &tables[0],
                    vec![vec![Value::Int(k), Value::Int(0), Value::Int(-1)]],
                );
            }
            (Mutant::TornAbort, CommitPhase::Staged) => {
                sh.seq += 1;
                let k = 200_000 + sh.seq;
                let _ = db.write().insert_direct(
                    &tables[0],
                    vec![vec![Value::Int(k), Value::Int(0), Value::Int(0)]],
                );
                return HookAction::Abort;
            }
            _ => {}
        }
        let armed = sh.armed;
        let plan = sh.plan;
        if armed && phase == CommitPhase::Staged && plan.probe_staged {
            // Staged events carry an unpublished timestamp: the published
            // clock must still see the pre-commit state.
            if let Some(base) = sh.published_baseline.clone() {
                match dump_via(&lock(&probe), &tables) {
                    Ok(now) if now != base => sh.issues.push(format!(
                        "staged events visible at the published clock\nbefore:\n{base}\nmid-commit:\n{now}"
                    )),
                    Ok(_) => {}
                    Err(e) => sh.issues.push(format!("mid-commit probe failed: {e}")),
                }
            }
        }
        if armed
            && ((phase == CommitPhase::Staged && plan.probe_staged)
                || (phase == CommitPhase::Checked && plan.probe_checked))
        {
            // Pinned reader snapshots must be stable mid-commit.
            let baselines: Vec<(usize, String)> = sh
                .reader_baselines
                .iter()
                .enumerate()
                .filter_map(|(i, b)| b.clone().map(|b| (i, b)))
                .collect();
            for (i, base) in baselines {
                match dump_via(&lock(&readers[i]), &tables) {
                    Ok(now) if now != base => sh.issues.push(format!(
                        "reader {i} snapshot drifted mid-commit ({phase:?})\nat pin:\n{base}\nnow:\n{now}"
                    )),
                    Ok(_) => {}
                    Err(e) => sh.issues.push(format!("reader {i} mid-commit probe failed: {e}")),
                }
            }
        }
        if armed {
            match (phase, plan.abort_at) {
                (CommitPhase::Staged, Some(AbortPoint::Staged))
                | (CommitPhase::Checked, Some(AbortPoint::Checked)) => return HookAction::Abort,
                _ => {}
            }
        }
        HookAction::Continue
    })
}

/// Run `wl` under the differential oracle. `keep`, when given, is a
/// per-step mask: steps whose entry is `false` are dropped entirely (the
/// shrinker's coordinate system).
pub fn run_workload(
    wl: &Workload,
    keep: Option<&[bool]>,
    cfg: &SimConfig,
) -> Result<SimReport, SimFailure> {
    let fail0 = |message: String| SimFailure {
        seed: cfg.seed,
        step: 0,
        message,
        trace: Vec::new(),
    };

    // --- shared server ---------------------------------------------------
    // The checker configuration is where the analysis switch and the
    // over-prune mutant live: both corrupt (or vary) what `install`
    // produces, not the commit path, so they are wired in at construction
    // rather than through the commit-phase hook. The mirror below always
    // uses the default checker — `full_recheck` evaluates the original
    // assertion queries, so it is immune to install-time pruning either
    // way and stays the trusted side of the differential.
    let mut tintin_cfg = tintin::TintinConfig::default();
    tintin_cfg.edc.analysis = cfg.analysis;
    tintin_cfg.edc.over_prune = cfg.mutant == Mutant::OverPrune;
    let server =
        Server::with_database_and_checker(Database::new(), Tintin::with_config(tintin_cfg));
    let mut setup = server.connect();
    {
        let mut db = server.database().write();
        build_base(&mut db, wl).map_err(fail0)?;
    }
    let assertion_texts: Vec<String> = wl
        .schema
        .assertions
        .iter()
        .map(|(_, ddl)| ddl.clone())
        .collect();
    let text_refs: Vec<&str> = assertion_texts.iter().map(String::as_str).collect();
    setup
        .install(&text_refs)
        .map_err(|e| fail0(format!("install failed: {e}")))?;

    // --- mirror ----------------------------------------------------------
    let mut mirror_db = Database::new();
    let mirror_tintin = Tintin::new();
    build_base(&mut mirror_db, wl).map_err(fail0)?;
    let mirror_inst = mirror_tintin
        .install(&mut mirror_db, &text_refs)
        .map_err(|e| fail0(format!("mirror install failed: {e}")))?;

    // --- sessions + hook --------------------------------------------------
    let mut tables = wl.schema.tables.clone();
    if wl.schema.child {
        tables.push("c0".to_string());
    }
    let workers: Vec<Session> = (0..cfg.sessions.max(1)).map(|_| server.connect()).collect();
    let readers: Vec<Arc<Mutex<Session>>> = (0..wl.readers)
        .map(|_| Arc::new(Mutex::new(server.connect())))
        .collect();
    let probe = Arc::new(Mutex::new(server.connect()));
    let fa = server.connect();
    let fb = server.connect();
    let hook_state: SharedHookState = Arc::new(Mutex::new(HookShared {
        plan: CommitPlan::default(),
        armed: false,
        mutant: cfg.mutant,
        seq: 0,
        issues: Vec::new(),
        published_baseline: None,
        reader_baselines: vec![None; wl.readers],
    }));
    server.set_commit_hook(make_hook(
        Arc::clone(&hook_state),
        server.database().clone(),
        Arc::clone(&probe),
        readers.clone(),
        tables.clone(),
    ));

    let mut sim = Sim {
        cfg,
        wl,
        server,
        workers,
        readers,
        pinned: vec![false; wl.readers],
        fa,
        fb,
        probe,
        hook_state,
        tables,
        assertion_texts,
        mirror_db,
        mirror_tintin,
        mirror_inst,
        accepted: Vec::new(),
        accepted_since_replay: 0,
        tally: Tally::default(),
        trace: Vec::new(),
        steps_run: 0,
    };

    // --- the schedule -----------------------------------------------------
    for (i, step) in wl.steps.iter().enumerate() {
        if let Some(mask) = keep {
            if !mask.get(i).copied().unwrap_or(true) {
                continue;
            }
        }
        let sess = step.session % sim.workers.len();
        let result = sim.run_step(i, sess, &step.op)?;
        sim.trace
            .push(format!("#{i} s{sess} {} -> {result}", op_label(&step.op)));
        sim.steps_run += 1;
    }

    sim.final_checks()?;
    let final_dump = sim.dump_shared(wl.steps.len())?;
    sim.server.clear_commit_hook();
    Ok(SimReport {
        seed: cfg.seed,
        steps_run: sim.steps_run,
        tally: sim.tally,
        state_hash: fnv1a(final_dump.as_bytes()),
        trace: sim.trace,
    })
}
