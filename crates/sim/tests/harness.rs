//! Self-tests of the simulation harness: determinism, a clean sweep, the
//! known-bad mutants (the oracle must catch every one), shrinking, and the
//! wire-level fault battery.

use tintin_sim::{exec, gen, run_sim, shrink, Mutant, SimConfig};

fn cfg(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        ..SimConfig::default()
    }
}

#[test]
fn same_seed_is_bit_for_bit_reproducible() {
    let a = run_sim(&cfg(42)).expect("seed 42 must pass clean");
    let b = run_sim(&cfg(42)).expect("seed 42 must pass clean");
    assert_eq!(a.state_hash, b.state_hash);
    assert_eq!(a.tally, b.tally);
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.steps_run, b.steps_run);
}

#[test]
fn different_seeds_explore_different_histories() {
    let a = run_sim(&cfg(1)).expect("seed 1 must pass clean");
    let b = run_sim(&cfg(2)).expect("seed 2 must pass clean");
    assert_ne!(a.trace, b.trace, "seeds 1 and 2 generated identical runs");
}

#[test]
fn clean_sweep_passes_the_full_oracle() {
    for seed in 0..12 {
        if let Err(f) = run_sim(&cfg(seed)) {
            panic!("clean seed {seed} failed the oracle:\n{f}");
        }
    }
}

#[test]
fn oracle_catches_the_skip_staged_events_mutant() {
    let failure = run_sim(&SimConfig {
        mutant: Mutant::SkipStagedEvents,
        ..cfg(7)
    })
    .expect_err("a mutant that drops staged events must be caught");
    assert!(
        failure.message.contains("divergence") || failure.message.contains("verdict"),
        "unexpected failure mode: {}",
        failure.message
    );
}

#[test]
fn oracle_catches_the_ghost_write_mutant() {
    run_sim(&SimConfig {
        mutant: Mutant::GhostWrite,
        ..cfg(7)
    })
    .expect_err("a mutant that writes behind the commit protocol must be caught");
}

#[test]
fn oracle_catches_the_torn_abort_mutant() {
    let failure = run_sim(&SimConfig {
        mutant: Mutant::TornAbort,
        ..cfg(7)
    })
    .expect_err("a mutant that aborts after mutating state must be caught");
    assert!(
        failure.message.contains("torn") || failure.message.contains("divergence"),
        "unexpected failure mode: {}",
        failure.message
    );
}

#[test]
fn shrinking_produces_a_minimal_replayable_trace() {
    let cfg = SimConfig {
        mutant: Mutant::GhostWrite,
        ..cfg(7)
    };
    let wl = gen::generate(&cfg);
    let initial = exec::run_workload(&wl, None, &cfg).expect_err("mutant run must fail");
    let shrunk = shrink::minimize(&wl, &cfg, initial);
    assert!(
        !shrunk.keep.is_empty() && shrunk.keep.len() < wl.steps.len(),
        "shrinking made no progress: kept {:?} of {}",
        shrunk.keep,
        wl.steps.len()
    );
    // The minimized keep list is a replay artifact: running exactly those
    // steps must reproduce a failure.
    let mask = shrink::mask_from_keep(wl.steps.len(), &shrunk.keep);
    exec::run_workload(&wl, Some(&mask), &cfg)
        .expect_err("the minimized trace must still reproduce the failure");
}

#[test]
fn wire_fault_battery_passes() {
    let log = tintin_sim::wire::run_wire_faults(3).expect("wire-fault battery must pass");
    assert!(log.len() >= 5, "battery skipped checks: {log:?}");
}

#[test]
fn crash_battery_passes_clean() {
    let log = tintin_sim::crash::run_crash_battery(11, Mutant::None, None)
        .unwrap_or_else(|f| panic!("crash battery must pass without a durability mutant:\n{f}"));
    // 20 scenarios, each logging a header + at least one detail line.
    assert!(
        log.len() >= 40,
        "battery skipped scenarios: {} lines",
        log.len()
    );
}

#[test]
fn crash_battery_is_deterministic() {
    let a = tintin_sim::crash::run_crash_battery(13, Mutant::None, None).expect("clean battery");
    let b = tintin_sim::crash::run_crash_battery(13, Mutant::None, None).expect("clean battery");
    assert_eq!(a, b, "same seed must produce the same crash-battery log");
}

#[test]
fn crash_oracle_catches_the_skip_fsync_mutant() {
    let f = tintin_sim::crash::run_crash_battery(0, Mutant::SkipFsync, None)
        .expect_err("acking before fdatasync must lose a tail in some scenario");
    assert!(
        f.message.contains("state divergence") || f.message.contains("recovery failed"),
        "unexpected failure mode: {}",
        f.message
    );
}

#[test]
fn crash_oracle_catches_the_ack_before_log_mutant() {
    tintin_sim::crash::run_crash_battery(0, Mutant::AckBeforeLog, None)
        .expect_err("acking unlogged commits must lose acknowledged history");
}

#[test]
fn crash_oracle_catches_the_torn_checkpoint_mutant() {
    let f = tintin_sim::crash::run_crash_battery(0, Mutant::TornCheckpoint, None)
        .expect_err("a torn checkpoint with a rotated log must fail recovery");
    assert!(
        f.message.contains("recovery failed") || f.message.contains("state divergence"),
        "unexpected failure mode: {}",
        f.message
    );
}
