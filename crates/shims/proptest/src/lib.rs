//! Offline shim for the subset of the `proptest` crate used by this
//! workspace's property tests.
//!
//! The build environment has no reachable crates registry, so this local
//! crate re-implements the strategy combinators the tests rely on:
//! ranges, `Just`, `any::<T>()`, tuples, `prop_map` / `prop_flat_map` /
//! `prop_recursive`, `prop_oneof!`, `proptest::option::of`,
//! `proptest::collection::vec`, simple regex string strategies, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from the real crate: no shrinking (the failing inputs are
//! printed verbatim instead) and a fixed deterministic seed per test
//! function, so failures reproduce across runs. `ProptestConfig::cases` is
//! honoured; `max_shrink_iters` is accepted and ignored.

use std::fmt;
use std::rc::Rc;

pub mod test_rng;
pub use test_rng::TestRng;

mod regex_gen;

// ------------------------------------------------------------------ errors

/// Failure raised inside a `proptest!` test body.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold.
    Fail(String),
    /// The generated case is invalid and should be skipped.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for compatibility; the shim does not shrink.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; cases are never retried.
    pub max_global_rejects: u32,
    /// Accepted for compatibility; the shim never times out a case.
    pub timeout: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
            max_global_rejects: 1024,
            timeout: 0,
        }
    }
}

// ---------------------------------------------------------------- strategy

/// A generator of random values (no shrinking in the shim).
pub trait Strategy {
    type Value: fmt::Debug;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `depth` levels of `f` applied over the leaf,
    /// mixing the leaf back in at every level so generated structures have
    /// varied depth. `desired_size` / `expected_branch_size` are accepted
    /// for API compatibility.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut cur = self.clone().boxed();
        for _ in 0..depth {
            let rec = f(cur).boxed();
            let leaf = self.clone().boxed();
            cur = Union::weighted(vec![(1, leaf), (2, rec)]).boxed();
        }
        cur
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.new_value(rng)))
    }
}

/// Type-erased strategy (cheap to clone).
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// `prop_map` combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// `prop_flat_map` combinator.
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        let a = self.inner.new_value(rng);
        (self.f)(a).new_value(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of same-valued strategies (the engine of `prop_oneof!`).
pub struct Union<T> {
    branches: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            branches: self.branches.clone(),
            total: self.total,
        }
    }
}

impl<T: fmt::Debug> Union<T> {
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        Union::weighted(branches.into_iter().map(|b| (1, b)).collect())
    }

    pub fn weighted(branches: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof! of zero strategies");
        let total = branches.iter().map(|(w, _)| *w).sum();
        Union { branches, total }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as u64) as u32;
        for (w, s) in &self.branches {
            if pick < *w {
                return s.new_value(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

// ------------------------------------------------------------------ ranges

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy over an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.below_u128(span)) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "strategy over an empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.below_u128(span)) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

// --------------------------------------------------------------- arbitrary

/// Types with a canonical full-domain strategy, used via [`any`].
pub trait Arbitrary: Sized + fmt::Debug {
    fn generate(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn generate(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn generate(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn generate(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated text debuggable.
        (b' ' + rng.below(95) as u8) as char
    }
}

/// Marker strategy for [`Arbitrary`] types.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::generate(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ------------------------------------------------------------------ tuples

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

// ----------------------------------------------------------------- strings

/// String literals act as regex strategies (`"[a-z][a-z0-9_]{0,8}"`).
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        regex_gen::sample(self, rng)
    }
}

// ------------------------------------------------------------- collections

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let n = self.size.start + rng.below(span as u64) as usize;
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<T>` (None roughly one time in four).
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

// ------------------------------------------------------------------ macros

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($strategy) ),+ ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}: {}",
                l,
                r,
                format!($($fmt)*)
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $( let $arg = $crate::Strategy::new_value(&$strategy, &mut rng); )+
                let inputs = format!(
                    concat!($( "  ", stringify!($arg), " = {:?}\n", )+),
                    $( &$arg ),+
                );
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "property failed at case {case}: {msg}\ninputs:\n{inputs}"
                    ),
                }
            }
        }
        $crate::__proptest_fns!{ ($config) $($rest)* }
    };
}

// ----------------------------------------------------------------- prelude

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        let s = (0..5i64, 10..=12usize, any::<bool>());
        for _ in 0..200 {
            let (a, b, _) = Strategy::new_value(&s, &mut rng);
            assert!((0..5).contains(&a));
            assert!((10..=12).contains(&b));
        }
    }

    #[test]
    fn oneof_covers_all_branches() {
        let mut rng = TestRng::for_test("oneof");
        let s = prop_oneof![Just(1), Just(2), Just(3)];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[Strategy::new_value(&s, &mut rng) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn regex_strings_match_shape() {
        let mut rng = TestRng::for_test("regex");
        for _ in 0..100 {
            let s = Strategy::new_value(&"[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] i64),
            Node(Vec<Tree>),
        }
        let mut rng = TestRng::for_test("recursive");
        let s = (0..10i64)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
            });
        for _ in 0..50 {
            let t = Strategy::new_value(&s, &mut rng);
            fn depth(t: &Tree) -> usize {
                match t {
                    Tree::Leaf(_) => 1,
                    Tree::Node(ts) => 1 + ts.iter().map(depth).max().unwrap_or(0),
                }
            }
            assert!(depth(&t) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn the_macro_itself_works(a in 0..100i64, b in crate::option::of(0..10i64)) {
            prop_assert!(a >= 0);
            if let Some(b) = b {
                prop_assert!((0..10).contains(&b), "b out of range: {}", b);
            }
            prop_assert_eq!(a, a, "reflexivity with {:?}", b);
        }
    }
}
