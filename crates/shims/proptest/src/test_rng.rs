//! Deterministic RNG for the proptest shim (xoshiro256++, seeded from the
//! test's fully qualified name so every test gets a distinct, reproducible
//! stream).

/// Deterministic test RNG.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seed from an arbitrary u64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Seed deterministically from a test name (FNV-1a over the bytes).
    /// `PROPTEST_SEED` in the environment overrides it for exploration.
    pub fn for_test(name: &str) -> Self {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = s.parse::<u64>() {
                return TestRng::seed_from_u64(seed);
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::seed_from_u64(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform value in `0..n` for spans wider than u64 (n > 0).
    pub fn below_u128(&mut self, n: u128) -> u128 {
        debug_assert!(n > 0);
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % n
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn name_seeding_is_stable_and_distinct() {
        let a1: Vec<u64> = {
            let mut r = TestRng::for_test("a");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let a2: Vec<u64> = {
            let mut r = TestRng::for_test("a");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("b");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }

    #[test]
    fn below_is_in_range() {
        let mut r = TestRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            assert!(r.below_u128(1 << 70) < (1 << 70));
        }
    }
}
