//! Sampler for the tiny regex dialect the tests use as string strategies.
//!
//! Supported syntax: literal characters, character classes `[a-z0-9_' ]`
//! (with ranges), and the quantifiers `{n}`, `{n,m}`, `?`, `*`, `+`
//! (`*`/`+` are capped at 8 repetitions). Anything fancier panics with a
//! clear message — extend this module if a test needs more.

use crate::TestRng;

enum Atom {
    Literal(char),
    Class(Vec<char>),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad class range in regex '{pattern}'");
                        set.extend((lo..=hi).filter(|c| c.is_ascii()));
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in regex '{pattern}'");
                i += 1; // closing ']'
                assert!(!set.is_empty(), "empty class in regex '{pattern}'");
                Atom::Class(set)
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "dangling escape in regex '{pattern}'");
                let c = chars[i];
                i += 1;
                Atom::Literal(c)
            }
            '(' | ')' | '|' | '.' | '^' | '$' => {
                panic!("unsupported regex syntax '{}' in '{pattern}'", chars[i])
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unterminated quantifier in '{pattern}'"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("quantifier lower bound"),
                            hi.trim().parse().expect("quantifier upper bound"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("quantifier count");
                            (n, n)
                        }
                    }
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Sample one string matching `pattern`.
pub fn sample(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for p in &pieces {
        let n = p.min + rng.below((p.max - p.min + 1) as u64) as usize;
        for _ in 0..n {
            match &p.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::sample;
    use crate::TestRng;

    #[test]
    fn samples_the_patterns_used_by_the_suite() {
        let mut rng = TestRng::for_test("regex_gen");
        for _ in 0..200 {
            let s = sample("[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!((1..=9).contains(&s.len()));
            let s = sample("[a-zA-Z' ]{0,10}", &mut rng);
            assert!(s.len() <= 10);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphabetic() || c == '\'' || c == ' '));
        }
    }

    #[test]
    fn literals_and_quantifiers() {
        let mut rng = TestRng::for_test("regex_gen2");
        assert_eq!(sample("abc", &mut rng), "abc");
        let s = sample("x{3}", &mut rng);
        assert_eq!(s, "xxx");
        for _ in 0..50 {
            let s = sample("a?b+", &mut rng);
            assert!(s.ends_with('b'));
        }
    }
}
