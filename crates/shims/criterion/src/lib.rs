//! Offline shim for the subset of the `criterion` crate used by the bench
//! targets. It runs each benchmark closure in a warm-up phase followed by a
//! timed measurement phase and reports min / mean / max wall-clock time per
//! iteration. No statistics, plots or baselines — just honest timings with
//! the same source-level API, so the real criterion can be dropped in when a
//! registry is reachable.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Drives one benchmark's iteration loop.
pub struct Bencher<'a> {
    warm_up: Duration,
    measurement: Duration,
    samples: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run without recording.
        let t0 = Instant::now();
        while t0.elapsed() < self.warm_up {
            black_box(f());
        }
        // Measurement: record per-iteration times until the budget is spent.
        let t0 = Instant::now();
        while t0.elapsed() < self.measurement {
            let it = Instant::now();
            black_box(f());
            self.samples.push(it.elapsed());
        }
        if self.samples.is_empty() {
            // Budget of zero or a single very slow iteration: record one.
            let it = Instant::now();
            black_box(f());
            self.samples.push(it.elapsed());
        }
    }
}

/// A named group of benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        // The shim measures for a fixed wall-clock budget instead of a
        // target sample count; accepted for API compatibility.
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut samples = Vec::new();
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            samples: &mut samples,
        };
        f(&mut b);
        report(&self.name, &id.id, &samples);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut samples = Vec::new();
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            samples: &mut samples,
        };
        f(&mut b, input);
        report(&self.name, &id.id, &samples);
        self
    }

    pub fn finish(self) {}
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    let n = samples.len().max(1) as u32;
    let total: Duration = samples.iter().sum();
    let mean = total / n;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    println!(
        "{group}/{id}: {} iterations, mean {} [min {}, max {}]",
        samples.len(),
        fmt_dur(mean),
        fmt_dur(min),
        fmt_dur(max)
    );
}

fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 1e-6 {
        format!("{:.1}ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.3}s")
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_warm_up: Duration,
    default_measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_warm_up: Duration::from_millis(300),
            default_measurement: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up: self.default_warm_up,
            measurement: self.default_measurement,
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut samples = Vec::new();
        let mut b = Bencher {
            warm_up: self.default_warm_up,
            measurement: self.default_measurement,
            samples: &mut samples,
        };
        f(&mut b);
        report("bench", &id.id, &samples);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
