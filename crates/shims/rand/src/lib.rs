//! Offline shim for the subset of the `rand` crate used by this workspace.
//!
//! The build environment has no access to a crates registry, so this local
//! crate provides the `StdRng` / `Rng` / `SeedableRng` surface that
//! `tintin-tpch` relies on. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a given seed, which is all the data
//! generators require (they never depend on the exact stream of the real
//! `StdRng`).

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling from a range, mirroring `rand::distributions::uniform`.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Object-safe core of a generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes (little-endian words of
    /// [`RngCore::next_u64`], one fresh word per trailing partial chunk —
    /// mirroring the real crate's method on this trait).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// User-facing generator methods.
pub trait Rng: RngCore + Sized {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range over an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range over an empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-3..6i64);
            assert!((-3..6).contains(&v));
            let w = rng.gen_range(1..=5usize);
            assert!((1..=5).contains(&w));
        }
    }

    #[test]
    fn fill_bytes_is_deterministic_and_covers_partial_chunks() {
        use super::RngCore;
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let mut ba = [0u8; 13];
        let mut bb = [0u8; 13];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
        assert_ne!(ba, [0u8; 13]);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<i64> = (0..16).map(|_| a.gen_range(0..1_000_000i64)).collect();
        let vb: Vec<i64> = (0..16).map(|_| b.gen_range(0..1_000_000i64)).collect();
        assert_ne!(va, vb);
    }
}
