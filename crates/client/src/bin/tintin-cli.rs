//! `tintin-cli` — command-line client for a running `tintin-server`.
//!
//! ```text
//! tintin-cli [--connect HOST:PORT] [-e "SQL; SQL; …"] [--stats] [--prometheus]
//! ```
//!
//! With `-e` the script runs once and the process exits (non-zero on any
//! failure) — the scripting / CI mode. `--stats` fetches the server's
//! metrics snapshot and renders it for a terminal; `--prometheus` prints
//! the same snapshot in the Prometheus text exposition format (pipe it to
//! a scrape file or a push gateway). Either can follow `-e` to run a
//! workload and dump the metrics it produced in one invocation. Without
//! any of them an interactive prompt reads statements until a terminating
//! `;` and sends each batch over the wire; the connection is one
//! server-side session, so `BEGIN … COMMIT` works across prompts exactly
//! like the local REPL (and `.stats` / `.explain <assertion>` work at the
//! prompt too).

use std::process::exit;
use tintin_client::{render_outcome, render_server_stats, Client, ClientError};

fn usage() -> ! {
    eprintln!("usage: tintin-cli [--connect HOST:PORT] [-e \"SQL\"] [--stats] [--prometheus]");
    exit(2);
}

fn report(err: &ClientError) {
    if let ClientError::Remote(e) = err {
        // The typed script error knows how far the script got; completed
        // outcomes are data (stdout), the diagnostic is not (stderr).
        for outcome in &e.completed {
            println!("{}", render_outcome(outcome));
        }
    }
    eprintln!("error: {err}");
}

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut script: Option<String> = None;
    let mut stats = false;
    let mut prometheus = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => addr = args.next().unwrap_or_else(|| usage()),
            "-e" => script = Some(args.next().unwrap_or_else(|| usage())),
            "--stats" => stats = true,
            "--prometheus" => prometheus = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let mut client = match Client::connect(addr.as_str()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("tintin-cli: cannot connect to {addr}: {e}");
            exit(1);
        }
    };

    if let Some(script) = script {
        match client.execute(&script) {
            Ok(outcomes) => {
                for outcome in outcomes {
                    println!("{}", render_outcome(&outcome));
                }
            }
            Err(e) => {
                report(&e);
                exit(1);
            }
        }
        if !(stats || prometheus) {
            return;
        }
    }

    if stats || prometheus {
        match client.server_stats() {
            Ok(s) => {
                if stats {
                    print!("{}", render_server_stats(&s));
                }
                if prometheus {
                    print!("{}", tintin_obs::render_prometheus(&s.metrics));
                }
            }
            Err(e) => {
                report(&e);
                exit(1);
            }
        }
        return;
    }

    println!("connected to {addr} — end statements with ';', 'quit' to exit");
    if let Err(e) = tintin_client::run_interactive(&mut client, "tintin") {
        report(&e);
        exit(1); // the connection (and server-side session) is gone
    }
    println!("bye");
}
