#![warn(missing_docs)]
//! `tintin-client` — connect to a `tintin-server` and execute SQL.
//!
//! A [`Client`] is the remote counterpart of an in-process
//! [`tintin_session::Session`]: one TCP connection maps to one session on
//! the server, so `BEGIN … COMMIT` transaction state lives across requests
//! for as long as the client is connected. Requests carry SQL scripts;
//! responses decode back into the *same* [`StatementOutcome`] values an
//! in-process session returns — result rows with typed values, commit /
//! reject decisions with violation tuples and check statistics — and
//! failures arrive as typed [`WireScriptError`]s that preserve how far the
//! script got (a caller can match on
//! [`WireError::SerializationConflict`](tintin_server::protocol::WireError)
//! and retry, exactly like a local caller).
//!
//! ```no_run
//! use tintin_client::Client;
//!
//! let mut c = Client::connect("127.0.0.1:7878").unwrap();
//! c.execute("CREATE TABLE t (a INT PRIMARY KEY)").unwrap();
//! let rows = c.query_rows("SELECT * FROM t").unwrap();
//! assert!(rows.rows.is_empty());
//! ```

use std::fmt;
use std::io;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use tintin_engine::ResultSet;
use tintin_server::protocol::{
    decode_response, decode_stats_response, read_frame, write_frame, ProtocolError, ServerStats,
    WireScriptError, STATS_COMMAND,
};
use tintin_session::StatementOutcome;

/// Failures surfaced by [`Client`] calls.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or was torn down mid-request.
    Io(io::Error),
    /// The peer sent something that is not the TINTIN wire protocol.
    Protocol(ProtocolError),
    /// The server executed (part of) the script and reported a typed
    /// failure — including the outcomes of the statements that completed.
    Remote(WireScriptError),
    /// [`Client::query_rows`] was called with something other than one
    /// single query; nothing was sent to the server.
    InvalidQuery(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(e) => write!(f, "{e}"),
            ClientError::Remote(e) => write!(f, "{e}"),
            ClientError::InvalidQuery(m) => write!(f, "query_rows expects one query: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// Result alias for client operations.
pub type Result<T> = std::result::Result<T, ClientError>;

/// One connection to a `tintin-server` — and therefore one server-side
/// session: transaction state persists between [`Client::execute`] calls.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a server (e.g. `"127.0.0.1:7878"`). `TCP_NODELAY` is set:
    /// the protocol is request/response with small frames, where Nagle
    /// delays only add latency.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Execute a script of semicolon-separated SQL statements on the
    /// server-side session and return every statement's outcome — the
    /// remote mirror of [`tintin_session::Session::execute`].
    pub fn execute(&mut self, script: &str) -> Result<Vec<StatementOutcome>> {
        write_frame(&mut self.stream, script)?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        match decode_response(&payload)? {
            Ok(outcomes) => Ok(outcomes),
            Err(e) => Err(ClientError::Remote(e)),
        }
    }

    /// Run one query and return its rows (the remote mirror of
    /// [`tintin_session::Session::query_rows`]). Like the session method,
    /// the input must be a *single query*: it is parse-validated before
    /// anything is sent, so a multi-statement script errors here instead
    /// of silently executing its non-SELECT statements remotely.
    pub fn query_rows(&mut self, query: &str) -> Result<ResultSet> {
        tintin_sql::parse_query(query).map_err(|e| ClientError::InvalidQuery(e.to_string()))?;
        let outcomes = self.execute(query)?;
        match outcomes.into_iter().next() {
            Some(StatementOutcome::Rows(rs)) => Ok(rs),
            other => Err(ClientError::Protocol(ProtocolError(format!(
                "expected a row outcome for a query, got {other:?}"
            )))),
        }
    }

    /// Fetch the server's metrics snapshot (the `STATS` wire command): every
    /// registered metric — commit-outcome counters, per-phase latency
    /// histograms, connection gauges — plus the engine's MVCC/GC statistics,
    /// which the per-statement protocol does not carry.
    pub fn server_stats(&mut self) -> Result<ServerStats> {
        write_frame(&mut self.stream, STATS_COMMAND)?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        Ok(decode_stats_response(&payload)?)
    }

    /// Round-trip an empty script — a liveness probe that also verifies the
    /// peer speaks the protocol.
    pub fn ping(&mut self) -> Result<()> {
        let outcomes = self.execute("")?;
        if outcomes.is_empty() {
            Ok(())
        } else {
            Err(ClientError::Protocol(ProtocolError(
                "non-empty response to an empty script".into(),
            )))
        }
    }

    /// Close the connection (the server-side session, and any transaction
    /// open on it, ends). Dropping the client does the same.
    pub fn close(self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

/// Drive an interactive prompt over `client`: lines read from stdin
/// accumulate until one ends with `;`, each batch executes remotely, and
/// the outcomes — including a failing script's partial outcomes — print
/// through [`render_outcome`]. Shared by `tintin-cli` and
/// `examples/repl.rs --connect`, so the two remote prompts cannot drift.
///
/// Returns `Ok(())` on `quit` / `exit` / EOF. A connection-level failure
/// is returned as the error — the server-side session (and any open
/// transaction) is gone, so there is nothing to continue.
pub fn run_interactive(client: &mut Client, prompt: &str) -> Result<()> {
    use std::io::{BufRead, Write};
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("{prompt}> ");
        } else {
            print!("   ...> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            return Ok(());
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if buffer.is_empty() && matches!(line, "quit" | "exit") {
            return Ok(());
        }
        // Dot commands, mirroring the local REPL's: `.stats` fetches and
        // renders the remote metrics snapshot (including the MVCC/GC state
        // the statement protocol does not carry).
        if buffer.is_empty() && line == ".stats" {
            match client.server_stats() {
                Ok(stats) => print!("{}", render_server_stats(&stats)),
                Err(e @ ClientError::Io(_)) => return Err(e),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        // `.explain <assertion>` is sugar for `EXPLAIN ASSERTION <name>;` —
        // the install-time static-analysis report of one assertion.
        if buffer.is_empty() && line.starts_with(".explain ") {
            let name = line[".explain ".len()..].trim();
            match client.execute(&format!("EXPLAIN ASSERTION {name};")) {
                Ok(outcomes) => {
                    for outcome in &outcomes {
                        println!("{}", render_outcome(outcome));
                    }
                }
                Err(e @ ClientError::Io(_)) => return Err(e),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        buffer.push_str(line);
        buffer.push('\n');
        if !line.ends_with(';') {
            continue;
        }
        let script = std::mem::take(&mut buffer);
        match client.execute(&script) {
            Ok(outcomes) => {
                for outcome in &outcomes {
                    println!("{}", render_outcome(outcome));
                }
            }
            Err(ClientError::Remote(e)) => {
                for outcome in &e.completed {
                    println!("{}", render_outcome(outcome));
                }
                println!("error: {e}");
            }
            Err(e) => return Err(e),
        }
    }
}

/// Render a [`ServerStats`] snapshot for a terminal: the metrics in the
/// registry's aligned text form, then one summary line for the engine's
/// MVCC / garbage-collection state. Shared by `tintin-cli` (`.stats`,
/// `--stats`) and `examples/repl.rs --connect`.
pub fn render_server_stats(stats: &ServerStats) -> String {
    let mut out = tintin_obs::render_text(&stats.metrics);
    let m = &stats.mvcc;
    out.push_str(&format!(
        "mvcc: commit_ts {}  versions {} live / {} dead (chain {:.2})  \
         gc {} run(s), {} pruned\n",
        m.commit_ts,
        m.live_versions,
        m.dead_versions,
        m.chain_length(),
        m.gc_runs,
        m.gc_pruned,
    ));
    out
}

/// Render an `EXPLAIN ASSERTION` report for a terminal — the linter class,
/// rule-pruning summary, and each surviving view's gate and residual
/// predicates. Shared by `tintin-cli` (`.explain`) and
/// `examples/repl.rs --connect`.
pub fn render_explain(e: &tintin_session::AssertionExplain) -> String {
    let mut out = format!(
        "assertion '{}': {}\n  denials: {}  event rules: {} kept, {} pruned",
        e.name, e.class, e.denial_count, e.edc_count, e.edc_pruned
    );
    for p in &e.prune_reasons {
        out.push_str(&format!("\n  pruned: {p}"));
    }
    for v in &e.views {
        let gates = v
            .gate
            .iter()
            .map(|(is_ins, t)| format!("{}{t}", if *is_ins { "ins_" } else { "del_" }))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!("\n  view {} gated on [{gates}]", v.name));
        for r in &v.residual {
            out.push_str(&format!("\n    residual: {r}"));
        }
    }
    for w in &e.warnings {
        out.push_str(&format!("\n  warning: {w}"));
    }
    out
}

/// Render one outcome the way the REPL does — shared by `tintin-cli` and
/// `examples/repl.rs --connect`.
pub fn render_outcome(outcome: &StatementOutcome) -> String {
    match outcome {
        StatementOutcome::Ddl => "ok".into(),
        StatementOutcome::AssertionInstalled {
            name,
            views,
            warnings,
        } => {
            let mut out =
                format!("installed assertion '{name}' ({views} incremental view(s) total)");
            for w in warnings {
                out.push_str(&format!("\nwarning: {w}"));
            }
            out
        }
        StatementOutcome::Explain(e) => render_explain(e),
        StatementOutcome::AssertionDropped { name } => format!("dropped assertion '{name}'"),
        StatementOutcome::RowsAffected(n) => format!("{n} row(s) affected"),
        StatementOutcome::Rows(rs) => format!("{rs}"),
        StatementOutcome::TransactionStarted => "transaction started".into(),
        StatementOutcome::SavepointCreated(n) => format!("savepoint '{n}'"),
        StatementOutcome::SavepointReleased(n) => format!("released savepoint '{n}'"),
        StatementOutcome::RolledBackToSavepoint(n) => format!("rolled back to savepoint '{n}'"),
        StatementOutcome::RolledBack => "rolled back".into(),
        StatementOutcome::Committed {
            inserted,
            deleted,
            stats,
        } => format!(
            "committed (+{inserted}/-{deleted}) in {:?} ({} view(s) evaluated, {} skipped, \
             {} plan(s) reused)",
            stats.check_time, stats.views_evaluated, stats.views_skipped, stats.plans_reused
        ),
        StatementOutcome::Rejected { violations, .. } => {
            let mut out = String::from("rejected — transaction rolled back:");
            for v in violations {
                out.push_str(&format!("\n  {} →\n{}", v.assertion, v.rows));
            }
            out
        }
    }
}
