//! `durability` — what write-ahead logging costs, and what recovery costs.
//!
//! Three questions, answered with a real `WireServer` over a durable
//! `--data-dir`-style session server on a temp directory:
//!
//! * **per-commit price of durability** — median checked-commit latency
//!   over one TCP connection, for an in-memory server (the PR-7 baseline
//!   shape), a durable server with `fsync` off (logging cost only), and a
//!   durable server with `fsync` on (the full group-commit price);
//! * **group-commit amortization** — committed transactions/sec with
//!   1–8 concurrent connections under `fsync`, with the measured
//!   `fsyncs / commit` ratio from the server's own WAL counters: the
//!   leader/follower protocol should push the ratio well below 1 as
//!   connections are added;
//! * **recovery time vs log length** — seconds to reopen (checkpoint-free)
//!   directories whose logs hold ~100 / 1000 / 5000 commits, from the
//!   server's `tintin_recovery_seconds` measurement.
//!
//! ```text
//! cargo run -p tintin-bench --release --bin durability            # full
//! cargo run -p tintin-bench --release --bin durability -- --smoke # CI
//! cargo run -p tintin-bench --release --bin durability -- --out path.json
//! ```
//!
//! Results are written as JSON (default `BENCH_durability.json`, checked
//! in at the repository root so the durability-path perf trajectory is
//! recorded).

use std::time::{Duration, Instant};
use tintin_client::Client;
use tintin_server::{ServerConfig, WireServer};
use tintin_session::{DurabilityOptions, Server, StatementOutcome};

/// Rows per committed transaction (matches `wire_path` for comparability).
const BATCH: i64 = 8;
/// Connection counts for the amortization sweep.
const FANOUTS: [usize; 4] = [1, 2, 4, 8];

struct Config {
    measure: Duration,
    recovery_commits: Vec<usize>,
    out_path: String,
}

struct Latency {
    name: String,
    commits: usize,
    median: Duration,
    p95: Duration,
}

struct Amortization {
    connections: usize,
    commits: usize,
    commits_per_sec: f64,
    fsyncs: u64,
    fsyncs_per_commit: f64,
}

struct Recovery {
    commits_in_log: usize,
    log_bytes: u64,
    recovery_secs: f64,
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tintin-bench-dura-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A wire server over the benchmark schema; `durable` opens a fresh data
/// directory with the given fsync mode, `None` serves the in-memory
/// baseline.
fn serve(durable: Option<(&std::path::Path, bool)>) -> (WireServer, String) {
    let sessions = match durable {
        Some((dir, fsync)) => Server::open_with(
            dir,
            &DurabilityOptions {
                fsync,
                ..DurabilityOptions::default()
            },
        )
        .expect("open data dir"),
        None => Server::new(),
    };
    let mut s = sessions.connect();
    s.execute("CREATE TABLE t (a INT PRIMARY KEY, b INT NOT NULL)")
        .unwrap();
    s.install(&["CREATE ASSERTION nonneg CHECK (NOT EXISTS (
         SELECT * FROM t WHERE b < 0))"])
        .unwrap();
    let wire = WireServer::bind(
        sessions,
        "127.0.0.1:0",
        ServerConfig {
            max_connections: 64,
        },
    )
    .expect("bind loopback");
    let addr = wire.local_addr().to_string();
    (wire, addr)
}

fn commit_script(base: i64) -> String {
    let values: Vec<String> = (0..BATCH).map(|i| format!("({}, 1)", base + i)).collect();
    format!("BEGIN; INSERT INTO t VALUES {}; COMMIT;", values.join(", "))
}

fn assert_committed(out: &[StatementOutcome]) {
    assert!(
        out.last().is_some_and(|o| o.is_committed()),
        "benchmark commit failed: {out:?}"
    );
}

fn summarize(name: String, mut samples: Vec<Duration>) -> Latency {
    samples.sort();
    let q = |frac: f64| samples[((samples.len() as f64 * frac) as usize).min(samples.len() - 1)];
    Latency {
        name,
        commits: samples.len(),
        median: samples[samples.len() / 2],
        p95: q(0.95),
    }
}

/// Single-connection commit latency over the wire for one serving mode.
fn run_latency(config: &Config, name: &str, durable: Option<(&std::path::Path, bool)>) -> Latency {
    let (wire, addr) = serve(durable);
    let mut client = Client::connect(addr).unwrap();
    let mut key = 0i64;
    // Warm-up outside the measurement window.
    let warmup = Instant::now() + config.measure / 5;
    while Instant::now() < warmup {
        assert_committed(&client.execute(&commit_script(key)).unwrap());
        key += BATCH;
    }
    let mut samples = Vec::with_capacity(1 << 12);
    let deadline = Instant::now() + config.measure;
    while Instant::now() < deadline {
        let script = commit_script(key);
        key += BATCH;
        let t0 = Instant::now();
        let out = client.execute(&script).unwrap();
        samples.push(t0.elapsed());
        assert_committed(&out);
    }
    wire.shutdown();
    summarize(name.into(), samples)
}

/// Multi-connection throughput under fsync, with the measured
/// fsyncs-per-commit ratio (the group-commit amortization figure).
fn run_amortization(config: &Config, dir: &std::path::Path, n: usize) -> Amortization {
    let (wire, addr) = serve(Some((dir, true)));
    let before = wire.sessions().metrics_snapshot();
    let started = Instant::now();
    let deadline = started + config.measure;
    let workers: Vec<_> = (0..n)
        .map(|w| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut key = (w as i64 + 1) * 1_000_000_000;
                let mut commits = 0usize;
                while Instant::now() < deadline {
                    assert_committed(&client.execute(&commit_script(key)).unwrap());
                    key += BATCH;
                    commits += 1;
                }
                commits
            })
        })
        .collect();
    let commits: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
    let elapsed = started.elapsed().as_secs_f64();
    let after = wire.sessions().metrics_snapshot();
    wire.shutdown();
    let fsyncs = after.counter("tintin_wal_fsyncs").unwrap_or(0)
        - before.counter("tintin_wal_fsyncs").unwrap_or(0);
    Amortization {
        connections: n,
        commits,
        commits_per_sec: commits as f64 / elapsed,
        fsyncs,
        fsyncs_per_commit: fsyncs as f64 / commits.max(1) as f64,
    }
}

/// Build a checkpoint-free log of `commits` single-row commits, then
/// reopen the directory and report the server's own recovery measurement.
fn run_recovery(dir: &std::path::Path, commits: usize) -> Recovery {
    {
        let server = Server::open_with(
            dir,
            &DurabilityOptions {
                fsync: false, // build the log fast; recovery cost is what's measured
                ..DurabilityOptions::default()
            },
        )
        .expect("open data dir");
        let mut s = server.connect();
        s.execute("CREATE TABLE t (a INT PRIMARY KEY, b INT NOT NULL)")
            .unwrap();
        s.install(&["CREATE ASSERTION nonneg CHECK (NOT EXISTS (
             SELECT * FROM t WHERE b < 0))"])
            .unwrap();
        for k in 0..commits as i64 {
            assert_committed(
                &s.execute(&format!("INSERT INTO t VALUES ({k}, 1)"))
                    .unwrap(),
            );
        }
    }
    let log_bytes = std::fs::metadata(dir.join("wal"))
        .map(|m| m.len())
        .unwrap_or(0);
    let reopened = Server::open(dir).expect("recovery");
    let summary = reopened.recovery_summary().expect("durable server");
    assert_eq!(
        summary.commits_replayed, commits,
        "recovery replayed a different number of commits than were logged"
    );
    Recovery {
        commits_in_log: commits,
        log_bytes,
        recovery_secs: summary.elapsed.as_secs_f64(),
    }
}

fn render_json(
    config: &Config,
    latencies: &[Latency],
    amortizations: &[Amortization],
    recoveries: &[Recovery],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"durability\",\n");
    out.push_str(&format!("  \"batch_rows\": {BATCH},\n"));
    out.push_str(&format!(
        "  \"measure_secs\": {:.3},\n",
        config.measure.as_secs_f64()
    ));
    out.push_str("  \"latency\": [\n");
    for (i, l) in latencies.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"regime\": \"{}\", \"commits\": {}, \"median_us\": {:.1}, \
             \"p95_us\": {:.1}}}{}\n",
            l.name,
            l.commits,
            l.median.as_secs_f64() * 1e6,
            l.p95.as_secs_f64() * 1e6,
            if i + 1 == latencies.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"group_commit_amortization\": [\n");
    for (i, a) in amortizations.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"connections\": {}, \"commits\": {}, \"commits_per_sec\": {:.0}, \
             \"fsyncs\": {}, \"fsyncs_per_commit\": {:.3}}}{}\n",
            a.connections,
            a.commits,
            a.commits_per_sec,
            a.fsyncs,
            a.fsyncs_per_commit,
            if i + 1 == amortizations.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"recovery\": [\n");
    for (i, r) in recoveries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"commits_in_log\": {}, \"log_bytes\": {}, \"recovery_secs\": {:.6}}}{}\n",
            r.commits_in_log,
            r.log_bytes,
            r.recovery_secs,
            if i + 1 == recoveries.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_durability.json".to_string());
    let config = Config {
        measure: if smoke {
            Duration::from_millis(150)
        } else {
            Duration::from_secs(2)
        },
        recovery_commits: if smoke {
            vec![20, 100]
        } else {
            vec![100, 1000, 5000]
        },
        out_path,
    };

    eprintln!("durability: single-connection commit latency, three serving modes…");
    let mut latencies = Vec::new();
    latencies.push(run_latency(&config, "in_memory", None));
    {
        let dir = tmpdir("nofsync");
        latencies.push(run_latency(
            &config,
            "durable_no_fsync",
            Some((&dir, false)),
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
    {
        let dir = tmpdir("fsync");
        latencies.push(run_latency(&config, "durable_fsync", Some((&dir, true))));
        let _ = std::fs::remove_dir_all(&dir);
    }
    for l in &latencies {
        eprintln!(
            "durability:   {}: median {:.1}µs p95 {:.1}µs ({} commits)",
            l.name,
            l.median.as_secs_f64() * 1e6,
            l.p95.as_secs_f64() * 1e6,
            l.commits
        );
    }

    eprintln!("durability: group-commit amortization under fsync…");
    let mut amortizations = Vec::new();
    for n in FANOUTS {
        let dir = tmpdir(&format!("amort-{n}"));
        let a = run_amortization(&config, &dir, n);
        let _ = std::fs::remove_dir_all(&dir);
        eprintln!(
            "durability:   {} connection(s): {:.0} commits/sec, {:.3} fsyncs/commit",
            a.connections, a.commits_per_sec, a.fsyncs_per_commit
        );
        amortizations.push(a);
    }

    eprintln!("durability: recovery time vs log length…");
    let mut recoveries = Vec::new();
    for &commits in &config.recovery_commits {
        let dir = tmpdir(&format!("recovery-{commits}"));
        let r = run_recovery(&dir, commits);
        let _ = std::fs::remove_dir_all(&dir);
        eprintln!(
            "durability:   {} commits ({} B log): recovered in {:.3}s",
            r.commits_in_log, r.log_bytes, r.recovery_secs
        );
        recoveries.push(r);
    }

    let json = render_json(&config, &latencies, &amortizations, &recoveries);
    std::fs::write(&config.out_path, &json).expect("write results file");
    eprintln!("durability: wrote {}", config.out_path);
    print!("{json}");
}
