//! `commit_scaling` — how commit latency scales with the number of
//! *installed* assertions when the update touches only a few tables.
//!
//! TINTIN's promise is that commit-time checking cost scales with the
//! *update*, not with the database or the number of installed assertions.
//! This runner measures the median `safeCommit` latency over a schema of
//! `TABLES` tables with N ∈ {1, 16, 128} single-table assertions installed,
//! sweeping the fraction of tables the commit touches — and compares it
//! against the pre-optimization "recompile everything" commit path, which
//! consulted every installed view's gate and compiled every evaluated view
//! from its AST on each commit.
//!
//! ```text
//! cargo run -p tintin-bench --release --bin commit_scaling            # full
//! cargo run -p tintin-bench --release --bin commit_scaling -- --smoke # CI
//! cargo run -p tintin-bench --release --bin commit_scaling -- --out path.json
//! ```
//!
//! Results are written as JSON (default `BENCH_commit_path.json`, intended
//! to be checked in at the repository root so the perf trajectory of the
//! commit path is recorded over time).

use std::time::{Duration, Instant};
use tintin::{Installation, Tintin, TintinConfig};
use tintin_engine::{del_table_name, ins_table_name, Database, Value};
use tintin_obs::Registry;

/// Number of base tables in the synthetic schema.
const TABLES: usize = 16;
/// Rows preloaded per table.
const PRELOAD: i64 = 1000;

struct Config {
    iterations: usize,
    out_path: String,
}

/// One measured cell of the sweep.
struct Cell {
    assertions: usize,
    touched_tables: usize,
    views_total: usize,
    views_evaluated: usize,
    optimized: Duration,
    baseline: Duration,
}

/// One measured cell of the residual-gate regime: the same workload run
/// with the install-time constraint analysis on and off.
struct GateCell {
    regime: &'static str,
    assertions: usize,
    touched_tables: usize,
    analysis_on: Duration,
    analysis_off: Duration,
    views_evaluated_on: usize,
    views_skipped_residual_on: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_commit_path.json".to_string());
    let config = Config {
        iterations: if smoke { 1 } else { 31 },
        out_path,
    };

    // The runner's own registry: every measured commit also lands in a
    // log2 latency histogram, and the final snapshot is embedded in the
    // JSON artifact next to the per-cell medians.
    let registry = Registry::new();
    let mut cells = Vec::new();
    for &n_assertions in &[1usize, 16, 128] {
        for &touched in &[1usize, 4, 16] {
            let cell = measure(n_assertions, touched, config.iterations, &registry);
            println!(
                "assertions={:>4} touched={:>2}/{TABLES} views {:>3}/{:<3} \
                 optimized {:>10?}  recompile-baseline {:>10?}  speedup {:>5.1}x",
                cell.assertions,
                cell.touched_tables,
                cell.views_evaluated,
                cell.views_total,
                cell.optimized,
                cell.baseline,
                speedup(&cell),
            );
            cells.push(cell);
        }
    }

    // Residual-gate regime: with the static analysis on, a prunable
    // workload (every pending event provably unable to violate) should
    // commit measurably faster because the residual gates skip the full
    // vio-view plans; a non-prunable workload (gates always open) should
    // cost the same with the analysis on or off.
    let mut gate_cells = Vec::new();
    for &prunable in &[true, false] {
        let cell = measure_gates(prunable, config.iterations, &registry);
        println!(
            "regime={:<13} assertions={:>4} touched={:>2}/{TABLES} \
             analysis-on {:>10?}  analysis-off {:>10?}  residual-skipped {:>3} \
             ratio {:>5.2}x",
            cell.regime,
            cell.assertions,
            cell.touched_tables,
            cell.analysis_on,
            cell.analysis_off,
            cell.views_skipped_residual_on,
            cell.analysis_off.as_secs_f64() / cell.analysis_on.as_secs_f64().max(1e-9),
        );
        gate_cells.push(cell);
    }

    let json = render_json(&cells, &gate_cells, config.iterations, &registry.snapshot());
    std::fs::write(&config.out_path, json).expect("write results file");
    println!("\nwrote {}", config.out_path);

    // The headline cell the optimization is judged by: 128 installed
    // single-table assertions, a commit touching one table.
    if let Some(cell) = cells
        .iter()
        .find(|c| c.assertions == 128 && c.touched_tables == 1)
    {
        println!(
            "headline (128 assertions, 1 touched table): {:.1}x",
            speedup(cell)
        );
    }
}

fn speedup(c: &Cell) -> f64 {
    c.baseline.as_secs_f64() / c.optimized.as_secs_f64().max(1e-9)
}

/// Fresh database: `TABLES` tables preloaded with consistent rows, plus one
/// installation of `n` single-table assertions spread round-robin.
fn setup(n_assertions: usize) -> (Database, Tintin, Installation) {
    let mut db = Database::new();
    for t in 0..TABLES {
        db.execute_sql(&format!("CREATE TABLE t{t} (id INT PRIMARY KEY, v INT)"))
            .unwrap();
        let rows: Vec<Vec<Value>> = (1..=PRELOAD)
            .map(|i| vec![Value::Int(i), Value::Int(i % 97)])
            .collect();
        db.insert_direct(&format!("t{t}"), rows).unwrap();
    }
    let assertions: Vec<String> = (0..n_assertions)
        .map(|i| {
            format!(
                "CREATE ASSERTION nonneg{i} CHECK (NOT EXISTS (
                     SELECT * FROM t{} WHERE v < 0))",
                i % TABLES
            )
        })
        .collect();
    let refs: Vec<&str> = assertions.iter().map(|s| s.as_str()).collect();
    let tintin = Tintin::with_config(TintinConfig {
        check_initial_state: false, // preloaded data is consistent by construction
        ..TintinConfig::default()
    });
    let inst = tintin.install(&mut db, &refs).expect("install");
    (db, tintin, inst)
}

/// Stage one valid insert into each of the first `touched` tables.
fn stage_update(db: &mut Database, touched: usize, next_id: &mut i64) {
    *next_id += 1;
    for t in 0..touched {
        db.insert_rows(
            &format!("t{t}"),
            vec![vec![Value::Int(*next_id), Value::Int(7)]],
        )
        .unwrap();
    }
}

fn measure(n_assertions: usize, touched: usize, iterations: usize, registry: &Registry) -> Cell {
    let opt_hist = registry.histogram("bench_optimized_commit_seconds");
    let base_hist = registry.histogram("bench_baseline_commit_seconds");
    let commits = registry.counter("bench_commits_total");
    // Optimized path: the real `safeCommit` — relevance index + prepared
    // plans.
    let (mut db, tintin, inst) = setup(n_assertions);
    let mut next_id = PRELOAD;
    let mut views_evaluated = 0;
    // One warm-up commit outside the measurement (cold caches are a
    // one-off, not the steady state being measured).
    stage_update(&mut db, touched, &mut next_id);
    tintin.safe_commit(&mut db, &inst).unwrap();
    let mut opt_samples = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        stage_update(&mut db, touched, &mut next_id);
        let t0 = Instant::now();
        let outcome = tintin.safe_commit(&mut db, &inst).unwrap();
        let elapsed = t0.elapsed();
        opt_samples.push(elapsed);
        opt_hist.record(elapsed);
        commits.inc();
        assert!(outcome.is_committed(), "benchmark updates are valid");
        views_evaluated = outcome.stats().views_evaluated;
    }

    // Baseline: the pre-optimization commit path — normalize, consult the
    // gate of *every* installed view against the database, compile every
    // evaluated view from its AST, then apply and truncate.
    let (mut db, _tintin, inst) = setup(n_assertions);
    let mut next_id = PRELOAD;
    stage_update(&mut db, touched, &mut next_id);
    baseline_commit(&mut db, &inst);
    let mut base_samples = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        stage_update(&mut db, touched, &mut next_id);
        let t0 = Instant::now();
        baseline_commit(&mut db, &inst);
        let elapsed = t0.elapsed();
        base_samples.push(elapsed);
        base_hist.record(elapsed);
    }

    Cell {
        assertions: n_assertions,
        touched_tables: touched,
        views_total: inst.view_count(),
        views_evaluated,
        optimized: median(&mut opt_samples),
        baseline: median(&mut base_samples),
    }
}

/// Fresh database for the residual-gate regime: every assertion lives on
/// a *touched* table, so the relevance index lets all of them through and
/// only the residual gates (or their absence) differentiate the runs.
fn setup_gated(
    n_assertions: usize,
    touched: usize,
    prunable: bool,
    analysis: bool,
) -> (Database, Tintin, Installation) {
    let mut db = Database::new();
    for t in 0..TABLES {
        db.execute_sql(&format!("CREATE TABLE t{t} (id INT PRIMARY KEY, v INT)"))
            .unwrap();
        let rows: Vec<Vec<Value>> = (1..=PRELOAD)
            .map(|i| vec![Value::Int(i), Value::Int(i % 97)])
            .collect();
        db.insert_direct(&format!("t{t}"), rows).unwrap();
    }
    let assertions: Vec<String> = (0..n_assertions)
        .map(|i| {
            let t = i % touched;
            if prunable {
                // Residual gate `v < 0` on ins_t: the benchmark inserts
                // only v = 7, so the gate is always closed.
                format!(
                    "CREATE ASSERTION nonneg{i} CHECK (NOT EXISTS (
                         SELECT * FROM t{t} WHERE v < 0))"
                )
            } else {
                // Column-to-column comparison: no constant bound, so the
                // analysis emits no closing predicate and the full view
                // plan runs every commit — with the analysis on or off.
                format!(
                    "CREATE ASSERTION ordered{i} CHECK (NOT EXISTS (
                         SELECT * FROM t{t} WHERE v > id))"
                )
            }
        })
        .collect();
    let refs: Vec<&str> = assertions.iter().map(|s| s.as_str()).collect();
    let mut cfg = TintinConfig {
        check_initial_state: false,
        ..TintinConfig::default()
    };
    cfg.edc.analysis = analysis;
    let tintin = Tintin::with_config(cfg);
    let inst = tintin.install(&mut db, &refs).expect("install");
    (db, tintin, inst)
}

fn measure_gates(prunable: bool, iterations: usize, registry: &Registry) -> GateCell {
    const N_ASSERTIONS: usize = 128;
    const TOUCHED: usize = 4;
    let hist = registry.histogram(if prunable {
        "bench_prunable_commit_seconds"
    } else {
        "bench_nonprunable_commit_seconds"
    });
    let mut medians = [Duration::ZERO; 2];
    let mut views_evaluated_on = 0;
    let mut views_skipped_residual_on = 0;
    for (slot, analysis) in [(0usize, true), (1usize, false)] {
        let (mut db, tintin, inst) = setup_gated(N_ASSERTIONS, TOUCHED, prunable, analysis);
        let mut next_id = PRELOAD;
        stage_update(&mut db, TOUCHED, &mut next_id);
        tintin.safe_commit(&mut db, &inst).unwrap();
        let mut samples = Vec::with_capacity(iterations);
        for _ in 0..iterations {
            stage_update(&mut db, TOUCHED, &mut next_id);
            let t0 = Instant::now();
            let outcome = tintin.safe_commit(&mut db, &inst).unwrap();
            let elapsed = t0.elapsed();
            samples.push(elapsed);
            if analysis {
                hist.record(elapsed);
            }
            assert!(outcome.is_committed(), "benchmark updates are valid");
            if analysis {
                views_evaluated_on = outcome.stats().views_evaluated;
                views_skipped_residual_on = outcome.stats().views_skipped_residual;
            }
        }
        medians[slot] = median(&mut samples);
    }
    GateCell {
        regime: if prunable { "prunable" } else { "non-prunable" },
        assertions: N_ASSERTIONS,
        touched_tables: TOUCHED,
        analysis_on: medians[0],
        analysis_off: medians[1],
        views_evaluated_on,
        views_skipped_residual_on,
    }
}

/// The old commit path, reconstructed over public APIs: per-view gate
/// probing against the database and per-execution compilation
/// (`Database::query` on the view's AST).
fn baseline_commit(db: &mut Database, inst: &Installation) {
    db.normalize_events().unwrap();
    for view in inst.views() {
        let gate_open = view.gate.iter().all(|(is_ins, table)| {
            let name = if *is_ins {
                ins_table_name(table)
            } else {
                del_table_name(table)
            };
            db.table(&name).map(|t| !t.is_empty()).unwrap_or(false)
        });
        if !gate_open {
            continue;
        }
        let rs = db.query(&view.query).unwrap();
        assert!(rs.is_empty(), "benchmark updates are valid");
    }
    let _ = db.pending_counts();
    db.apply_pending().unwrap();
    db.truncate_events();
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort();
    samples[samples.len() / 2]
}

fn render_json(
    cells: &[Cell],
    gate_cells: &[GateCell],
    iterations: usize,
    metrics: &tintin_obs::Snapshot,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"commit_scaling\",\n");
    out.push_str(&format!("  \"tables\": {TABLES},\n"));
    out.push_str(&format!("  \"preload_rows_per_table\": {PRELOAD},\n"));
    out.push_str(&format!("  \"iterations\": {iterations},\n"));
    out.push_str(
        "  \"note\": \"median safeCommit latency; baseline is the \
         pre-optimization recompile-everything commit path\",\n",
    );
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"assertions\": {}, \"touched_tables\": {}, \
             \"touched_fraction\": {:.4}, \"views_total\": {}, \
             \"views_evaluated\": {}, \"optimized_commit_us\": {:.1}, \
             \"recompile_baseline_us\": {:.1}, \"speedup\": {:.2}}}{}\n",
            c.assertions,
            c.touched_tables,
            c.touched_tables as f64 / TABLES as f64,
            c.views_total,
            c.views_evaluated,
            c.optimized.as_secs_f64() * 1e6,
            c.baseline.as_secs_f64() * 1e6,
            speedup(c),
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(
        "  \"residual_gate_note\": \"same workload with the install-time \
         constraint analysis on vs off; prunable = every pending event \
         provably non-violating (residual gates skip the view plans), \
         non-prunable = gates always open (analysis must cost nothing)\",\n",
    );
    out.push_str("  \"residual_gate_results\": [\n");
    for (i, c) in gate_cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"regime\": \"{}\", \"assertions\": {}, \
             \"touched_tables\": {}, \"analysis_on_commit_us\": {:.1}, \
             \"analysis_off_commit_us\": {:.1}, \"views_evaluated\": {}, \
             \"views_skipped_residual\": {}, \"off_over_on\": {:.2}}}{}\n",
            c.regime,
            c.assertions,
            c.touched_tables,
            c.analysis_on.as_secs_f64() * 1e6,
            c.analysis_off.as_secs_f64() * 1e6,
            c.views_evaluated_on,
            c.views_skipped_residual_on,
            c.analysis_off.as_secs_f64() / c.analysis_on.as_secs_f64().max(1e-9),
            if i + 1 == gate_cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"final_metrics\": {}\n",
        tintin_obs::render_json(metrics)
    ));
    out.push_str("}\n");
    out
}
