//! `read_under_commit` — reader latency while checked commits are in
//! flight: the number the MVCC snapshot redesign is judged by.
//!
//! Before row-version MVCC, every reader shared one database-wide `RwLock`
//! with the commit path, and `COMMIT` held the exclusive write lock for the
//! *whole* stage → check → apply critical section — so assertion-checking
//! latency leaked into every concurrent session's read latency. With MVCC,
//! readers filter row versions by snapshot visibility and an in-flight
//! commit holds the write lock only for two update-sized bookkeeping
//! windows; the expensive check phase shares the read lock with readers.
//!
//! This runner measures the median (and p95) latency of a point `SELECT`
//! issued inside an open snapshot transaction, under three regimes:
//!
//! * `idle` — no concurrent work (the floor);
//! * `mvcc` — a writer thread drives continuous assertion-checked commits
//!   through the real phased commit path;
//! * `coarse_lock_baseline` — the same committed workload driven through a
//!   faithful reconstruction of the pre-MVCC commit (stage → normalize →
//!   check every installed assertion → apply → truncate, all inside one
//!   exclusive write-lock hold). This *is* the old-lock number, recorded in
//!   the JSON so the regression the redesign removed stays measurable.
//!
//! The checked workload deliberately includes an aggregate assertion, whose
//! fallback check re-runs the original `GROUP BY … HAVING` query over the
//! whole table — a realistically expensive commit-time check (O(database),
//! ~ms at the default preload) for readers to either stall behind (old
//! lock) or sail past (MVCC).
//!
//! ```text
//! cargo run -p tintin-bench --release --bin read_under_commit            # full
//! cargo run -p tintin-bench --release --bin read_under_commit -- --smoke # CI
//! cargo run -p tintin-bench --release --bin read_under_commit -- --out path.json
//! ```
//!
//! Results are written as JSON (default `BENCH_read_path.json`, checked in
//! at the repository root so the read-path perf trajectory is recorded).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tintin::TouchedEvents;
use tintin_engine::TxOverlay;
use tintin_session::Server;

/// Rows preloaded into the checked table (the aggregate fallback scans all
/// of them on every commit).
const PRELOAD: i64 = 20_000;
/// Rows per committed batch.
const BATCH: i64 = 20;

struct Config {
    preload: i64,
    measure: Duration,
    out_path: String,
}

/// Latency summary of one regime.
struct Regime {
    name: &'static str,
    samples: usize,
    mean: Duration,
    median: Duration,
    p95: Duration,
    p999: Duration,
    max: Duration,
    commits: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_read_path.json".to_string());
    let config = Config {
        preload: if smoke { 2_000 } else { PRELOAD },
        measure: if smoke {
            Duration::from_millis(150)
        } else {
            Duration::from_secs(1)
        },
        out_path,
    };

    let idle = run_regime("idle", &config, WriterMode::None);
    let mvcc = run_regime("mvcc", &config, WriterMode::Phased);
    let coarse = run_regime("coarse_lock_baseline", &config, WriterMode::CoarseLock);

    for r in [&idle, &mvcc, &coarse] {
        println!(
            "{:<22} reads {:>7}  median {:>10?}  p95 {:>10?}  p99.9 {:>10?}  max {:>10?}  commits {:>5}",
            r.name, r.samples, r.median, r.p95, r.p999, r.max, r.commits
        );
    }
    // The headline is tail latency: under the coarse lock, any read that
    // collides with a commit stalls for the *whole* check — the leak shows
    // up from ~p99.9 (one collision per commit against a µs-scale read
    // stream), reaching the full check duration at the max. MVCC removes
    // the stall; its tail stays within bookkeeping distance of idle.
    let improvement = coarse.p999.as_secs_f64() / mvcc.p999.as_secs_f64().max(1e-9);
    println!(
        "reader tail-latency (p99.9) improvement under commits (coarse → mvcc): {improvement:.1}x"
    );

    let json = render_json(&config, &[idle, mvcc, coarse], improvement);
    std::fs::write(&config.out_path, json).expect("write results file");
    println!("wrote {}", config.out_path);
}

/// How the concurrent committer drives its checked batches.
enum WriterMode {
    /// No concurrent commits at all.
    None,
    /// The real MVCC phased commit (`Session::execute` BEGIN…COMMIT).
    Phased,
    /// The pre-MVCC commit: one exclusive write-lock hold across
    /// stage → normalize → check → apply → truncate.
    CoarseLock,
}

/// A server with the checked schema: one incremental assertion (cheap) and
/// one aggregate assertion whose fallback re-scans the table per commit
/// (expensive — the check readers must not stall behind).
fn setup(preload: i64) -> Server {
    let server = Server::new();
    let mut s = server.connect();
    s.execute("CREATE TABLE item (ik INT PRIMARY KEY, grp INT NOT NULL, val INT NOT NULL)")
        .unwrap();
    {
        let mut db = server.database().write();
        let rows: Vec<Vec<tintin_engine::Value>> = (0..preload)
            .map(|i| {
                vec![
                    tintin_engine::Value::Int(i),
                    tintin_engine::Value::Int(i % 64),
                    tintin_engine::Value::Int(1),
                ]
            })
            .collect();
        db.insert_direct("item", rows).unwrap();
    }
    s.install(&[
        "CREATE ASSERTION nonneg CHECK (NOT EXISTS (
             SELECT * FROM item WHERE val < 0))",
        "CREATE ASSERTION group_total_nonneg CHECK (NOT EXISTS (
             SELECT grp FROM item GROUP BY grp HAVING SUM(val) < 0))",
    ])
    .unwrap();
    server
}

fn run_regime(name: &'static str, config: &Config, mode: WriterMode) -> Regime {
    let server = setup(config.preload);
    let stop = Arc::new(AtomicBool::new(false));

    let writer = {
        let server = server.clone();
        let stop = stop.clone();
        let preload = config.preload;
        std::thread::spawn(move || match mode {
            WriterMode::None => 0usize,
            WriterMode::Phased => {
                let mut s = server.connect();
                let mut commits = 0usize;
                let mut next = preload;
                while !stop.load(Ordering::Relaxed) {
                    let mut script = String::from("BEGIN;");
                    for _ in 0..BATCH {
                        script.push_str(&format!("INSERT INTO item VALUES ({next}, 0, 1);"));
                        next += 1;
                    }
                    script.push_str("COMMIT;");
                    let out = s.execute(&script).unwrap();
                    assert!(out.last().unwrap().is_committed());
                    commits += 1;
                }
                commits
            }
            WriterMode::CoarseLock => {
                let tintin = server.checker();
                let installations = server.installations();
                let shared = server.database().clone();
                let mut commits = 0usize;
                let mut next = preload;
                while !stop.load(Ordering::Relaxed) {
                    // The pre-MVCC commit path: everything under one
                    // exclusive hold, readers locked out for the duration.
                    let _guard = shared.commit_guard();
                    let mut db = shared.write();
                    let mut overlay = TxOverlay::new();
                    for _ in 0..BATCH {
                        let stmt = tintin_sql::parse_statement(&format!(
                            "INSERT INTO item VALUES ({next}, 0, 1)"
                        ))
                        .unwrap();
                        let delta = db.plan_dml(&stmt, &overlay).unwrap();
                        overlay.apply_delta(&delta);
                        next += 1;
                    }
                    db.stage_overlay(&overlay).unwrap();
                    let (_, touched_list) = db.normalize_events_touched().unwrap();
                    let touched = TouchedEvents::from_list(&touched_list);
                    let mut stats = tintin::CheckStats::default();
                    for inst in &installations {
                        let violations = tintin
                            .check_normalized(&db, inst, &touched, &mut stats)
                            .unwrap();
                        assert!(violations.is_empty(), "benchmark updates are valid");
                    }
                    db.apply_pending_for(&touched_list).unwrap();
                    db.truncate_events_for(&touched_list);
                    commits += 1;
                }
                commits
            }
        })
    };

    // The reader: an open snapshot transaction issuing point SELECTs; each
    // sample is one full query round-trip.
    let mut reader = server.connect();
    reader.execute("BEGIN").unwrap();
    let mut samples: Vec<Duration> = Vec::with_capacity(1 << 16);
    let deadline = Instant::now() + config.measure;
    let mut key = 0i64;
    while Instant::now() < deadline {
        let q = format!("SELECT * FROM item WHERE ik = {}", key % config.preload);
        key += 1;
        let t0 = Instant::now();
        let rs = reader.query_rows(&q).unwrap();
        samples.push(t0.elapsed());
        assert_eq!(
            rs.len(),
            1,
            "snapshot must keep returning the BEGIN-time row"
        );
    }
    reader.execute("ROLLBACK").unwrap();

    stop.store(true, Ordering::Relaxed);
    let commits = writer.join().unwrap();

    samples.sort();
    let q = |frac: f64| samples[((samples.len() as f64 * frac) as usize).min(samples.len() - 1)];
    let total: Duration = samples.iter().sum();
    Regime {
        name,
        samples: samples.len(),
        mean: total / samples.len() as u32,
        median: samples[samples.len() / 2],
        p95: q(0.95),
        p999: q(0.999),
        max: *samples.last().unwrap(),
        commits,
    }
}

fn render_json(config: &Config, regimes: &[Regime], improvement: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"read_under_commit\",\n");
    out.push_str(&format!("  \"preload_rows\": {},\n", config.preload));
    out.push_str(&format!("  \"batch_rows_per_commit\": {BATCH},\n"));
    out.push_str(&format!(
        "  \"measure_seconds\": {:.3},\n",
        config.measure.as_secs_f64()
    ));
    out.push_str(
        "  \"note\": \"latency of a point SELECT inside an open snapshot \
         transaction; coarse_lock_baseline reconstructs the pre-MVCC commit \
         (stage+check+apply under one exclusive write-lock hold) so the \
         old-lock number stays recorded; the checked workload includes an \
         aggregate fallback assertion that re-scans the table every commit. \
         The leak lives in the tail: under the coarse lock a read colliding \
         with a commit stalls for the whole check (see p999/max), while MVCC \
         readers share the lock with the check phase and never stall\",\n",
    );
    out.push_str("  \"results\": [\n");
    for (i, r) in regimes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"regime\": \"{}\", \"reads\": {}, \"mean_read_us\": {:.1}, \
             \"median_read_us\": {:.1}, \"p95_read_us\": {:.1}, \
             \"p999_read_us\": {:.1}, \"max_read_us\": {:.1}, \
             \"concurrent_commits\": {}}}{}\n",
            r.name,
            r.samples,
            r.mean.as_secs_f64() * 1e6,
            r.median.as_secs_f64() * 1e6,
            r.p95.as_secs_f64() * 1e6,
            r.p999.as_secs_f64() * 1e6,
            r.max.as_secs_f64() * 1e6,
            r.commits,
            if i + 1 == regimes.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"reader_tail_latency_improvement_under_commits_p999\": {improvement:.2}\n"
    ));
    out.push_str("}\n");
    out
}
