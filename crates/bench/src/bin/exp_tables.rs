//! `exp_tables` — regenerates the paper's evaluation tables.
//!
//! ```text
//! cargo run -p tintin-bench --release --bin exp_tables            # all
//! cargo run -p tintin-bench --release --bin exp_tables -- e1     # one exp
//! cargo run -p tintin-bench --release --bin exp_tables -- --quick
//! ```
//!
//! * **E1** (paper §1): the running-example assertion on 1–5 paper-GB data
//!   with 1–5 paper-MB updates; TINTIN check time vs non-incremental query,
//!   with speedup factors (paper: 0.01–0.04 s, ×89–×2662).
//! * **E2** (paper §4): six assertions of different complexity on the same
//!   grid (paper: 0.01–1.29 s, always faster, up to ×2662).
//! * **E3** (DESIGN.md ablation): contribution of the semantic
//!   optimizations, the FK pruning and the emptiness shortcut.

use tintin::{EdcConfig, TintinConfig};
use tintin_bench::{prepare, prepare_with_config, secs, time_full, time_incremental, Scenario};
use tintin_tpch::human_bytes;
use tintin_tpch::TPCH_ASSERTIONS;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let all = which.is_empty() || which.contains(&"all");

    // Grid scale: full grid {1,2,5} GB × {1,5} MB; quick mode shrinks it.
    let (gbs, mbs, iters): (Vec<f64>, Vec<f64>, usize) = if quick {
        (vec![0.5, 1.0], vec![1.0], 2)
    } else {
        (vec![1.0, 2.0, 5.0], vec![1.0, 5.0], 3)
    };

    if all || which.contains(&"e1") {
        e1(&gbs, &mbs, iters);
    }
    if all || which.contains(&"e2") {
        e2(
            if quick { 1.0 } else { 5.0 },
            if quick { 1.0 } else { 5.0 },
            iters,
        );
    }
    if all || which.contains(&"e3") {
        e3(if quick { 0.5 } else { 2.0 }, 1.0, iters);
    }
}

/// E1 — the paper's §1 headline numbers for atLeastOneLineItem.
fn e1(gbs: &[f64], mbs: &[f64], iters: usize) {
    println!("== E1: atLeastOneLineItem — incremental vs non-incremental ==");
    println!("   (paper: 0.01–0.04 s incremental; ×89–×2662 speedup)");
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "DB", "update", "db bytes", "upd bytes", "TINTIN", "full query", "speedup"
    );
    for &gb in gbs {
        for &mb in mbs {
            let mut s = prepare(gb, mb, &[TPCH_ASSERTIONS[0].1], 42);
            let inc = time_incremental(&mut s, iters);
            let full = time_full(&s, iters);
            let speedup = full.as_secs_f64() / inc.as_secs_f64().max(1e-9);
            println!(
                "{:>7}G {:>7}M {:>12} {:>12} {:>12} {:>12} {:>8.0}x",
                gb,
                mb,
                human_bytes(s.db_bytes),
                human_bytes(s.update_bytes),
                secs(inc),
                secs(full),
                speedup
            );
        }
    }
    println!();
}

/// E2 — assertions of different complexity (paper §4).
fn e2(gb: f64, mb: f64, iters: usize) {
    println!("== E2: assertion suite at {gb} paper-GB / {mb} paper-MB ==");
    println!("   (paper: 0.01–1.29 s incremental, always faster, up to ×2662)");
    println!(
        "{:>22} {:>6} {:>12} {:>12} {:>9}",
        "assertion", "views", "TINTIN", "full query", "speedup"
    );
    let mut range: Option<(f64, f64)> = None;
    for (name, sql) in TPCH_ASSERTIONS {
        let mut s = prepare(gb, mb, &[sql], 42);
        let inc = time_incremental(&mut s, iters);
        let full = time_full(&s, iters);
        let speedup = full.as_secs_f64() / inc.as_secs_f64().max(1e-9);
        let views = s.inst.view_count();
        println!(
            "{name:>22} {views:>6} {:>12} {:>12} {:>8.0}x",
            secs(inc),
            secs(full),
            speedup
        );
        range = Some(match range {
            None => (inc.as_secs_f64(), inc.as_secs_f64()),
            Some((lo, hi)) => (lo.min(inc.as_secs_f64()), hi.max(inc.as_secs_f64())),
        });
    }
    if let Some((lo, hi)) = range {
        println!("   TINTIN check-time range: {lo:.4}s – {hi:.4}s");
    }
    println!();
}

/// E3 — ablation of the semantic optimizations and the emptiness shortcut.
fn e3(gb: f64, mb: f64, iters: usize) {
    println!("== E3: ablation at {gb} paper-GB / {mb} paper-MB (all 6 assertions) ==");
    println!(
        "{:>28} {:>6} {:>12} {:>10}",
        "configuration", "views", "check", "vs default"
    );
    let assertions: Vec<&str> = TPCH_ASSERTIONS.iter().map(|(_, s)| *s).collect();
    let configs: Vec<(&str, TintinConfig)> = vec![
        ("default", TintinConfig::default()),
        (
            "no FK pruning",
            TintinConfig {
                edc: EdcConfig {
                    optimize: true,
                    assume_fks_valid: false,
                    ..EdcConfig::default()
                },
                ..TintinConfig::default()
            },
        ),
        (
            "no optimizations",
            TintinConfig {
                edc: EdcConfig {
                    optimize: false,
                    assume_fks_valid: false,
                    ..EdcConfig::default()
                },
                ..TintinConfig::default()
            },
        ),
        (
            "no emptiness shortcut",
            TintinConfig {
                emptiness_shortcut: false,
                ..TintinConfig::default()
            },
        ),
    ];
    let mut baseline: Option<f64> = None;
    for (label, config) in configs {
        let mut s: Scenario = prepare_with_config(gb, mb, &assertions, 42, config);
        let inc = time_incremental(&mut s, iters);
        let views = s.inst.view_count();
        let rel = match baseline {
            None => {
                baseline = Some(inc.as_secs_f64());
                1.0
            }
            Some(b) => inc.as_secs_f64() / b.max(1e-9),
        };
        println!("{label:>28} {views:>6} {:>12} {rel:>9.2}x", secs(inc));
    }

    // The shortcut's raison d'être: an update that cannot affect any of the
    // assertions (customer insertions only) — with the shortcut every view
    // is skipped; without it, all of them are evaluated.
    println!("\n   -- update touching only `customer` (irrelevant to all 6 assertions) --");
    for (label, shortcut) in [("with shortcut", true), ("without shortcut", false)] {
        let mut s = prepare_with_config(
            gb,
            0.0,
            &assertions,
            42,
            TintinConfig {
                emptiness_shortcut: shortcut,
                ..TintinConfig::default()
            },
        );
        // Insert fresh customers only.
        let base = s.counts.customers;
        let rows: Vec<Vec<tintin_engine::Value>> = (1..=200)
            .map(|i| {
                vec![
                    tintin_engine::Value::Int(base + i),
                    tintin_engine::Value::str(format!("Customer#{:09}", base + i)),
                    tintin_engine::Value::Int(1),
                ]
            })
            .collect();
        s.db.insert_rows("customer", rows).unwrap();
        let (violations, stats) = s.tintin.check_pending(&mut s.db, &s.inst).unwrap();
        assert!(violations.is_empty());
        println!(
            "{label:>28} {:>6} {:>12}   ({} views evaluated, {} skipped)",
            s.inst.view_count(),
            secs(stats.check_time),
            stats.views_evaluated,
            stats.views_skipped
        );
    }
    println!();
}
