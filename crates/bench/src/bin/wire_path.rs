//! `wire_path` — end-to-end cost of the TCP front-end: checked-commit
//! latency over the wire vs in-process, and multi-connection commit
//! throughput.
//!
//! The server under test is a real [`tintin_server::WireServer`] on a
//! loopback ephemeral port; the clients are real [`tintin_client::Client`]s
//! on real sockets. Every commit runs the full pipeline — parse, plan,
//! stage, incremental check against an installed assertion, versioned
//! apply, publish — plus, for the wire regimes, request/response framing
//! and a TCP round trip.
//!
//! Regimes:
//!
//! * `local_commit` — an in-process session commits `BATCH`-row checked
//!   transactions (the floor the wire adds to);
//! * `wire_commit` — one TCP connection does the same commits end-to-end
//!   (latency percentiles measure the wire overhead);
//! * `wire_throughput_N` — N connections commit concurrently for the
//!   measurement window, on disjoint key ranges (no artificial conflict
//!   noise); total commits/sec is the multi-connection scaling figure.
//!
//! ```text
//! cargo run -p tintin-bench --release --bin wire_path            # full
//! cargo run -p tintin-bench --release --bin wire_path -- --smoke # CI
//! cargo run -p tintin-bench --release --bin wire_path -- --out path.json
//! ```
//!
//! Results are written as JSON (default `BENCH_wire_path.json`, checked in
//! at the repository root so the wire-path perf trajectory is recorded).

use std::time::{Duration, Instant};
use tintin_client::Client;
use tintin_server::{ServerConfig, WireServer};
use tintin_session::{Server, Session, StatementOutcome};

/// Rows per committed transaction.
const BATCH: i64 = 8;
/// Connection counts for the throughput scaling regimes.
const FANOUTS: [usize; 4] = [1, 2, 4, 8];

struct Config {
    measure: Duration,
    out_path: String,
}

struct Latency {
    name: String,
    commits: usize,
    mean: Duration,
    median: Duration,
    p95: Duration,
    p999: Duration,
}

struct Throughput {
    connections: usize,
    commits: usize,
    commits_per_sec: f64,
}

/// A fresh wire server over the benchmark schema: a keyed table with a
/// non-negativity assertion, so every commit is assertion-checked.
fn serve() -> (WireServer, String) {
    let sessions = Server::new();
    let mut s = sessions.connect();
    s.execute("CREATE TABLE t (a INT PRIMARY KEY, b INT NOT NULL)")
        .unwrap();
    s.install(&["CREATE ASSERTION nonneg CHECK (NOT EXISTS (
         SELECT * FROM t WHERE b < 0))"])
        .unwrap();
    let wire = WireServer::bind(
        sessions,
        "127.0.0.1:0",
        ServerConfig {
            max_connections: 64,
        },
    )
    .expect("bind loopback");
    let addr = wire.local_addr().to_string();
    (wire, addr)
}

fn commit_script(base: i64) -> String {
    let values: Vec<String> = (0..BATCH).map(|i| format!("({}, 1)", base + i)).collect();
    format!("BEGIN; INSERT INTO t VALUES {}; COMMIT;", values.join(", "))
}

fn assert_committed(out: &[StatementOutcome]) {
    assert!(
        out.last().is_some_and(|o| o.is_committed()),
        "benchmark commit failed: {out:?}"
    );
}

fn summarize(name: String, mut samples: Vec<Duration>) -> Latency {
    samples.sort();
    let q = |frac: f64| samples[((samples.len() as f64 * frac) as usize).min(samples.len() - 1)];
    let total: Duration = samples.iter().sum();
    Latency {
        name,
        commits: samples.len(),
        mean: total / samples.len() as u32,
        median: samples[samples.len() / 2],
        p95: q(0.95),
        p999: q(0.999),
    }
}

/// Latency of checked commits through an in-process session (the floor).
fn run_local(config: &Config) -> Latency {
    let (wire, _) = serve();
    let mut session: Session = wire.sessions().connect();
    let mut samples = Vec::with_capacity(1 << 14);
    let deadline = Instant::now() + config.measure;
    let mut key = 0i64;
    while Instant::now() < deadline {
        let script = commit_script(key);
        key += BATCH;
        let t0 = Instant::now();
        let out = session.execute(&script).unwrap();
        samples.push(t0.elapsed());
        assert_committed(&out);
    }
    wire.shutdown();
    summarize("local_commit".into(), samples)
}

/// Latency of the same commits end-to-end over TCP.
fn run_wire(config: &Config) -> Latency {
    let (wire, addr) = serve();
    let mut client = Client::connect(addr).unwrap();
    let mut samples = Vec::with_capacity(1 << 14);
    let deadline = Instant::now() + config.measure;
    let mut key = 0i64;
    while Instant::now() < deadline {
        let script = commit_script(key);
        key += BATCH;
        let t0 = Instant::now();
        let out = client.execute(&script).unwrap();
        samples.push(t0.elapsed());
        assert_committed(&out);
    }
    wire.shutdown();
    summarize("wire_commit".into(), samples)
}

/// Total committed transactions/sec with `n` concurrent connections on
/// disjoint key ranges.
fn run_throughput(config: &Config, n: usize) -> Throughput {
    let (wire, addr) = serve();
    let started = Instant::now();
    let deadline = started + config.measure;
    let workers: Vec<_> = (0..n)
        .map(|w| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut key = (w as i64 + 1) * 1_000_000_000;
                let mut commits = 0usize;
                while Instant::now() < deadline {
                    let out = client.execute(&commit_script(key)).unwrap();
                    assert_committed(&out);
                    key += BATCH;
                    commits += 1;
                }
                commits
            })
        })
        .collect();
    let commits: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
    let elapsed = started.elapsed().as_secs_f64();
    wire.shutdown();
    Throughput {
        connections: n,
        commits,
        commits_per_sec: commits as f64 / elapsed,
    }
}

fn render_json(
    config: &Config,
    latencies: &[Latency],
    throughputs: &[Throughput],
    overhead_us: f64,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"wire_path\",\n");
    out.push_str(&format!("  \"batch_rows_per_commit\": {BATCH},\n"));
    out.push_str(&format!(
        "  \"measure_seconds_per_regime\": {:.3},\n",
        config.measure.as_secs_f64()
    ));
    out.push_str(
        "  \"note\": \"end-to-end assertion-checked commit latency through \
         the TCP front-end (loopback, one session per connection) vs the \
         same commits in-process, and total committed transactions/sec as \
         connections fan out on disjoint key ranges; every commit runs \
         parse, plan, stage, incremental check, versioned apply and \
         publish. Committers serialize on the database's commit lock, so \
         flat throughput across fan-outs is the expected shape: it shows \
         the front-end adds no contention of its own on the commit path\",\n",
    );
    out.push_str("  \"commit_latency\": [\n");
    for (i, l) in latencies.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"regime\": \"{}\", \"commits\": {}, \"mean_us\": {:.1}, \
             \"median_us\": {:.1}, \"p95_us\": {:.1}, \"p999_us\": {:.1}}}{}\n",
            l.name,
            l.commits,
            l.mean.as_secs_f64() * 1e6,
            l.median.as_secs_f64() * 1e6,
            l.p95.as_secs_f64() * 1e6,
            l.p999.as_secs_f64() * 1e6,
            if i + 1 == latencies.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"wire_overhead_median_us\": {overhead_us:.1},\n"
    ));
    out.push_str("  \"multi_connection_throughput\": [\n");
    for (i, t) in throughputs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"connections\": {}, \"commits\": {}, \"commits_per_sec\": {:.0}}}{}\n",
            t.connections,
            t.commits,
            t.commits_per_sec,
            if i + 1 == throughputs.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_wire_path.json".to_string());
    let config = Config {
        measure: if smoke {
            Duration::from_millis(150)
        } else {
            Duration::from_secs(3)
        },
        out_path,
    };

    eprintln!("wire_path: measuring local commit latency…");
    let local = run_local(&config);
    eprintln!("wire_path: measuring wire commit latency…");
    let wire = run_wire(&config);
    let overhead_us = (wire.median.as_secs_f64() - local.median.as_secs_f64()) * 1e6;
    eprintln!(
        "wire_path: median commit {:.1}µs local, {:.1}µs over TCP (+{overhead_us:.1}µs wire)",
        local.median.as_secs_f64() * 1e6,
        wire.median.as_secs_f64() * 1e6,
    );

    let mut throughputs = Vec::new();
    for n in FANOUTS {
        eprintln!("wire_path: throughput with {n} connection(s)…");
        let t = run_throughput(&config, n);
        eprintln!(
            "wire_path:   {} commits in {:.1}s → {:.0} commits/sec",
            t.commits,
            config.measure.as_secs_f64(),
            t.commits_per_sec
        );
        throughputs.push(t);
    }

    let json = render_json(&config, &[local, wire], &throughputs, overhead_us);
    std::fs::write(&config.out_path, &json).expect("write results file");
    eprintln!("wire_path: wrote {}", config.out_path);
    print!("{json}");
}
