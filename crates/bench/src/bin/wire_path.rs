//! `wire_path` — end-to-end cost of the TCP front-end: checked-commit
//! latency over the wire vs in-process, and multi-connection commit
//! throughput.
//!
//! The server under test is a real [`tintin_server::WireServer`] on a
//! loopback ephemeral port; the clients are real [`tintin_client::Client`]s
//! on real sockets. Every commit runs the full pipeline — parse, plan,
//! stage, incremental check against an installed assertion, versioned
//! apply, publish — plus, for the wire regimes, request/response framing
//! and a TCP round trip.
//!
//! Regimes:
//!
//! * `local_commit_noop` — an in-process session commits `BATCH`-row
//!   checked transactions with a no-op metrics registry (the
//!   un-instrumented floor);
//! * `local_commit` — the same commits with the default (enabled)
//!   registry, measured *interleaved in time slices* with
//!   `local_commit_noop` so machine drift cancels out of the comparison;
//!   the median delta is the instrumentation overhead, reported as
//!   `metrics_overhead_median_pct` (budget: <= 5%);
//! * `wire_commit` — one TCP connection does the same commits end-to-end
//!   (latency percentiles measure the wire overhead);
//! * `wire_throughput_N` — N connections commit concurrently for the
//!   measurement window, on disjoint key ranges (no artificial conflict
//!   noise); total commits/sec is the multi-connection scaling figure.
//!
//! The wire regime's final registry snapshot is embedded in the JSON
//! artifact (`final_metrics`), so the internal counters — commit-phase
//! histograms, request latency, bytes moved — are recorded next to the
//! externally measured timings they should agree with.
//!
//! ```text
//! cargo run -p tintin-bench --release --bin wire_path            # full
//! cargo run -p tintin-bench --release --bin wire_path -- --smoke # CI
//! cargo run -p tintin-bench --release --bin wire_path -- --out path.json
//! ```
//!
//! Results are written as JSON (default `BENCH_wire_path.json`, checked in
//! at the repository root so the wire-path perf trajectory is recorded).

use std::time::{Duration, Instant};
use tintin_client::Client;
use tintin_obs::{Registry, Snapshot};
use tintin_server::{ServerConfig, WireServer};
use tintin_session::{Server, StatementOutcome};

/// Rows per committed transaction.
const BATCH: i64 = 8;
/// Connection counts for the throughput scaling regimes.
const FANOUTS: [usize; 4] = [1, 2, 4, 8];

struct Config {
    measure: Duration,
    out_path: String,
}

struct Latency {
    name: String,
    commits: usize,
    mean: Duration,
    median: Duration,
    p95: Duration,
    p999: Duration,
}

struct Throughput {
    connections: usize,
    commits: usize,
    commits_per_sec: f64,
}

/// A fresh wire server over the benchmark schema: a keyed table with a
/// non-negativity assertion, so every commit is assertion-checked.
fn serve() -> (WireServer, String) {
    serve_with_registry(Registry::new())
}

fn serve_with_registry(registry: Registry) -> (WireServer, String) {
    let sessions = Server::with_registry(registry);
    let mut s = sessions.connect();
    s.execute("CREATE TABLE t (a INT PRIMARY KEY, b INT NOT NULL)")
        .unwrap();
    s.install(&["CREATE ASSERTION nonneg CHECK (NOT EXISTS (
         SELECT * FROM t WHERE b < 0))"])
        .unwrap();
    let wire = WireServer::bind(
        sessions,
        "127.0.0.1:0",
        ServerConfig {
            max_connections: 64,
        },
    )
    .expect("bind loopback");
    let addr = wire.local_addr().to_string();
    (wire, addr)
}

fn commit_script(base: i64) -> String {
    let values: Vec<String> = (0..BATCH).map(|i| format!("({}, 1)", base + i)).collect();
    format!("BEGIN; INSERT INTO t VALUES {}; COMMIT;", values.join(", "))
}

fn assert_committed(out: &[StatementOutcome]) {
    assert!(
        out.last().is_some_and(|o| o.is_committed()),
        "benchmark commit failed: {out:?}"
    );
}

fn summarize(name: String, mut samples: Vec<Duration>) -> Latency {
    samples.sort();
    let q = |frac: f64| samples[((samples.len() as f64 * frac) as usize).min(samples.len() - 1)];
    let total: Duration = samples.iter().sum();
    Latency {
        name,
        commits: samples.len(),
        mean: total / samples.len() as u32,
        median: samples[samples.len() / 2],
        p95: q(0.95),
        p999: q(0.999),
    }
}

/// Latency of checked commits through an in-process session, measured
/// simultaneously for two configurations: the no-op registry (the
/// un-instrumented floor) and the enabled one (the shipping shape). The
/// two sessions run over separate servers but are *interleaved in short
/// time slices*, so slow machine drift (thermal, co-tenants) lands on
/// both sides of the overhead comparison instead of biasing whichever
/// regime happened to run second. Returns `(noop, instrumented)`.
fn run_overhead_pair(config: &Config) -> (Latency, Latency) {
    let (wire_noop, _) = serve_with_registry(Registry::noop());
    let (wire_inst, _) = serve_with_registry(Registry::new());
    let mut lanes = [
        (wire_noop.sessions().connect(), Vec::with_capacity(1 << 14)),
        (wire_inst.sessions().connect(), Vec::with_capacity(1 << 14)),
    ];
    let mut key = 0i64;
    // Warm-up outside the measurement: the process otherwise pays one-off
    // costs (allocator growth, cold caches) inside the first samples.
    let warmup = Instant::now() + config.measure / 5;
    while Instant::now() < warmup {
        for (session, _) in lanes.iter_mut() {
            let out = session.execute(&commit_script(key)).unwrap();
            key += BATCH;
            assert_committed(&out);
        }
    }
    let slice = (config.measure / 64).max(Duration::from_millis(2));
    let deadline = Instant::now() + 2 * config.measure;
    while Instant::now() < deadline {
        for (session, samples) in lanes.iter_mut() {
            let slice_end = Instant::now() + slice;
            while Instant::now() < slice_end {
                let script = commit_script(key);
                key += BATCH;
                let t0 = Instant::now();
                let out = session.execute(&script).unwrap();
                samples.push(t0.elapsed());
                assert_committed(&out);
            }
        }
    }
    let [(_, noop_samples), (_, inst_samples)] = lanes;
    wire_noop.shutdown();
    wire_inst.shutdown();
    (
        summarize("local_commit_noop".into(), noop_samples),
        summarize("local_commit".into(), inst_samples),
    )
}

/// Latency of the same commits end-to-end over TCP — plus the server's
/// final registry snapshot, embedded in the artifact so the internal
/// phase histograms sit next to the external timings.
fn run_wire(config: &Config) -> (Latency, Snapshot) {
    let (wire, addr) = serve();
    let mut client = Client::connect(addr).unwrap();
    let mut samples = Vec::with_capacity(1 << 14);
    let deadline = Instant::now() + config.measure;
    let mut key = 0i64;
    while Instant::now() < deadline {
        let script = commit_script(key);
        key += BATCH;
        let t0 = Instant::now();
        let out = client.execute(&script).unwrap();
        samples.push(t0.elapsed());
        assert_committed(&out);
    }
    let snapshot = wire.sessions().metrics_snapshot();
    wire.shutdown();
    (summarize("wire_commit".into(), samples), snapshot)
}

/// Total committed transactions/sec with `n` concurrent connections on
/// disjoint key ranges.
fn run_throughput(config: &Config, n: usize) -> Throughput {
    let (wire, addr) = serve();
    let started = Instant::now();
    let deadline = started + config.measure;
    let workers: Vec<_> = (0..n)
        .map(|w| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut key = (w as i64 + 1) * 1_000_000_000;
                let mut commits = 0usize;
                while Instant::now() < deadline {
                    let out = client.execute(&commit_script(key)).unwrap();
                    assert_committed(&out);
                    key += BATCH;
                    commits += 1;
                }
                commits
            })
        })
        .collect();
    let commits: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
    let elapsed = started.elapsed().as_secs_f64();
    wire.shutdown();
    Throughput {
        connections: n,
        commits,
        commits_per_sec: commits as f64 / elapsed,
    }
}

fn render_json(
    config: &Config,
    latencies: &[Latency],
    throughputs: &[Throughput],
    overhead_us: f64,
    metrics_overhead_pct: f64,
    final_metrics: &Snapshot,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"wire_path\",\n");
    out.push_str(&format!("  \"batch_rows_per_commit\": {BATCH},\n"));
    out.push_str(&format!(
        "  \"measure_seconds_per_regime\": {:.3},\n",
        config.measure.as_secs_f64()
    ));
    out.push_str(
        "  \"note\": \"end-to-end assertion-checked commit latency through \
         the TCP front-end (loopback, one session per connection) vs the \
         same commits in-process, and total committed transactions/sec as \
         connections fan out on disjoint key ranges; every commit runs \
         parse, plan, stage, incremental check, versioned apply and \
         publish. Committers serialize on the database's commit lock, so \
         flat throughput across fan-outs is the expected shape: it shows \
         the front-end adds no contention of its own on the commit path\",\n",
    );
    out.push_str("  \"commit_latency\": [\n");
    for (i, l) in latencies.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"regime\": \"{}\", \"commits\": {}, \"mean_us\": {:.1}, \
             \"median_us\": {:.1}, \"p95_us\": {:.1}, \"p999_us\": {:.1}}}{}\n",
            l.name,
            l.commits,
            l.mean.as_secs_f64() * 1e6,
            l.median.as_secs_f64() * 1e6,
            l.p95.as_secs_f64() * 1e6,
            l.p999.as_secs_f64() * 1e6,
            if i + 1 == latencies.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"wire_overhead_median_us\": {overhead_us:.1},\n"
    ));
    out.push_str(&format!(
        "  \"metrics_overhead_median_pct\": {metrics_overhead_pct:.2},\n"
    ));
    out.push_str("  \"multi_connection_throughput\": [\n");
    for (i, t) in throughputs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"connections\": {}, \"commits\": {}, \"commits_per_sec\": {:.0}}}{}\n",
            t.connections,
            t.commits,
            t.commits_per_sec,
            if i + 1 == throughputs.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"final_metrics\": {}\n",
        tintin_obs::render_json(final_metrics)
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_wire_path.json".to_string());
    let config = Config {
        measure: if smoke {
            Duration::from_millis(150)
        } else {
            Duration::from_secs(3)
        },
        out_path,
    };

    eprintln!("wire_path: measuring local commit latency, noop vs instrumented (interleaved)…");
    let (noop, local) = run_overhead_pair(&config);
    let metrics_overhead_pct = (local.median.as_secs_f64() - noop.median.as_secs_f64())
        / noop.median.as_secs_f64()
        * 100.0;
    eprintln!(
        "wire_path: metrics overhead on the commit median: {:.1}µs noop vs {:.1}µs \
         instrumented ({metrics_overhead_pct:+.2}%)",
        noop.median.as_secs_f64() * 1e6,
        local.median.as_secs_f64() * 1e6,
    );
    eprintln!("wire_path: measuring wire commit latency…");
    let (wire, final_metrics) = run_wire(&config);
    let overhead_us = (wire.median.as_secs_f64() - local.median.as_secs_f64()) * 1e6;
    eprintln!(
        "wire_path: median commit {:.1}µs local, {:.1}µs over TCP (+{overhead_us:.1}µs wire)",
        local.median.as_secs_f64() * 1e6,
        wire.median.as_secs_f64() * 1e6,
    );

    let mut throughputs = Vec::new();
    for n in FANOUTS {
        eprintln!("wire_path: throughput with {n} connection(s)…");
        let t = run_throughput(&config, n);
        eprintln!(
            "wire_path:   {} commits in {:.1}s → {:.0} commits/sec",
            t.commits,
            config.measure.as_secs_f64(),
            t.commits_per_sec
        );
        throughputs.push(t);
    }

    let json = render_json(
        &config,
        &[noop, local, wire],
        &throughputs,
        overhead_us,
        metrics_overhead_pct,
        &final_metrics,
    );
    std::fs::write(&config.out_path, &json).expect("write results file");
    eprintln!("wire_path: wrote {}", config.out_path);
    print!("{json}");
}
