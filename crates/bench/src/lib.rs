//! Shared harness for the paper-reproduction experiments.
//!
//! Unit mapping (documented in EXPERIMENTS.md): the paper runs on 1–5 GB
//! TPC-H databases with 1–5 MB update files. This harness scales both axes
//! down by the same factor, preserving the DB-size : update-size ratios that
//! drive the paper's speedups: one "paper GB" is represented by scale factor
//! 0.01 (≈ 15 k orders), and one "paper MB" by 1/1000 of that database's
//! bytes.

use std::time::{Duration, Instant};
use tintin::{Installation, Tintin, TintinConfig};
use tintin_engine::Database;
use tintin_tpch::{database_bytes, Dbgen, TpchCounts, UpdateGen};

/// Scale factor representing one "paper gigabyte".
pub const SF_PER_PAPER_GB: f64 = 0.01;

/// Event bytes representing one "paper megabyte" (1/1000 of a paper-GB
/// database, matching the paper's 1 MB : 1 GB ratio).
pub fn bytes_per_paper_mb() -> usize {
    // Computed once from the generator's deterministic output.
    use std::sync::OnceLock;
    static BYTES: OnceLock<usize> = OnceLock::new();
    *BYTES.get_or_init(|| database_bytes(&Dbgen::new(SF_PER_PAPER_GB).generate()) / 1000)
}

/// A prepared experiment scenario.
pub struct Scenario {
    pub db: Database,
    pub inst: Installation,
    pub counts: TpchCounts,
    pub db_bytes: usize,
    pub update_bytes: usize,
    pub tintin: Tintin,
}

/// Load TPC-H at `paper_gb` "paper gigabytes", install `assertions`, and
/// capture a violation-free update batch of `paper_mb` "paper megabytes".
pub fn prepare(paper_gb: f64, paper_mb: f64, assertions: &[&str], seed: u64) -> Scenario {
    prepare_with_config(
        paper_gb,
        paper_mb,
        assertions,
        seed,
        TintinConfig::default(),
    )
}

/// Like [`prepare`] with an explicit configuration (ablations).
pub fn prepare_with_config(
    paper_gb: f64,
    paper_mb: f64,
    assertions: &[&str],
    seed: u64,
    config: TintinConfig,
) -> Scenario {
    let gen = Dbgen::new(SF_PER_PAPER_GB * paper_gb).with_seed(seed);
    let mut db = gen.generate();
    let db_bytes = database_bytes(&db);
    let tintin = Tintin::with_config(TintinConfig {
        // Skip the full initial scan during setup; generated data is
        // consistent by construction (verified by the tpch test suite).
        check_initial_state: false,
        ..config
    });
    let inst = tintin.install(&mut db, assertions).expect("install");
    let update_bytes = (bytes_per_paper_mb() as f64 * paper_mb) as usize;
    let mut ug = UpdateGen::new(gen.counts(), seed.wrapping_add(1));
    ug.valid_batch(&mut db, update_bytes);
    Scenario {
        db,
        inst,
        counts: gen.counts(),
        db_bytes,
        update_bytes,
        tintin,
    }
}

/// Best-of-`iters` incremental check time (the `safeCommit` check phase) on
/// the pending events.
pub fn time_incremental(s: &mut Scenario, iters: usize) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let (violations, stats) = s.tintin.check_pending(&mut s.db, &s.inst).unwrap();
        assert!(
            violations.is_empty(),
            "benchmark batches are violation-free"
        );
        best = best.min(stats.check_time);
    }
    best
}

/// Best-of-`iters` non-incremental check time: the original assertion
/// queries on the updated database (the paper's comparator).
pub fn time_full(s: &Scenario, iters: usize) -> Duration {
    // Apply the pending update to a copy once, then time the queries.
    let mut db = s.db.clone();
    db.normalize_events().unwrap();
    db.apply_pending().unwrap();
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let t0 = Instant::now();
        for a in &s.inst.assertions {
            for q in &a.original_queries {
                let rs = db.query(q).unwrap();
                assert!(rs.is_empty());
            }
        }
        best = best.min(t0.elapsed());
    }
    best
}

/// Format a duration in seconds with sensible precision.
pub fn secs(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 0.0001 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 0.1 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.3}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tintin_tpch::TPCH_ASSERTIONS;

    #[test]
    fn prepare_builds_consistent_scenario() {
        let mut s = prepare(0.1, 0.1, &[TPCH_ASSERTIONS[0].1], 3);
        let (ins, del) = s.db.pending_counts();
        assert!(ins + del > 0, "pending update captured");
        let inc = time_incremental(&mut s, 2);
        let full = time_full(&s, 2);
        assert!(inc > Duration::ZERO && full > Duration::ZERO);
    }

    #[test]
    fn paper_units_are_positive() {
        assert!(bytes_per_paper_mb() > 100);
    }
}
