//! Criterion benchmarks for the paper's evaluation (E1/E2): incremental
//! `safeCommit` checking vs the non-incremental assertion queries.
//!
//! Run with `cargo bench -p tintin-bench --bench paper_experiments`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tintin_bench::prepare;
use tintin_tpch::TPCH_ASSERTIONS;

fn bench_e1(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_atLeastOneLineItem");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for gb in [1.0f64, 2.0] {
        // Incremental check on a pending 1-paper-MB update.
        let mut s = prepare(gb, 1.0, &[TPCH_ASSERTIONS[0].1], 42);
        group.bench_with_input(
            BenchmarkId::new("incremental", format!("{gb}GB_1MB")),
            &gb,
            |b, _| {
                b.iter(|| {
                    let (violations, stats) = s.tintin.check_pending(&mut s.db, &s.inst).unwrap();
                    assert!(violations.is_empty());
                    stats.views_evaluated
                });
            },
        );

        // Non-incremental: the original query on the updated state.
        let mut applied = s.db.clone();
        applied.normalize_events().unwrap();
        applied.apply_pending().unwrap();
        let queries: Vec<_> = s.inst.assertions[0].original_queries.clone();
        group.bench_with_input(
            BenchmarkId::new("full_query", format!("{gb}GB_1MB")),
            &gb,
            |b, _| {
                b.iter(|| {
                    let mut n = 0;
                    for q in &queries {
                        n += applied.query(q).unwrap().len();
                    }
                    assert_eq!(n, 0);
                });
            },
        );
    }
    group.finish();
}

fn bench_e2(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_assertion_suite");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for (name, sql) in TPCH_ASSERTIONS {
        let mut s = prepare(1.0, 1.0, &[sql], 42);
        group.bench_with_input(BenchmarkId::new("incremental", name), name, |b, _| {
            b.iter(|| {
                let (violations, stats) = s.tintin.check_pending(&mut s.db, &s.inst).unwrap();
                assert!(violations.is_empty());
                stats.views_evaluated
            });
        });
    }
    group.finish();
}

fn bench_safe_commit_cycle(c: &mut Criterion) {
    // Full safeCommit round trip (normalize + check + apply + truncate) on
    // small fresh batches, amortized.
    let mut group = c.benchmark_group("safe_commit_cycle");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    let mut s = prepare(1.0, 0.0, &[TPCH_ASSERTIONS[0].1], 42);
    // Drain the (empty) prepared batch.
    s.tintin.safe_commit(&mut s.db, &s.inst).unwrap();
    let counts = s.counts;
    let mut ug = tintin_tpch::UpdateGen::new(counts, 777);
    group.bench_function("insert_order_and_commit", |b| {
        b.iter(|| {
            ug.insert_order(&mut s.db, 2);
            let outcome = s.tintin.safe_commit(&mut s.db, &s.inst).unwrap();
            assert!(outcome.is_committed());
        });
    });
    group.finish();
}

criterion_group!(benches, bench_e1, bench_e2, bench_safe_commit_cycle);
criterion_main!(benches);
