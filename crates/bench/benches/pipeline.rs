//! Criterion benchmarks for the rewriting pipeline itself: parsing,
//! assertion→denial translation, EDC generation, SQL view generation, and
//! the full `install`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tintin::Tintin;
use tintin_logic::{translate_assertion, EdcConfig, EdcGenerator, Registry};
use tintin_sql::parse_statement;
use tintin_tpch::{Dbgen, TPCH_ASSERTIONS};

fn catalog() -> tintin_logic::SchemaCatalog {
    let db = Dbgen::new(0.00005).generate();
    Tintin::catalog_of(&db)
}

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_parse");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for (name, sql) in TPCH_ASSERTIONS.iter().take(3) {
        group.bench_with_input(BenchmarkId::from_parameter(name), sql, |b, sql| {
            b.iter(|| parse_statement(sql).unwrap());
        });
    }
    group.finish();
}

fn bench_translate(c: &mut Criterion) {
    let cat = catalog();
    let mut group = c.benchmark_group("pipeline_translate");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for (name, sql) in TPCH_ASSERTIONS.iter().take(3) {
        let tintin_sql::Statement::CreateAssertion(a) = parse_statement(sql).unwrap() else {
            unreachable!()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &a, |b, a| {
            b.iter(|| {
                let mut reg = Registry::new();
                translate_assertion(&cat, &mut reg, a).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_edc_generation(c: &mut Criterion) {
    let cat = catalog();
    let mut group = c.benchmark_group("pipeline_edc");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for (name, sql) in TPCH_ASSERTIONS.iter().take(3) {
        let tintin_sql::Statement::CreateAssertion(a) = parse_statement(sql).unwrap() else {
            unreachable!()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &a, |b, a| {
            b.iter(|| {
                let mut reg = Registry::new();
                let denials = translate_assertion(&cat, &mut reg, a).unwrap();
                let mut edcs = Vec::new();
                for d in &denials {
                    let mut generator = EdcGenerator::new(&mut reg, &cat, EdcConfig::default());
                    edcs.extend(generator.generate(d).unwrap());
                }
                edcs.len()
            });
        });
    }
    group.finish();
}

fn bench_full_install(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_install");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    // Tiny database: measures rewriting + view creation, not data loading.
    let base = Dbgen::new(0.00005).generate();
    let all: Vec<&str> = TPCH_ASSERTIONS.iter().map(|(_, s)| *s).collect();
    group.bench_function("six_assertions", |b| {
        b.iter(|| {
            let mut db = base.clone();
            let tintin = Tintin::new();
            tintin.install(&mut db, &all).unwrap().view_count()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_parse,
    bench_translate,
    bench_edc_generation,
    bench_full_install
);
criterion_main!(benches);
