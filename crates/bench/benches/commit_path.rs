//! Commit-path benchmark: autocommit-per-statement vs one N-statement
//! transaction with a single `safeCommit` at `COMMIT`.
//!
//! The paper's incremental model prices a check per *commit*, proportional
//! to the update size — so batching N statements into one transaction buys
//! close to an N-fold reduction in checking overhead. This benchmark
//! demonstrates that batching win on a TPC-H database with the running
//! example assertion installed.
//!
//! Run with `cargo bench -p tintin-bench --bench commit_path`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tintin_session::Session;
use tintin_tpch::{suppliers_of_part, Dbgen, TpchCounts, TPCH_ASSERTIONS};

const SCALE: f64 = 0.002; // ~3 k orders, ~12 k lineitems

/// A session over a freshly generated TPC-H database with the running
/// example assertion installed.
fn tpch_session() -> (Session, TpchCounts) {
    let gen = Dbgen::new(SCALE).with_seed(7);
    let counts = gen.counts();
    let mut session = Session::with_database(gen.generate());
    session
        .install(&[TPCH_ASSERTIONS[0].1, TPCH_ASSERTIONS[1].1])
        .expect("install");
    (session, counts)
}

/// `n` single-row INSERT statements, each individually assertion-safe:
/// fresh lineitems attached to existing orders, with valid part/supplier
/// pairs and in-range quantities. Line numbers start high so they never
/// collide with generated data (1–7 lines per order).
fn lineitem_inserts(counts: &TpchCounts, n: usize) -> Vec<String> {
    (0..n as i64)
        .map(|i| {
            let order = 1 + (i % counts.orders);
            let part = 1 + (i % counts.parts);
            let supp = suppliers_of_part(counts, part)
                .next()
                .expect("every part has a supplier");
            format!(
                "INSERT INTO lineitem VALUES ({order}, {line}, {qty}, {part}, {supp})",
                line = 1000 + i,
                qty = 1 + (i % 50),
            )
        })
        .collect()
}

fn bench_commit_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit_path");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for n in [10usize, 100] {
        // Autocommit: every statement is its own transaction, so the
        // normalize + check + apply cycle runs N times.
        let (mut session, counts) = tpch_session();
        let stmts = lineitem_inserts(&counts, n);
        group.bench_with_input(
            BenchmarkId::new("autocommit_per_statement", n),
            &n,
            |b, _| {
                b.iter(|| {
                    for stmt in &stmts {
                        let out = session.execute(stmt).expect("execute");
                        assert!(out[0].is_committed(), "benchmark batch is valid");
                    }
                    // Reset: remove the inserted lineitems outside timing
                    // concerns would be ideal, but deletes are also valid
                    // commits; they keep the database size stable.
                    session
                        .execute("DELETE FROM lineitem WHERE l_linenumber >= 1000")
                        .expect("cleanup");
                });
            },
        );

        // One explicit transaction: the same N statements accumulate as
        // pending events and are checked by a single safeCommit.
        let (mut session, counts) = tpch_session();
        let stmts = lineitem_inserts(&counts, n);
        group.bench_with_input(BenchmarkId::new("single_transaction", n), &n, |b, _| {
            b.iter(|| {
                session.execute("BEGIN").expect("begin");
                for stmt in &stmts {
                    session.execute(stmt).expect("execute");
                }
                let out = session.execute("COMMIT").expect("commit");
                assert!(out[0].is_committed(), "benchmark batch is valid");
                session
                    .execute("DELETE FROM lineitem WHERE l_linenumber >= 1000")
                    .expect("cleanup");
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_commit_path);
criterion_main!(benches);
