//! Criterion microbenchmarks of the engine substrate: insert throughput,
//! index probes, correlated `NOT EXISTS` evaluation and union subqueries —
//! the operations the incremental views are built from.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tintin_engine::{Database, Value};

fn orders_db(n_orders: i64, lines_per_order: i64) -> Database {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE orders (o_orderkey INT PRIMARY KEY, o_custkey INT);
         CREATE TABLE lineitem (
             l_orderkey INT NOT NULL REFERENCES orders,
             l_linenumber INT NOT NULL,
             PRIMARY KEY (l_orderkey, l_linenumber));",
    )
    .unwrap();
    db.insert_direct(
        "orders",
        (1..=n_orders)
            .map(|k| vec![Value::Int(k), Value::Int(k % 100)])
            .collect(),
    )
    .unwrap();
    let mut lines = Vec::new();
    for o in 1..=n_orders {
        for l in 1..=lines_per_order {
            lines.push(vec![Value::Int(o), Value::Int(l)]);
        }
    }
    db.insert_direct("lineitem", lines).unwrap();
    db
}

fn bench_inserts(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_insert");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("insert_1k_rows_pk_indexed", |b| {
        let mut next = 1i64;
        let mut db = orders_db(0, 0);
        b.iter(|| {
            let rows: Vec<Vec<Value>> = (next..next + 1000)
                .map(|k| vec![Value::Int(k), Value::Int(k % 100)])
                .collect();
            next += 1000;
            db.insert_direct("orders", rows).unwrap()
        });
    });
    group.finish();
}

fn bench_point_query(c: &mut Criterion) {
    let db = orders_db(20_000, 3);
    let mut group = c.benchmark_group("engine_point_query");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    group.bench_function("pk_probe", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k % 20_000) + 1;
            let rs = db
                .query_sql(&format!("SELECT * FROM orders WHERE o_orderkey = {k}"))
                .unwrap();
            assert_eq!(rs.len(), 1);
        });
    });
    group.finish();
}

fn bench_correlated_not_exists(c: &mut Criterion) {
    let db = orders_db(20_000, 3);
    let mut group = c.benchmark_group("engine_correlated_not_exists");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("orders_without_lineitems_20k", |b| {
        b.iter(|| {
            let rs = db
                .query_sql(
                    "SELECT o_orderkey FROM orders o WHERE NOT EXISTS (
                         SELECT 1 FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)",
                )
                .unwrap();
            assert!(rs.is_empty());
        });
    });
    group.finish();
}

fn bench_union_exists(c: &mut Criterion) {
    let db = orders_db(20_000, 3);
    let mut group = c.benchmark_group("engine_union_exists");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    // The shape sqlgen emits for new-state checks: EXISTS over a UNION.
    group.bench_function("exists_union_20k_outer", |b| {
        b.iter(|| {
            let rs = db
                .query_sql(
                    "SELECT o_orderkey FROM orders o WHERE NOT EXISTS (
                         SELECT 1 FROM lineitem l WHERE l.l_orderkey = o.o_orderkey
                         UNION ALL
                         SELECT 1 FROM lineitem l2 WHERE l2.l_orderkey = o.o_orderkey
                             AND l2.l_linenumber > 1)",
                )
                .unwrap();
            assert!(rs.is_empty());
        });
    });
    group.finish();
}

fn bench_join(c: &mut Criterion) {
    let db = orders_db(20_000, 3);
    let mut group = c.benchmark_group("engine_join");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("indexed_equijoin_60k_pairs", |b| {
        b.iter(|| {
            let rs = db
                .query_sql(
                    "SELECT o.o_orderkey FROM orders o, lineitem l
                     WHERE o.o_orderkey = l.l_orderkey AND o.o_custkey = 7",
                )
                .unwrap();
            assert!(!rs.is_empty());
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_inserts,
    bench_point_query,
    bench_correlated_not_exists,
    bench_union_exists,
    bench_join
);
criterion_main!(benches);
