//! Property test: printing any AST and re-parsing it yields the same AST.

use proptest::prelude::*;
use tintin_sql::*;

fn ident_strategy() -> impl Strategy<Value = String> {
    // Includes reserved words and mixed case to exercise quoting.
    prop_oneof![
        "[a-z][a-z0-9_]{0,8}",
        Just("select".to_string()),
        Just("from".to_string()),
        Just("Order".to_string()),
        Just("WEIRD name".to_string()),
    ]
}

fn lit_strategy() -> impl Strategy<Value = Lit> {
    prop_oneof![
        any::<i32>().prop_map(|v| Lit::Int(v as i64)),
        (-1000..1000i64).prop_map(|v| Lit::Real(v as f64 / 8.0)),
        "[a-zA-Z' ]{0,10}".prop_map(Lit::Str),
        Just(Lit::Null),
        any::<bool>().prop_map(Lit::Bool),
    ]
}

fn column_strategy() -> impl Strategy<Value = Expr> {
    (proptest::option::of(ident_strategy()), ident_strategy()).prop_map(|(q, n)| {
        Expr::Column(ColumnRef {
            qualifier: q,
            name: n,
        })
    })
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![lit_strategy().prop_map(Expr::Literal), column_strategy()];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::And),
                    Just(BinOp::Or),
                    Just(BinOp::Eq),
                    Just(BinOp::NotEq),
                    Just(BinOp::Lt),
                    Just(BinOp::LtEq),
                    Just(BinOp::Gt),
                    Just(BinOp::GtEq),
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::binary(op, l, r)),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(e)
            }),
            (inner.clone(), any::<bool>()).prop_map(|(e, n)| Expr::IsNull {
                expr: Box::new(e),
                negated: n
            }),
            (
                inner.clone(),
                proptest::collection::vec(inner, 1..3),
                any::<bool>()
            )
                .prop_map(|(p, list, negated)| Expr::InList {
                    expr: Box::new(p),
                    list,
                    negated
                }),
        ]
    })
}

fn select_strategy() -> impl Strategy<Value = Select> {
    (
        any::<bool>(),
        proptest::collection::vec(
            prop_oneof![
                Just(SelectItem::Wildcard),
                ident_strategy().prop_map(SelectItem::QualifiedWildcard),
                (expr_strategy(), proptest::option::of(ident_strategy()))
                    .prop_map(|(e, a)| SelectItem::Expr { expr: e, alias: a }),
            ],
            1..4,
        ),
        proptest::collection::vec(
            (ident_strategy(), proptest::option::of(ident_strategy()))
                .prop_map(|(n, a)| TableRef::Named { name: n, alias: a }),
            0..3,
        ),
        proptest::option::of(expr_strategy()),
    )
        .prop_map(|(distinct, projection, from, selection)| {
            Select::simple(distinct, projection, from, selection)
        })
}

fn query_strategy() -> impl Strategy<Value = Query> {
    proptest::collection::vec((select_strategy(), any::<bool>()), 1..4).prop_map(|parts| {
        let mut iter = parts.into_iter();
        let (first, _) = iter.next().expect("non-empty");
        let mut body = QueryBody::Select(Box::new(first));
        for (sel, all) in iter {
            body = QueryBody::Union {
                left: Box::new(body),
                right: Box::new(QueryBody::Select(Box::new(sel))),
                all,
            };
        }
        Query::new(body)
    })
}

fn tx_statement_strategy() -> impl Strategy<Value = Statement> {
    prop_oneof![
        Just(Statement::Begin),
        Just(Statement::Commit),
        proptest::option::of(ident_strategy()).prop_map(|to| Statement::Rollback { to }),
        ident_strategy().prop_map(|name| Statement::Savepoint { name }),
        ident_strategy().prop_map(|name| Statement::Release { name }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 256,
        .. ProptestConfig::default()
    })]

    #[test]
    fn expr_roundtrips(e in expr_strategy()) {
        let printed = e.to_string();
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse failed for `{printed}`: {err}"));
        prop_assert_eq!(e, reparsed, "printed: {}", printed);
    }

    #[test]
    fn query_roundtrips(q in query_strategy()) {
        let printed = q.to_string();
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|err| panic!("reparse failed for `{printed}`: {err}"));
        prop_assert_eq!(q, reparsed, "printed: {}", printed);
    }

    #[test]
    fn statement_roundtrips_insert_delete_update(
        table in ident_strategy(),
        rows in proptest::collection::vec(
            proptest::collection::vec(lit_strategy().prop_map(Expr::Literal), 1..4), 1..3),
        pred in proptest::option::of(expr_strategy()),
    ) {
        let ins = Statement::Insert(Insert {
            table: table.clone(),
            columns: None,
            source: InsertSource::Values(rows),
        });
        let printed = ins.to_string();
        prop_assert_eq!(&ins, &parse_statement(&printed).unwrap(), "printed: {}", printed);

        let del = Statement::Delete(Delete {
            table: table.clone(),
            alias: None,
            predicate: pred.clone(),
        });
        let printed = del.to_string();
        prop_assert_eq!(&del, &parse_statement(&printed).unwrap(), "printed: {}", printed);

        let upd = Statement::Update(Update {
            table,
            alias: None,
            assignments: vec![("c".to_string(), Expr::Literal(Lit::Int(1)))],
            predicate: pred,
        });
        let printed = upd.to_string();
        prop_assert_eq!(&upd, &parse_statement(&printed).unwrap(), "printed: {}", printed);
    }

    /// `BEGIN` / `COMMIT` / `ROLLBACK [TO]` / `SAVEPOINT` / `RELEASE` print
    /// to SQL that parses back to the same AST, for arbitrary savepoint
    /// names (including reserved words and mixed case, which must be
    /// quoted).
    #[test]
    fn transaction_control_roundtrips(stmt in tx_statement_strategy()) {
        let printed = stmt.to_string();
        let reparsed = parse_statement(&printed)
            .unwrap_or_else(|err| panic!("reparse failed for `{printed}`: {err}"));
        prop_assert_eq!(stmt, reparsed, "printed: {}", printed);
    }
}
