//! Recursive-descent parser for the supported SQL dialect.
//!
//! Grammar outline (statements separated by `;`):
//!
//! ```text
//! statement   := create_table | create_assertion | create_view | create_index
//!              | drop | truncate | insert | delete | query
//! query       := select (UNION [ALL] select)*
//! select      := SELECT [DISTINCT] projection FROM table_refs [WHERE expr]
//! table_ref   := factor ((INNER? JOIN factor [ON expr]) | (CROSS JOIN factor))*
//! expr        := or_expr         -- full precedence tower, see below
//! ```
//!
//! Expression precedence, loosest first: `OR`, `AND`, `NOT`, predicates
//! (comparisons, `[NOT] IN`, `[NOT] BETWEEN`, `IS [NOT] NULL`), `+`/`-`,
//! `*`/`/`, unary `-`. `BETWEEN` is desugared into a conjunction of
//! comparisons at parse time.

use crate::ast::*;
use crate::lexer::{LexError, Lexer, Pos, Token, TokenKind};
use std::fmt;

/// Parse error with source position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
    pub pos: Pos,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            pos: e.pos,
        }
    }
}

type PResult<T> = Result<T, ParseError>;

/// Words that cannot be used as bare (implicit) aliases.
const RESERVED: &[&str] = &[
    "select",
    "from",
    "where",
    "and",
    "or",
    "not",
    "exists",
    "in",
    "union",
    "all",
    "distinct",
    "join",
    "inner",
    "cross",
    "on",
    "as",
    "is",
    "null",
    "between",
    "values",
    "insert",
    "into",
    "delete",
    "create",
    "table",
    "view",
    "index",
    "assertion",
    "check",
    "drop",
    "truncate",
    "primary",
    "key",
    "foreign",
    "references",
    "unique",
    "constraint",
    "order",
    "group",
    "by",
    "having",
    "like",
    "set",
    "update",
    "true",
    "false",
    "asc",
    "desc",
    "limit",
    "begin",
    "commit",
    "rollback",
    "savepoint",
    "release",
    "transaction",
    "work",
    "to",
];

/// Parser over a token stream.
pub struct Parser {
    tokens: Vec<Token>,
    idx: usize,
}

/// Parse a semicolon-separated list of statements.
pub fn parse_statements(src: &str) -> PResult<Vec<Statement>> {
    let mut p = Parser::new(src)?;
    let mut out = Vec::new();
    loop {
        while p.eat_kind(&TokenKind::Semicolon) {}
        if p.at_eof() {
            return Ok(out);
        }
        out.push(p.parse_statement()?);
        if !p.at_eof() {
            p.expect_kind(&TokenKind::Semicolon)?;
        }
    }
}

/// Parse exactly one statement (a trailing semicolon is allowed).
pub fn parse_statement(src: &str) -> PResult<Statement> {
    let mut stmts = parse_statements(src)?;
    match stmts.len() {
        1 => Ok(stmts.remove(0)),
        n => Err(ParseError {
            message: format!("expected exactly one statement, found {n}"),
            pos: Pos::default(),
        }),
    }
}

/// Parse a standalone query.
pub fn parse_query(src: &str) -> PResult<Query> {
    match parse_statement(src)? {
        Statement::Query(q) => Ok(q),
        other => Err(ParseError {
            message: format!("expected a query, found {other:?}"),
            pos: Pos::default(),
        }),
    }
}

/// Parse a standalone expression (useful in tests and the REPL).
pub fn parse_expr(src: &str) -> PResult<Expr> {
    let mut p = Parser::new(src)?;
    let e = p.parse_expr()?;
    p.expect_eof()?;
    Ok(e)
}

impl Parser {
    pub fn new(src: &str) -> PResult<Self> {
        Ok(Parser {
            tokens: Lexer::tokenize(src)?,
            idx: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.idx.min(self.tokens.len() - 1)]
    }

    fn peek_nth(&self, n: usize) -> &Token {
        &self.tokens[(self.idx + n).min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.idx < self.tokens.len() - 1 {
            self.idx += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    fn err<T>(&self, message: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            message: message.into(),
            pos: self.peek().pos,
        })
    }

    fn expect_eof(&self) -> PResult<()> {
        if self.at_eof() {
            Ok(())
        } else {
            self.err(format!("unexpected trailing input '{}'", self.peek().kind))
        }
    }

    /// True if the current token is the given (lower-case) keyword.
    fn at_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw)
    }

    fn at_kw_nth(&self, n: usize, kw: &str) -> bool {
        matches!(&self.peek_nth(n).kind, TokenKind::Ident(s) if s == kw)
    }

    /// Consume the given keyword if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> PResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!(
                "expected keyword '{}', found '{}'",
                kw.to_uppercase(),
                self.peek().kind
            ))
        }
    }

    fn eat_kind(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kind(&mut self, kind: &TokenKind) -> PResult<()> {
        if self.eat_kind(kind) {
            Ok(())
        } else {
            self.err(format!("expected '{kind}', found '{}'", self.peek().kind))
        }
    }

    /// Parse an identifier (quoted or unquoted, keywords allowed where an
    /// identifier is required).
    fn parse_ident(&mut self) -> PResult<Ident> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            TokenKind::QuotedIdent(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found '{other}'")),
        }
    }

    /// Parse a *non-reserved* identifier; used for bare aliases.
    fn try_parse_bare_alias(&mut self) -> Option<Ident> {
        match &self.peek().kind {
            TokenKind::Ident(s) if !RESERVED.contains(&s.as_str()) => {
                let s = s.clone();
                self.bump();
                Some(s)
            }
            TokenKind::QuotedIdent(s) => {
                let s = s.clone();
                self.bump();
                Some(s)
            }
            _ => None,
        }
    }

    fn parse_ident_list(&mut self) -> PResult<Vec<Ident>> {
        let mut out = vec![self.parse_ident()?];
        while self.eat_kind(&TokenKind::Comma) {
            out.push(self.parse_ident()?);
        }
        Ok(out)
    }

    fn parse_paren_ident_list(&mut self) -> PResult<Vec<Ident>> {
        self.expect_kind(&TokenKind::LParen)?;
        let list = self.parse_ident_list()?;
        self.expect_kind(&TokenKind::RParen)?;
        Ok(list)
    }

    // ---------------------------------------------------------- statements

    pub fn parse_statement(&mut self) -> PResult<Statement> {
        if self.at_kw("create") {
            self.parse_create()
        } else if self.at_kw("drop") {
            self.parse_drop()
        } else if self.at_kw("truncate") {
            self.bump();
            self.expect_kw("table")?;
            let name = self.parse_ident()?;
            Ok(Statement::TruncateTable { name })
        } else if self.at_kw("insert") {
            self.parse_insert()
        } else if self.at_kw("delete") {
            self.parse_delete()
        } else if self.at_kw("update") {
            self.parse_update()
        } else if self.at_kw("select") {
            Ok(Statement::Query(self.parse_query()?))
        } else if self.at_kw("begin") {
            self.bump();
            self.eat_tx_noise();
            Ok(Statement::Begin)
        } else if self.at_kw("commit") {
            self.bump();
            self.eat_tx_noise();
            Ok(Statement::Commit)
        } else if self.at_kw("rollback") {
            self.bump();
            self.eat_tx_noise();
            let to = if self.eat_kw("to") {
                self.eat_kw("savepoint");
                Some(self.parse_ident()?)
            } else {
                None
            };
            Ok(Statement::Rollback { to })
        } else if self.at_kw("savepoint") {
            self.bump();
            let name = self.parse_ident()?;
            Ok(Statement::Savepoint { name })
        } else if self.at_kw("release") {
            self.bump();
            self.eat_kw("savepoint");
            let name = self.parse_ident()?;
            Ok(Statement::Release { name })
        } else if self.at_kw("explain") {
            self.bump();
            self.expect_kw("assertion")?;
            let name = self.parse_ident()?;
            Ok(Statement::ExplainAssertion { name })
        } else {
            self.err(format!(
                "expected a statement, found '{}'",
                self.peek().kind
            ))
        }
    }

    /// The optional `TRANSACTION` / `WORK` noise word after `BEGIN`,
    /// `COMMIT` and `ROLLBACK`.
    fn eat_tx_noise(&mut self) {
        if !self.eat_kw("transaction") {
            self.eat_kw("work");
        }
    }

    fn parse_create(&mut self) -> PResult<Statement> {
        self.expect_kw("create")?;
        if self.eat_kw("table") {
            self.parse_create_table().map(Statement::CreateTable)
        } else if self.eat_kw("assertion") {
            let name = self.parse_ident()?;
            self.expect_kw("check")?;
            self.expect_kind(&TokenKind::LParen)?;
            let condition = self.parse_expr()?;
            self.expect_kind(&TokenKind::RParen)?;
            Ok(Statement::CreateAssertion(CreateAssertion {
                name,
                condition,
            }))
        } else if self.eat_kw("view") {
            let name = self.parse_ident()?;
            self.expect_kw("as")?;
            let query = self.parse_query()?;
            Ok(Statement::CreateView(CreateView { name, query }))
        } else if self.at_kw("unique") || self.at_kw("index") {
            let unique = self.eat_kw("unique");
            self.expect_kw("index")?;
            let name = self.parse_ident()?;
            self.expect_kw("on")?;
            let table = self.parse_ident()?;
            let columns = self.parse_paren_ident_list()?;
            Ok(Statement::CreateIndex(CreateIndex {
                name,
                table,
                columns,
                unique,
            }))
        } else {
            self.err("expected TABLE, ASSERTION, VIEW or INDEX after CREATE")
        }
    }

    fn parse_create_table(&mut self) -> PResult<CreateTable> {
        let name = self.parse_ident()?;
        self.expect_kind(&TokenKind::LParen)?;
        let mut columns = Vec::new();
        let mut constraints = Vec::new();
        loop {
            if self.at_kw("primary")
                || self.at_kw("foreign")
                || self.at_kw("unique") && self.peek_nth(1).kind == TokenKind::LParen
                || self.at_kw("check")
                || self.at_kw("constraint")
            {
                constraints.push(self.parse_table_constraint(&mut columns)?);
            } else {
                self.parse_column_def(&mut columns, &mut constraints)?;
            }
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_kind(&TokenKind::RParen)?;
        Ok(CreateTable {
            name,
            columns,
            constraints,
        })
    }

    fn parse_table_constraint(&mut self, _columns: &mut [ColumnDef]) -> PResult<TableConstraint> {
        if self.eat_kw("constraint") {
            // Named constraints: the name is parsed and discarded.
            let _ = self.parse_ident()?;
        }
        if self.eat_kw("primary") {
            self.expect_kw("key")?;
            Ok(TableConstraint::PrimaryKey(self.parse_paren_ident_list()?))
        } else if self.eat_kw("unique") {
            Ok(TableConstraint::Unique(self.parse_paren_ident_list()?))
        } else if self.eat_kw("foreign") {
            self.expect_kw("key")?;
            let columns = self.parse_paren_ident_list()?;
            self.expect_kw("references")?;
            let ref_table = self.parse_ident()?;
            let ref_columns = if self.peek().kind == TokenKind::LParen {
                self.parse_paren_ident_list()?
            } else {
                Vec::new()
            };
            Ok(TableConstraint::ForeignKey {
                columns,
                ref_table,
                ref_columns,
            })
        } else if self.eat_kw("check") {
            self.expect_kind(&TokenKind::LParen)?;
            let e = self.parse_expr()?;
            self.expect_kind(&TokenKind::RParen)?;
            Ok(TableConstraint::Check(e))
        } else {
            self.err("expected a table constraint")
        }
    }

    fn parse_column_def(
        &mut self,
        columns: &mut Vec<ColumnDef>,
        constraints: &mut Vec<TableConstraint>,
    ) -> PResult<()> {
        let name = self.parse_ident()?;
        let ty = self.parse_type_name()?;
        let mut def = ColumnDef {
            name: name.clone(),
            ty,
            not_null: false,
            primary_key: false,
            unique: false,
        };
        loop {
            if self.eat_kw("not") {
                self.expect_kw("null")?;
                def.not_null = true;
            } else if self.eat_kw("primary") {
                self.expect_kw("key")?;
                def.primary_key = true;
                def.not_null = true;
            } else if self.eat_kw("unique") {
                def.unique = true;
            } else if self.eat_kw("references") {
                let ref_table = self.parse_ident()?;
                let ref_columns = if self.peek().kind == TokenKind::LParen {
                    self.parse_paren_ident_list()?
                } else {
                    Vec::new()
                };
                constraints.push(TableConstraint::ForeignKey {
                    columns: vec![name.clone()],
                    ref_table,
                    ref_columns,
                });
            } else {
                break;
            }
        }
        columns.push(def);
        Ok(())
    }

    fn parse_type_name(&mut self) -> PResult<TypeName> {
        let base = self.parse_ident()?;
        let ty = match base.as_str() {
            "int" | "integer" | "bigint" | "smallint" | "tinyint" => TypeName::Int,
            "real" | "float" | "decimal" | "numeric" => TypeName::Real,
            "double" => {
                self.eat_kw("precision");
                TypeName::Real
            }
            "varchar" | "char" | "text" | "string" | "date" => TypeName::Text,
            "character" => {
                self.eat_kw("varying");
                TypeName::Text
            }
            other => return self.err(format!("unknown type name '{other}'")),
        };
        // Optional length / precision arguments: VARCHAR(25), DECIMAL(15,2).
        if self.eat_kind(&TokenKind::LParen) {
            loop {
                match self.peek().kind {
                    TokenKind::Int(_) => {
                        self.bump();
                    }
                    _ => return self.err("expected an integer in type arguments"),
                }
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(&TokenKind::RParen)?;
        }
        Ok(ty)
    }

    fn parse_drop(&mut self) -> PResult<Statement> {
        self.expect_kw("drop")?;
        if self.eat_kw("table") {
            let if_exists = self.parse_if_exists()?;
            let name = self.parse_ident()?;
            Ok(Statement::DropTable { name, if_exists })
        } else if self.eat_kw("view") {
            let if_exists = self.parse_if_exists()?;
            let name = self.parse_ident()?;
            Ok(Statement::DropView { name, if_exists })
        } else if self.eat_kw("index") {
            let name = self.parse_ident()?;
            self.expect_kw("on")?;
            let table = self.parse_ident()?;
            Ok(Statement::DropIndex { name, table })
        } else if self.eat_kw("assertion") {
            let name = self.parse_ident()?;
            Ok(Statement::DropAssertion { name })
        } else {
            self.err("expected TABLE, VIEW, INDEX or ASSERTION after DROP")
        }
    }

    fn parse_if_exists(&mut self) -> PResult<bool> {
        if self.eat_kw("if") {
            self.expect_kw("exists")?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn parse_insert(&mut self) -> PResult<Statement> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let table = self.parse_ident()?;
        let columns = if self.peek().kind == TokenKind::LParen && !self.at_kw_nth(1, "select") {
            Some(self.parse_paren_ident_list()?)
        } else {
            None
        };
        let source = if self.eat_kw("values") {
            let mut rows = Vec::new();
            loop {
                self.expect_kind(&TokenKind::LParen)?;
                let mut row = vec![self.parse_expr()?];
                while self.eat_kind(&TokenKind::Comma) {
                    row.push(self.parse_expr()?);
                }
                self.expect_kind(&TokenKind::RParen)?;
                rows.push(row);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else if self.at_kw("select") || self.peek().kind == TokenKind::LParen {
            let had_paren = self.eat_kind(&TokenKind::LParen);
            let q = self.parse_query()?;
            if had_paren {
                self.expect_kind(&TokenKind::RParen)?;
            }
            InsertSource::Query(q)
        } else {
            return self.err("expected VALUES or SELECT in INSERT");
        };
        Ok(Statement::Insert(Insert {
            table,
            columns,
            source,
        }))
    }

    fn parse_delete(&mut self) -> PResult<Statement> {
        self.expect_kw("delete")?;
        self.expect_kw("from")?;
        let table = self.parse_ident()?;
        let alias = if self.eat_kw("as") {
            Some(self.parse_ident()?)
        } else {
            self.try_parse_bare_alias()
        };
        let predicate = if self.eat_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Delete(Delete {
            table,
            alias,
            predicate,
        }))
    }

    fn parse_update(&mut self) -> PResult<Statement> {
        self.expect_kw("update")?;
        let table = self.parse_ident()?;
        let alias = if self.eat_kw("as") {
            Some(self.parse_ident()?)
        } else {
            self.try_parse_bare_alias()
        };
        self.expect_kw("set")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.parse_ident()?;
            self.expect_kind(&TokenKind::Eq)?;
            let value = self.parse_expr()?;
            assignments.push((col, value));
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        let predicate = if self.eat_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Update(Update {
            table,
            alias,
            assignments,
            predicate,
        }))
    }

    // --------------------------------------------------------------- query

    pub fn parse_query(&mut self) -> PResult<Query> {
        let mut body = self.parse_query_atom()?;
        while self.at_kw("union") {
            self.bump();
            let all = self.eat_kw("all");
            let right = self.parse_query_atom()?;
            body = QueryBody::Union {
                left: Box::new(body),
                right: Box::new(right),
                all,
            };
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.peek().kind {
                TokenKind::Int(v) if v >= 0 => {
                    self.bump();
                    Some(v as u64)
                }
                _ => return self.err("expected a non-negative integer after LIMIT"),
            }
        } else {
            None
        };
        Ok(Query {
            body,
            order_by,
            limit,
        })
    }

    /// A `SELECT` block or a parenthesized query body.
    fn parse_query_atom(&mut self) -> PResult<QueryBody> {
        if self.eat_kind(&TokenKind::LParen) {
            let q = self.parse_query()?;
            self.expect_kind(&TokenKind::RParen)?;
            Ok(q.body)
        } else {
            Ok(QueryBody::Select(Box::new(self.parse_select()?)))
        }
    }

    fn parse_select(&mut self) -> PResult<Select> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        if distinct {
            // Allow both `DISTINCT` and `ALL` (the default) keywords.
        } else {
            self.eat_kw("all");
        }
        let mut projection = vec![self.parse_select_item()?];
        while self.eat_kind(&TokenKind::Comma) {
            projection.push(self.parse_select_item()?);
        }
        let mut from = Vec::new();
        if self.eat_kw("from") {
            from.push(self.parse_table_ref()?);
            while self.eat_kind(&TokenKind::Comma) {
                from.push(self.parse_table_ref()?);
            }
        }
        let selection = if self.eat_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.at_kw("group") {
            self.bump();
            self.expect_kw("by")?;
            group_by.push(self.parse_expr()?);
            while self.eat_kind(&TokenKind::Comma) {
                group_by.push(self.parse_expr()?);
            }
        }
        let having = if self.eat_kw("having") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Select {
            distinct,
            projection,
            from,
            selection,
            group_by,
            having,
        })
    }

    fn parse_select_item(&mut self) -> PResult<SelectItem> {
        if self.eat_kind(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*` (quoted or unquoted alias)
        let qualifier = match &self.peek().kind {
            TokenKind::Ident(q) | TokenKind::QuotedIdent(q) => Some(q.clone()),
            _ => None,
        };
        if let Some(q) = qualifier {
            if self.peek_nth(1).kind == TokenKind::Dot && self.peek_nth(2).kind == TokenKind::Star {
                self.bump();
                self.bump();
                self.bump();
                return Ok(SelectItem::QualifiedWildcard(q));
            }
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_kw("as") {
            Some(self.parse_ident()?)
        } else {
            self.try_parse_bare_alias()
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_table_ref(&mut self) -> PResult<TableRef> {
        let mut left = self.parse_table_factor()?;
        loop {
            if self.at_kw("cross") {
                self.bump();
                self.expect_kw("join")?;
                let right = self.parse_table_factor()?;
                left = TableRef::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    kind: JoinKind::Cross,
                    on: None,
                };
            } else if self.at_kw("inner") || self.at_kw("join") {
                self.eat_kw("inner");
                self.expect_kw("join")?;
                let right = self.parse_table_factor()?;
                let on = if self.eat_kw("on") {
                    Some(self.parse_expr()?)
                } else {
                    None
                };
                left = TableRef::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    kind: JoinKind::Inner,
                    on,
                };
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_table_factor(&mut self) -> PResult<TableRef> {
        if self.eat_kind(&TokenKind::LParen) {
            // Either a parenthesized join or a derived table.
            if self.at_kw("select") {
                let query = self.parse_query()?;
                self.expect_kind(&TokenKind::RParen)?;
                self.eat_kw("as");
                let alias = match self.try_parse_bare_alias() {
                    Some(a) => a,
                    None => return self.err("derived table requires an alias"),
                };
                return Ok(TableRef::Subquery {
                    query: Box::new(query),
                    alias,
                });
            }
            let inner = self.parse_table_ref()?;
            self.expect_kind(&TokenKind::RParen)?;
            return Ok(inner);
        }
        let name = self.parse_ident()?;
        let alias = if self.eat_kw("as") {
            Some(self.parse_ident()?)
        } else {
            self.try_parse_bare_alias()
        };
        Ok(TableRef::Named { name, alias })
    }

    // --------------------------------------------------------- expressions

    pub fn parse_expr(&mut self) -> PResult<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> PResult<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("or") {
            let right = self.parse_and()?;
            left = Expr::binary(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> PResult<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("and") {
            let right = self.parse_not()?;
            left = Expr::binary(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> PResult<Expr> {
        // `NOT EXISTS` / `NOT IN` are handled at the predicate level so that
        // they produce dedicated AST nodes; a leading NOT here covers
        // `NOT (expr)` and `NOT col = 3`.
        if self.at_kw("not") && !self.at_kw_nth(1, "exists") {
            self.bump();
            let inner = self.parse_not()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(inner),
            });
        }
        self.parse_predicate()
    }

    fn parse_predicate(&mut self) -> PResult<Expr> {
        if self.at_kw("exists") || (self.at_kw("not") && self.at_kw_nth(1, "exists")) {
            let negated = self.eat_kw("not");
            self.expect_kw("exists")?;
            self.expect_kind(&TokenKind::LParen)?;
            let query = self.parse_query()?;
            self.expect_kind(&TokenKind::RParen)?;
            return Ok(Expr::Exists {
                query: Box::new(query),
                negated,
            });
        }
        let left = self.parse_additive()?;
        // Comparison chain (non-associative: a = b).
        let op = match self.peek().kind {
            TokenKind::Eq => Some(BinOp::Eq),
            TokenKind::NotEq => Some(BinOp::NotEq),
            TokenKind::Lt => Some(BinOp::Lt),
            TokenKind::LtEq => Some(BinOp::LtEq),
            TokenKind::Gt => Some(BinOp::Gt),
            TokenKind::GtEq => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.parse_additive()?;
            return Ok(Expr::binary(op, left, right));
        }
        if self.at_kw("is") {
            self.bump();
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        if self.at_kw("in") || (self.at_kw("not") && self.at_kw_nth(1, "in")) {
            let negated = self.eat_kw("not");
            self.expect_kw("in")?;
            self.expect_kind(&TokenKind::LParen)?;
            if self.at_kw("select") {
                let query = self.parse_query()?;
                self.expect_kind(&TokenKind::RParen)?;
                // `(a, b) IN (SELECT …)` is parsed as a tuple by
                // parse_primary; flatten it here.
                let exprs = match left {
                    Expr::Tuple(parts) => parts,
                    e => vec![e],
                };
                return Ok(Expr::InSubquery {
                    exprs,
                    query: Box::new(query),
                    negated,
                });
            }
            let mut list = vec![self.parse_expr()?];
            while self.eat_kind(&TokenKind::Comma) {
                list.push(self.parse_expr()?);
            }
            self.expect_kind(&TokenKind::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.at_kw("between") || (self.at_kw("not") && self.at_kw_nth(1, "between")) {
            let negated = self.eat_kw("not");
            self.expect_kw("between")?;
            let low = self.parse_additive()?;
            self.expect_kw("and")?;
            let high = self.parse_additive()?;
            // Desugar: x BETWEEN a AND b  →  x >= a AND x <= b.
            let between = Expr::binary(
                BinOp::And,
                Expr::binary(BinOp::GtEq, left.clone(), low),
                Expr::binary(BinOp::LtEq, left, high),
            );
            return Ok(if negated {
                Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(between),
                }
            } else {
                between
            });
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> PResult<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.parse_multiplicative()?;
            left = Expr::binary(op, left, right);
        }
    }

    fn parse_multiplicative(&mut self) -> PResult<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.parse_unary()?;
            left = Expr::binary(op, left, right);
        }
    }

    fn parse_unary(&mut self) -> PResult<Expr> {
        if self.eat_kind(&TokenKind::Minus) {
            // Fold negation into numeric literals for cleaner ASTs.
            match self.peek().kind {
                TokenKind::Int(v) => {
                    self.bump();
                    return Ok(Expr::Literal(Lit::Int(-v)));
                }
                TokenKind::Real(v) => {
                    self.bump();
                    return Ok(Expr::Literal(Lit::Real(-v)));
                }
                _ => {}
            }
            let inner = self.parse_unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(inner),
            });
        }
        if self.eat_kind(&TokenKind::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> PResult<Expr> {
        match self.peek().kind.clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Literal(Lit::Int(v)))
            }
            TokenKind::Real(v) => {
                self.bump();
                Ok(Expr::Literal(Lit::Real(v)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Lit::Str(s)))
            }
            TokenKind::LParen => {
                self.bump();
                let first = self.parse_expr()?;
                if self.eat_kind(&TokenKind::Comma) {
                    // Row value constructor: (a, b, …) — only valid before IN.
                    let mut parts = vec![first];
                    loop {
                        parts.push(self.parse_expr()?);
                        if !self.eat_kind(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect_kind(&TokenKind::RParen)?;
                    return Ok(Expr::Tuple(parts));
                }
                self.expect_kind(&TokenKind::RParen)?;
                Ok(first)
            }
            TokenKind::Ident(ref s) => {
                match s.as_str() {
                    "null" => {
                        self.bump();
                        return Ok(Expr::Literal(Lit::Null));
                    }
                    "true" => {
                        self.bump();
                        return Ok(Expr::Literal(Lit::Bool(true)));
                    }
                    "false" => {
                        self.bump();
                        return Ok(Expr::Literal(Lit::Bool(false)));
                    }
                    _ => {}
                }
                let first = self.parse_ident()?;
                if self.peek().kind == TokenKind::LParen {
                    return self.parse_func_call(first);
                }
                if self.eat_kind(&TokenKind::Dot) {
                    let name = self.parse_ident()?;
                    Ok(Expr::Column(ColumnRef {
                        qualifier: Some(first),
                        name,
                    }))
                } else {
                    Ok(Expr::Column(ColumnRef {
                        qualifier: None,
                        name: first,
                    }))
                }
            }
            TokenKind::QuotedIdent(_) => {
                let first = self.parse_ident()?;
                if self.eat_kind(&TokenKind::Dot) {
                    let name = self.parse_ident()?;
                    Ok(Expr::Column(ColumnRef {
                        qualifier: Some(first),
                        name,
                    }))
                } else {
                    Ok(Expr::Column(ColumnRef {
                        qualifier: None,
                        name: first,
                    }))
                }
            }
            other => self.err(format!("expected an expression, found '{other}'")),
        }
    }
}

impl Parser {
    /// Parse a function call after its name: `( * | [DISTINCT] expr, … )`.
    fn parse_func_call(&mut self, name: Ident) -> PResult<Expr> {
        self.expect_kind(&TokenKind::LParen)?;
        if self.eat_kind(&TokenKind::Star) {
            self.expect_kind(&TokenKind::RParen)?;
            return Ok(Expr::Func {
                name,
                distinct: false,
                args: FuncArgs::Star,
            });
        }
        let distinct = self.eat_kw("distinct");
        let mut args = Vec::new();
        if self.peek().kind != TokenKind::RParen {
            args.push(self.parse_expr()?);
            while self.eat_kind(&TokenKind::Comma) {
                args.push(self.parse_expr()?);
            }
        }
        self.expect_kind(&TokenKind::RParen)?;
        Ok(Expr::Func {
            name,
            distinct,
            args: FuncArgs::List(args),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_running_example() {
        let sql = "CREATE ASSERTION atLeastOneLineItem CHECK(
            NOT EXISTS(
                SELECT * FROM ORDERS AS o
                WHERE NOT EXISTS (
                    SELECT * FROM LINEITEM AS l
                    WHERE l.L_ORDERKEY = o.O_ORDERKEY)));";
        let stmt = parse_statement(sql).unwrap();
        let Statement::CreateAssertion(a) = stmt else {
            panic!("expected assertion")
        };
        assert_eq!(a.name, "atleastonelineitem");
        let Expr::Exists {
            negated: true,
            query,
        } = &a.condition
        else {
            panic!("expected NOT EXISTS, got {:?}", a.condition)
        };
        let selects = query.selects();
        assert_eq!(selects.len(), 1);
        assert_eq!(selects[0].from.len(), 1);
    }

    #[test]
    fn parses_create_table_with_constraints() {
        let sql = "CREATE TABLE lineitem (
            l_orderkey INTEGER NOT NULL REFERENCES orders(o_orderkey),
            l_linenumber INTEGER NOT NULL,
            l_quantity INTEGER,
            PRIMARY KEY (l_orderkey, l_linenumber))";
        let Statement::CreateTable(t) = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert_eq!(t.name, "lineitem");
        assert_eq!(t.columns.len(), 3);
        assert_eq!(t.constraints.len(), 2); // FK + PK
        assert!(t
            .constraints
            .iter()
            .any(|c| matches!(c, TableConstraint::PrimaryKey(pk) if pk.len() == 2)));
    }

    #[test]
    fn parses_type_zoo() {
        let sql = "CREATE TABLE t (a INT, b BIGINT, c DECIMAL(15,2), d DOUBLE PRECISION,
                   e VARCHAR(25), f CHAR(1), g DATE, h CHARACTER VARYING(10))";
        let Statement::CreateTable(t) = parse_statement(sql).unwrap() else {
            panic!()
        };
        let tys: Vec<TypeName> = t.columns.iter().map(|c| c.ty).collect();
        assert_eq!(
            tys,
            vec![
                TypeName::Int,
                TypeName::Int,
                TypeName::Real,
                TypeName::Real,
                TypeName::Text,
                TypeName::Text,
                TypeName::Text,
                TypeName::Text,
            ]
        );
    }

    #[test]
    fn parses_insert_values_multi_row() {
        let sql = "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')";
        let Statement::Insert(i) = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert_eq!(
            i.columns.as_deref(),
            Some(&["a".to_string(), "b".to_string()][..])
        );
        let InsertSource::Values(rows) = i.source else {
            panic!()
        };
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn parses_insert_select() {
        let sql = "INSERT INTO t SELECT * FROM s WHERE s.a > 3";
        let Statement::Insert(i) = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert!(matches!(i.source, InsertSource::Query(_)));
    }

    #[test]
    fn parses_delete_with_alias() {
        let sql = "DELETE FROM lineitem l WHERE l.l_orderkey = 7";
        let Statement::Delete(d) = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert_eq!(d.alias.as_deref(), Some("l"));
        assert!(d.predicate.is_some());
    }

    #[test]
    fn parses_union_and_union_all() {
        let q =
            parse_query("SELECT a FROM t UNION SELECT b FROM s UNION ALL SELECT c FROM u").unwrap();
        let QueryBody::Union {
            all: true, left, ..
        } = &q.body
        else {
            panic!()
        };
        assert!(matches!(**left, QueryBody::Union { all: false, .. }));
    }

    #[test]
    fn parses_joins() {
        let q = parse_query(
            "SELECT * FROM a JOIN b ON a.x = b.x CROSS JOIN c INNER JOIN d ON d.y = c.y",
        )
        .unwrap();
        let s = q.selects()[0];
        assert_eq!(s.from.len(), 1);
        assert!(matches!(s.from[0], TableRef::Join { .. }));
    }

    #[test]
    fn parses_derived_table() {
        let q = parse_query("SELECT * FROM (SELECT a FROM t) AS sub WHERE sub.a = 1").unwrap();
        let s = q.selects()[0];
        assert!(matches!(s.from[0], TableRef::Subquery { .. }));
    }

    #[test]
    fn parses_in_subquery_and_not_in() {
        let e = parse_expr("a IN (SELECT x FROM t)").unwrap();
        assert!(matches!(e, Expr::InSubquery { negated: false, .. }));
        let e = parse_expr("a NOT IN (SELECT x FROM t)").unwrap();
        assert!(matches!(e, Expr::InSubquery { negated: true, .. }));
    }

    #[test]
    fn parses_row_in_subquery() {
        let e = parse_expr("(a, b) IN (SELECT x, y FROM t)").unwrap();
        let Expr::InSubquery { exprs, .. } = e else {
            panic!()
        };
        assert_eq!(exprs.len(), 2);
    }

    #[test]
    fn parses_in_list() {
        let e = parse_expr("a IN (1, 2, 3)").unwrap();
        let Expr::InList { list, negated, .. } = e else {
            panic!()
        };
        assert!(!negated);
        assert_eq!(list.len(), 3);
    }

    #[test]
    fn desugars_between() {
        let e = parse_expr("a BETWEEN 1 AND 5").unwrap();
        let parts = e.conjuncts();
        assert_eq!(parts.len(), 2);
        assert!(matches!(
            parts[0],
            Expr::Binary {
                op: BinOp::GtEq,
                ..
            }
        ));
    }

    #[test]
    fn not_between_negates() {
        let e = parse_expr("a NOT BETWEEN 1 AND 5").unwrap();
        assert!(matches!(e, Expr::Unary { op: UnOp::Not, .. }));
    }

    #[test]
    fn parses_is_null_and_is_not_null() {
        assert!(matches!(
            parse_expr("a IS NULL").unwrap(),
            Expr::IsNull { negated: false, .. }
        ));
        assert!(matches!(
            parse_expr("a IS NOT NULL").unwrap(),
            Expr::IsNull { negated: true, .. }
        ));
    }

    #[test]
    fn precedence_or_and_not() {
        // NOT a = 1 AND b = 2 OR c = 3  →  ((NOT (a=1)) AND (b=2)) OR (c=3)
        let e = parse_expr("NOT a = 1 AND b = 2 OR c = 3").unwrap();
        let Expr::Binary {
            op: BinOp::Or,
            left,
            ..
        } = e
        else {
            panic!()
        };
        let Expr::Binary {
            op: BinOp::And,
            left: l2,
            ..
        } = *left
        else {
            panic!()
        };
        assert!(matches!(*l2, Expr::Unary { op: UnOp::Not, .. }));
    }

    #[test]
    fn arithmetic_precedence() {
        // 1 + 2 * 3 = 7  →  (1 + (2*3)) = 7
        let e = parse_expr("1 + 2 * 3 = 7").unwrap();
        let Expr::Binary {
            op: BinOp::Eq,
            left,
            ..
        } = e
        else {
            panic!()
        };
        let Expr::Binary {
            op: BinOp::Add,
            right,
            ..
        } = *left
        else {
            panic!()
        };
        assert!(matches!(*right, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn negative_literal_folding() {
        assert_eq!(parse_expr("-3").unwrap(), Expr::Literal(Lit::Int(-3)));
        assert_eq!(parse_expr("-3.5").unwrap(), Expr::Literal(Lit::Real(-3.5)));
    }

    #[test]
    fn parses_multiple_statements() {
        let stmts =
            parse_statements("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_statement("SELECT * FROM t garbage garbage").is_err());
    }

    #[test]
    fn rejects_missing_from_alias_for_derived_table() {
        assert!(parse_query("SELECT * FROM (SELECT a FROM t)").is_err());
    }

    #[test]
    fn keywords_are_not_bare_aliases() {
        // `WHERE` must not be eaten as an alias of `t`.
        let q = parse_query("SELECT * FROM t WHERE a = 1").unwrap();
        let s = q.selects()[0];
        let TableRef::Named { alias, .. } = &s.from[0] else {
            panic!()
        };
        assert!(alias.is_none());
        assert!(s.selection.is_some());
    }

    #[test]
    fn parses_truncate_and_drop() {
        assert!(matches!(
            parse_statement("TRUNCATE TABLE t").unwrap(),
            Statement::TruncateTable { .. }
        ));
        assert!(matches!(
            parse_statement("DROP TABLE IF EXISTS t").unwrap(),
            Statement::DropTable {
                if_exists: true,
                ..
            }
        ));
        assert!(matches!(
            parse_statement("DROP VIEW v").unwrap(),
            Statement::DropView {
                if_exists: false,
                ..
            }
        ));
        assert!(matches!(
            parse_statement("DROP ASSERTION a").unwrap(),
            Statement::DropAssertion { .. }
        ));
        let Statement::DropIndex { name, table } = parse_statement("DROP INDEX i ON t").unwrap()
        else {
            panic!()
        };
        assert_eq!(name, "i");
        assert_eq!(table, "t");
    }

    #[test]
    fn parses_explain_assertion() {
        assert_eq!(
            parse_statement("EXPLAIN ASSERTION budget").unwrap(),
            Statement::ExplainAssertion {
                name: "budget".into()
            }
        );
        // Round-trips through the printer and survives lower-casing.
        assert_eq!(
            parse_statement("explain assertion budget")
                .unwrap()
                .to_string(),
            "EXPLAIN ASSERTION budget"
        );
    }

    #[test]
    fn parses_create_index() {
        let Statement::CreateIndex(ix) =
            parse_statement("CREATE UNIQUE INDEX i ON t (a, b)").unwrap()
        else {
            panic!()
        };
        assert!(ix.unique);
        assert_eq!(ix.columns.len(), 2);
    }

    #[test]
    fn parses_transaction_control() {
        assert_eq!(parse_statement("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(
            parse_statement("BEGIN TRANSACTION").unwrap(),
            Statement::Begin
        );
        assert_eq!(parse_statement("begin work").unwrap(), Statement::Begin);
        assert_eq!(parse_statement("COMMIT").unwrap(), Statement::Commit);
        assert_eq!(parse_statement("COMMIT WORK").unwrap(), Statement::Commit);
        assert_eq!(
            parse_statement("ROLLBACK").unwrap(),
            Statement::Rollback { to: None }
        );
        assert_eq!(
            parse_statement("ROLLBACK TO sp1").unwrap(),
            Statement::Rollback {
                to: Some("sp1".into())
            }
        );
        assert_eq!(
            parse_statement("ROLLBACK WORK TO SAVEPOINT sp1").unwrap(),
            Statement::Rollback {
                to: Some("sp1".into())
            }
        );
        assert_eq!(
            parse_statement("SAVEPOINT s").unwrap(),
            Statement::Savepoint { name: "s".into() }
        );
        assert_eq!(
            parse_statement("RELEASE SAVEPOINT s").unwrap(),
            Statement::Release { name: "s".into() }
        );
        assert_eq!(
            parse_statement("RELEASE s").unwrap(),
            Statement::Release { name: "s".into() }
        );
    }

    #[test]
    fn parses_transaction_script() {
        let stmts = parse_statements(
            "BEGIN; INSERT INTO t VALUES (1); SAVEPOINT s1;
             DELETE FROM t WHERE a = 1; ROLLBACK TO s1; COMMIT;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 6);
        assert!(stmts[0].is_transaction_control());
        assert!(!stmts[1].is_transaction_control());
        assert!(stmts[5].is_transaction_control());
    }

    #[test]
    fn quoted_savepoint_names_preserve_case() {
        assert_eq!(
            parse_statement("SAVEPOINT \"Sp One\"").unwrap(),
            Statement::Savepoint {
                name: "Sp One".into()
            }
        );
    }

    #[test]
    fn parses_select_projection_aliases() {
        let q = parse_query("SELECT a AS x, t.b y, t.*, * FROM t").unwrap();
        let s = q.selects()[0];
        assert_eq!(s.projection.len(), 4);
        assert!(matches!(
            &s.projection[0],
            SelectItem::Expr { alias: Some(a), .. } if a == "x"
        ));
        assert!(matches!(
            &s.projection[1],
            SelectItem::Expr { alias: Some(a), .. } if a == "y"
        ));
        assert!(matches!(
            &s.projection[2],
            SelectItem::QualifiedWildcard(q) if q == "t"
        ));
        assert!(matches!(&s.projection[3], SelectItem::Wildcard));
    }
}
