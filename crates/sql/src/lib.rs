//! SQL front-end for the TINTIN reproduction.
//!
//! This crate provides a hand-written lexer, an abstract syntax tree, a
//! recursive-descent parser and a pretty-printer for the SQL dialect used
//! throughout the project:
//!
//! * **DDL**: `CREATE TABLE`, `CREATE ASSERTION`, `CREATE VIEW`,
//!   `CREATE INDEX`, `DROP …`, `TRUNCATE TABLE`;
//! * **DML**: `INSERT INTO … VALUES`, `INSERT INTO … SELECT`, `DELETE FROM`,
//!   `UPDATE … SET`;
//! * **transaction control**: `BEGIN [TRANSACTION]`, `COMMIT`, `ROLLBACK`,
//!   `SAVEPOINT <name>`, `ROLLBACK TO [SAVEPOINT] <name>`,
//!   `RELEASE [SAVEPOINT] <name>` — executed by the `tintin-session` crate,
//!   where `COMMIT` runs the paper's `safeCommit` procedure;
//! * **queries**: the relational-algebra fragment accepted by the TINTIN
//!   paper — selection, projection, join, `EXISTS` / `IN`, `NOT EXISTS` /
//!   `NOT IN`, `UNION [ALL]` — plus arithmetic and `BETWEEN` for general
//!   engine queries (the assertion translator in `tintin-logic` enforces the
//!   paper's stricter fragment).
//!
//! The printer emits SQL that parses back to the same AST, which the test
//! suite verifies with round-trip property tests.
//!
//! # Example
//!
//! ```
//! use tintin_sql::parse_statements;
//!
//! let stmts = parse_statements(
//!     "CREATE ASSERTION atLeastOneLineItem CHECK (NOT EXISTS (
//!          SELECT * FROM orders AS o
//!          WHERE NOT EXISTS (SELECT * FROM lineitem AS l
//!                            WHERE l.l_orderkey = o.o_orderkey)));",
//! )
//! .unwrap();
//! assert_eq!(stmts.len(), 1);
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod printer;

pub use ast::*;
pub use lexer::{Lexer, Token, TokenKind};
pub use parser::{parse_expr, parse_query, parse_statement, parse_statements, ParseError, Parser};

/// Result alias used by the parsing entry points.
pub type Result<T> = std::result::Result<T, ParseError>;
