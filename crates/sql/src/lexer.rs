//! SQL tokenizer.
//!
//! Unquoted identifiers are normalized to lowercase (SQL identifiers are
//! case-insensitive); `"double-quoted"` and `[bracketed]` (SQL Server style)
//! identifiers preserve case. Keywords are recognized case-insensitively.
//! `--` line comments and `/* … */` block comments are skipped.

use std::fmt;

/// Source position of a token, 1-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    pub line: u32,
    pub col: u32,
}

impl Default for Pos {
    fn default() -> Self {
        Pos { line: 1, col: 1 }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Lexical token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier (lower-cased if unquoted) — may still be a keyword; the
    /// parser matches keywords by string.
    Ident(String),
    /// Quoted identifier, case preserved.
    QuotedIdent(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Real(f64),
    /// String literal with SQL `''` escapes already resolved.
    Str(String),
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
    Comma,
    Dot,
    Semicolon,
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::QuotedIdent(s) => write!(f, "\"{s}\""),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Real(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::Eq => write!(f, "="),
            TokenKind::NotEq => write!(f, "<>"),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::LtEq => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::GtEq => write!(f, ">="),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token together with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub pos: Pos,
}

/// Error produced while tokenizing.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub message: String,
    pub pos: Pos,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Streaming tokenizer over a SQL source string.
pub struct Lexer<'a> {
    src: &'a [u8],
    idx: usize,
    pos: Pos,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            idx: 0,
            pos: Pos::default(),
        }
    }

    /// Tokenize the whole input, appending a final [`TokenKind::Eof`].
    pub fn tokenize(src: &'a str) -> Result<Vec<Token>, LexError> {
        let mut lex = Lexer::new(src);
        let mut out = Vec::new();
        loop {
            let tok = lex.next_token()?;
            let is_eof = tok.kind == TokenKind::Eof;
            out.push(tok);
            if is_eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.idx).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.idx + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.idx += 1;
        if c == b'\n' {
            self.pos.line += 1;
            self.pos.col = 1;
        } else {
            self.pos.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(LexError {
                                    message: "unterminated block comment".into(),
                                    pos: start,
                                })
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Produce the next token.
    pub fn next_token(&mut self) -> Result<Token, LexError> {
        self.skip_trivia()?;
        let pos = self.pos;
        let Some(c) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                pos,
            });
        };
        let kind = match c {
            b'(' => {
                self.bump();
                TokenKind::LParen
            }
            b')' => {
                self.bump();
                TokenKind::RParen
            }
            b',' => {
                self.bump();
                TokenKind::Comma
            }
            b'.' => {
                self.bump();
                TokenKind::Dot
            }
            b';' => {
                self.bump();
                TokenKind::Semicolon
            }
            b'+' => {
                self.bump();
                TokenKind::Plus
            }
            b'-' => {
                self.bump();
                TokenKind::Minus
            }
            b'*' => {
                self.bump();
                TokenKind::Star
            }
            b'/' => {
                self.bump();
                TokenKind::Slash
            }
            b'=' => {
                self.bump();
                TokenKind::Eq
            }
            b'<' => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        TokenKind::LtEq
                    }
                    Some(b'>') => {
                        self.bump();
                        TokenKind::NotEq
                    }
                    _ => TokenKind::Lt,
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::GtEq
                } else {
                    TokenKind::Gt
                }
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::NotEq
                } else {
                    return Err(LexError {
                        message: "expected '=' after '!'".into(),
                        pos,
                    });
                }
            }
            b'\'' => return self.lex_string(pos),
            b'"' => return self.lex_quoted_ident(pos, b'"'),
            b'[' => return self.lex_quoted_ident(pos, b']'),
            c if c.is_ascii_digit() => return self.lex_number(pos),
            c if c.is_ascii_alphabetic() || c == b'_' => return self.lex_ident(pos),
            c => {
                return Err(LexError {
                    message: format!("unexpected character '{}'", c as char),
                    pos,
                })
            }
        };
        Ok(Token { kind, pos })
    }

    fn lex_string(&mut self, pos: Pos) -> Result<Token, LexError> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'\'') => {
                    if self.peek() == Some(b'\'') {
                        self.bump();
                        out.push('\'');
                    } else {
                        return Ok(Token {
                            kind: TokenKind::Str(out),
                            pos,
                        });
                    }
                }
                Some(c) => out.push(c as char),
                None => {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        pos,
                    })
                }
            }
        }
    }

    fn lex_quoted_ident(&mut self, pos: Pos, close: u8) -> Result<Token, LexError> {
        self.bump(); // opening quote/bracket
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(c) if c == close => {
                    if out.is_empty() {
                        return Err(LexError {
                            message: "empty quoted identifier".into(),
                            pos,
                        });
                    }
                    return Ok(Token {
                        kind: TokenKind::QuotedIdent(out),
                        pos,
                    });
                }
                Some(c) => out.push(c as char),
                None => {
                    return Err(LexError {
                        message: "unterminated quoted identifier".into(),
                        pos,
                    })
                }
            }
        }
    }

    fn lex_number(&mut self, pos: Pos) -> Result<Token, LexError> {
        let start = self.idx;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_real = false;
        if self.peek() == Some(b'.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            is_real = true;
            self.bump();
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let save = (self.idx, self.pos);
            self.bump();
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.bump();
            }
            if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                is_real = true;
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.bump();
                }
            } else {
                (self.idx, self.pos) = save;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.idx]).expect("ascii digits");
        let kind = if is_real {
            TokenKind::Real(text.parse().map_err(|e| LexError {
                message: format!("invalid numeric literal '{text}': {e}"),
                pos,
            })?)
        } else {
            match text.parse::<i64>() {
                Ok(v) => TokenKind::Int(v),
                // Integer literals too large for i64 degrade to Real, like
                // most SQL engines do.
                Err(_) => TokenKind::Real(text.parse().map_err(|e| LexError {
                    message: format!("invalid numeric literal '{text}': {e}"),
                    pos,
                })?),
            }
        };
        Ok(Token { kind, pos })
    }

    fn lex_ident(&mut self, pos: Pos) -> Result<Token, LexError> {
        let start = self.idx;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.idx]).expect("ascii ident");
        Ok(Token {
            kind: TokenKind::Ident(text.to_ascii_lowercase()),
            pos,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::tokenize(src)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_symbols_and_operators() {
        assert_eq!(
            kinds("( ) , . ; + - * / = <> != < <= > >="),
            vec![
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Comma,
                TokenKind::Dot,
                TokenKind::Semicolon,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Eq,
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::Lt,
                TokenKind::LtEq,
                TokenKind::Gt,
                TokenKind::GtEq,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lowercases_unquoted_identifiers() {
        assert_eq!(
            kinds("SELECT LineItem"),
            vec![
                TokenKind::Ident("select".into()),
                TokenKind::Ident("lineitem".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn preserves_quoted_identifier_case() {
        assert_eq!(
            kinds("\"LineItem\" [OrDer]"),
            vec![
                TokenKind::QuotedIdent("LineItem".into()),
                TokenKind::QuotedIdent("OrDer".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("1 42 3.5 1e3 2.5e-2"),
            vec![
                TokenKind::Int(1),
                TokenKind::Int(42),
                TokenKind::Real(3.5),
                TokenKind::Real(1000.0),
                TokenKind::Real(0.025),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn huge_integer_degrades_to_real() {
        assert_eq!(
            kinds("99999999999999999999"),
            vec![TokenKind::Real(1e20), TokenKind::Eof]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            kinds("'it''s'"),
            vec![TokenKind::Str("it's".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            kinds("1 -- line comment\n /* block\ncomment */ 2"),
            vec![TokenKind::Int(1), TokenKind::Int(2), TokenKind::Eof]
        );
    }

    #[test]
    fn tracks_positions() {
        let toks = Lexer::tokenize("a\n  b").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(Lexer::tokenize("'abc").is_err());
    }

    #[test]
    fn rejects_unterminated_block_comment() {
        assert!(Lexer::tokenize("/* abc").is_err());
    }

    #[test]
    fn rejects_stray_bang() {
        assert!(Lexer::tokenize("a ! b").is_err());
    }

    #[test]
    fn rejects_unknown_character() {
        assert!(Lexer::tokenize("a ? b").is_err());
    }
}
