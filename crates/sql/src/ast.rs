//! Abstract syntax tree for the supported SQL dialect.
//!
//! The tree is deliberately close to the SQL surface syntax: the engine
//! compiles it into executable plans, and `tintin-logic` translates the
//! assertion fragment into logic denials. All identifiers are stored as the
//! parser produced them (unquoted identifiers are lower-cased by the lexer,
//! so name comparison is plain string equality).

use std::fmt;

/// An identifier (table, column, alias, assertion name, …).
pub type Ident = String;

/// A top-level SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateTable(CreateTable),
    CreateAssertion(CreateAssertion),
    CreateView(CreateView),
    CreateIndex(CreateIndex),
    DropTable {
        name: Ident,
        if_exists: bool,
    },
    DropView {
        name: Ident,
        if_exists: bool,
    },
    /// `DROP INDEX name ON table` (SQL Server syntax, matching the paper's
    /// target system).
    DropIndex {
        name: Ident,
        table: Ident,
    },
    DropAssertion {
        name: Ident,
    },
    /// `EXPLAIN ASSERTION name` — report the install-time static-analysis
    /// verdict for an installed assertion: its linter class, the event rules
    /// proved unsatisfiable (with the rule that pruned each), and the
    /// residual gates guarding the surviving incremental views.
    ExplainAssertion {
        name: Ident,
    },
    TruncateTable {
        name: Ident,
    },
    Insert(Insert),
    Delete(Delete),
    Update(Update),
    Query(Query),
    /// `BEGIN [TRANSACTION | WORK]` — open an explicit transaction.
    Begin,
    /// `COMMIT [TRANSACTION | WORK]` — commit the open transaction
    /// (TINTIN's `safeCommit` runs here).
    Commit,
    /// `ROLLBACK [TRANSACTION | WORK]` (whole transaction) or
    /// `ROLLBACK TO [SAVEPOINT] name` (partial).
    Rollback {
        to: Option<Ident>,
    },
    /// `SAVEPOINT name` — establish (or move) a named savepoint.
    Savepoint {
        name: Ident,
    },
    /// `RELEASE [SAVEPOINT] name` — discard a savepoint, merging its
    /// changes into the enclosing scope.
    Release {
        name: Ident,
    },
}

impl Statement {
    /// Transaction-control statements (`BEGIN`, `COMMIT`, `ROLLBACK`,
    /// `SAVEPOINT`, `RELEASE`) — routed to the session layer rather than
    /// the raw engine.
    pub fn is_transaction_control(&self) -> bool {
        matches!(
            self,
            Statement::Begin
                | Statement::Commit
                | Statement::Rollback { .. }
                | Statement::Savepoint { .. }
                | Statement::Release { .. }
        )
    }

    /// Schema-changing statements, which are not transactional.
    pub fn is_ddl(&self) -> bool {
        matches!(
            self,
            Statement::CreateTable(_)
                | Statement::CreateAssertion(_)
                | Statement::CreateView(_)
                | Statement::CreateIndex(_)
                | Statement::DropTable { .. }
                | Statement::DropView { .. }
                | Statement::DropIndex { .. }
                | Statement::DropAssertion { .. }
                | Statement::TruncateTable { .. }
        )
    }

    /// The statement's SQL verb phrase (`"CREATE TABLE"`, `"CREATE UNIQUE
    /// INDEX"`, `"DELETE"`, …), derived from the AST variant — not from the
    /// pretty-printed text, whose leading tokens are not always the verb
    /// phrase. Used for error messages ("CREATE UNIQUE INDEX is not
    /// transactional").
    pub fn kind(&self) -> &'static str {
        match self {
            Statement::CreateTable(_) => "CREATE TABLE",
            Statement::CreateAssertion(_) => "CREATE ASSERTION",
            Statement::CreateView(_) => "CREATE VIEW",
            Statement::CreateIndex(ci) if ci.unique => "CREATE UNIQUE INDEX",
            Statement::CreateIndex(_) => "CREATE INDEX",
            Statement::DropTable { .. } => "DROP TABLE",
            Statement::DropView { .. } => "DROP VIEW",
            Statement::DropIndex { .. } => "DROP INDEX",
            Statement::DropAssertion { .. } => "DROP ASSERTION",
            Statement::ExplainAssertion { .. } => "EXPLAIN ASSERTION",
            Statement::TruncateTable { .. } => "TRUNCATE TABLE",
            Statement::Insert(_) => "INSERT",
            Statement::Delete(_) => "DELETE",
            Statement::Update(_) => "UPDATE",
            Statement::Query(_) => "SELECT",
            Statement::Begin => "BEGIN",
            Statement::Commit => "COMMIT",
            Statement::Rollback { to: Some(_) } => "ROLLBACK TO SAVEPOINT",
            Statement::Rollback { to: None } => "ROLLBACK",
            Statement::Savepoint { .. } => "SAVEPOINT",
            Statement::Release { .. } => "RELEASE SAVEPOINT",
        }
    }
}

/// `CREATE TABLE name (…)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    pub name: Ident,
    pub columns: Vec<ColumnDef>,
    pub constraints: Vec<TableConstraint>,
}

/// A column definition inside `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: Ident,
    pub ty: TypeName,
    pub not_null: bool,
    /// Column-level `PRIMARY KEY`.
    pub primary_key: bool,
    /// Column-level `UNIQUE`.
    pub unique: bool,
}

/// Logical column types. The parser folds the zoo of SQL type names into
/// three storage classes (see `tintin-engine`'s value model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeName {
    /// `INT`, `INTEGER`, `BIGINT`, `SMALLINT`.
    Int,
    /// `REAL`, `FLOAT`, `DOUBLE [PRECISION]`, `DECIMAL(p[,s])`, `NUMERIC`.
    Real,
    /// `VARCHAR(n)`, `CHAR(n)`, `TEXT`, `STRING`, `DATE`.
    Text,
}

impl fmt::Display for TypeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeName::Int => write!(f, "INTEGER"),
            TypeName::Real => write!(f, "REAL"),
            TypeName::Text => write!(f, "TEXT"),
        }
    }
}

/// Table-level constraint inside `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub enum TableConstraint {
    PrimaryKey(Vec<Ident>),
    Unique(Vec<Ident>),
    ForeignKey {
        columns: Vec<Ident>,
        ref_table: Ident,
        ref_columns: Vec<Ident>,
    },
    /// Row-level `CHECK (expr)`.
    Check(Expr),
}

/// `CREATE ASSERTION name CHECK (condition)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateAssertion {
    pub name: Ident,
    pub condition: Expr,
}

/// `CREATE VIEW name AS query`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateView {
    pub name: Ident,
    pub query: Query,
}

/// `CREATE [UNIQUE] INDEX name ON table (cols…)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateIndex {
    pub name: Ident,
    pub table: Ident,
    pub columns: Vec<Ident>,
    pub unique: bool,
}

/// `INSERT INTO table [(cols…)] VALUES …` or `INSERT INTO table [(cols…)] SELECT …`.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    pub table: Ident,
    pub columns: Option<Vec<Ident>>,
    pub source: InsertSource,
}

/// The rows fed into an [`Insert`].
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    Values(Vec<Vec<Expr>>),
    Query(Query),
}

/// `DELETE FROM table [AS alias] [WHERE …]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    pub table: Ident,
    pub alias: Option<Ident>,
    pub predicate: Option<Expr>,
}

/// `UPDATE table [AS alias] SET col = expr, … [WHERE …]`.
///
/// In TINTIN's update model (a set of tuple insertions and deletions, paper
/// §2) an UPDATE decomposes into deleting the old rows and inserting the
/// modified ones; the engine's event capture records it exactly that way.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    pub table: Ident,
    pub alias: Option<Ident>,
    pub assignments: Vec<(Ident, Expr)>,
    pub predicate: Option<Expr>,
}

/// A full query: a body of `SELECT`s combined with `UNION`, with optional
/// `ORDER BY` / `LIMIT` applied to the combined result.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub body: QueryBody,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<u64>,
}

/// One `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub desc: bool,
}

/// Query body tree. `UNION` is left-associative.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryBody {
    Select(Box<Select>),
    Union {
        left: Box<QueryBody>,
        right: Box<QueryBody>,
        all: bool,
    },
}

impl Query {
    /// Wrap a body into a query without ordering or limit.
    pub fn new(body: QueryBody) -> Self {
        Query {
            body,
            order_by: Vec::new(),
            limit: None,
        }
    }

    /// Convenience constructor for a single-`SELECT` query.
    pub fn select(select: Select) -> Self {
        Query::new(QueryBody::Select(Box::new(select)))
    }

    /// Iterate over all `SELECT` blocks in the body, left to right.
    pub fn selects(&self) -> Vec<&Select> {
        fn walk<'a>(body: &'a QueryBody, out: &mut Vec<&'a Select>) {
            match body {
                QueryBody::Select(s) => out.push(s),
                QueryBody::Union { left, right, .. } => {
                    walk(left, out);
                    walk(right, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.body, &mut out);
        out
    }
}

/// A single `SELECT … FROM … WHERE … [GROUP BY … [HAVING …]]` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    pub projection: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub selection: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
}

impl Select {
    /// A plain select without grouping.
    pub fn simple(
        distinct: bool,
        projection: Vec<SelectItem>,
        from: Vec<TableRef>,
        selection: Option<Expr>,
    ) -> Select {
        Select {
            distinct,
            projection,
            from,
            selection,
            group_by: Vec::new(),
            having: None,
        }
    }
}

/// One item of the `SELECT` projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(Ident),
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<Ident> },
}

/// A table reference in a `FROM` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// `name [AS alias]`
    Named { name: Ident, alias: Option<Ident> },
    /// `left [INNER|CROSS] JOIN right [ON cond]`
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        kind: JoinKind,
        on: Option<Expr>,
    },
    /// `(query) AS alias` — derived table.
    Subquery { query: Box<Query>, alias: Ident },
}

impl TableRef {
    /// The binding name this reference introduces, if it is a leaf.
    pub fn binding_name(&self) -> Option<&str> {
        match self {
            TableRef::Named { name, alias } => Some(alias.as_deref().unwrap_or(name)),
            TableRef::Subquery { alias, .. } => Some(alias),
            TableRef::Join { .. } => None,
        }
    }
}

/// Join kinds. Only inner/cross joins exist in the TINTIN fragment
/// (outer joins are expressible via `NOT EXISTS` in assertions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Cross,
}

/// Scalar / boolean expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Column(ColumnRef),
    Literal(Lit),
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Unary {
        op: UnOp,
        expr: Box<Expr>,
    },
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    Exists {
        query: Box<Query>,
        negated: bool,
    },
    InSubquery {
        exprs: Vec<Expr>,
        query: Box<Query>,
        negated: bool,
    },
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// Row-value constructor `(a, b, …)`; only meaningful directly before
    /// `IN (SELECT …)`.
    Tuple(Vec<Expr>),
    /// Function call — aggregates (`COUNT`, `SUM`, `AVG`, `MIN`, `MAX`) in
    /// the engine; anything else is rejected at compile time.
    Func {
        name: Ident,
        distinct: bool,
        args: FuncArgs,
    },
}

/// Arguments of a function call.
#[derive(Debug, Clone, PartialEq)]
pub enum FuncArgs {
    /// `COUNT(*)`
    Star,
    List(Vec<Expr>),
}

impl Expr {
    /// Build `left op right`.
    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Build an unqualified column reference.
    pub fn column(name: impl Into<Ident>) -> Expr {
        Expr::Column(ColumnRef {
            qualifier: None,
            name: name.into(),
        })
    }

    /// Build a qualified column reference.
    pub fn qualified(qualifier: impl Into<Ident>, name: impl Into<Ident>) -> Expr {
        Expr::Column(ColumnRef {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        })
    }

    /// Conjunction of a sequence of expressions; `None` when empty.
    pub fn and_all(exprs: impl IntoIterator<Item = Expr>) -> Option<Expr> {
        exprs
            .into_iter()
            .reduce(|a, b| Expr::binary(BinOp::And, a, b))
    }

    /// Split a conjunctive expression into its conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::Binary {
                    op: BinOp::And,
                    left,
                    right,
                } => {
                    walk(left, out);
                    walk(right, out);
                }
                other => out.push(other),
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }
}

/// A possibly-qualified column reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    pub qualifier: Option<Ident>,
    pub name: Ident,
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// Literal values.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    Int(i64),
    Real(f64),
    Str(String),
    Bool(bool),
    Null,
}

/// Binary operators, in increasing precedence groups: `OR` < `AND` <
/// comparisons < `+`/`-` < `*`/`/`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Or,
    And,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Add,
    Sub,
    Mul,
    Div,
}

impl BinOp {
    /// Is this a comparison operator?
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }

    /// The comparison with flipped operand order (`a op b` ⟺ `b op.flip() a`).
    pub fn flip(self) -> BinOp {
        match self {
            BinOp::Lt => BinOp::Gt,
            BinOp::LtEq => BinOp::GtEq,
            BinOp::Gt => BinOp::Lt,
            BinOp::GtEq => BinOp::LtEq,
            other => other,
        }
    }

    /// The negated comparison (`NOT (a op b)` ⟺ `a op.negate() b`), for
    /// comparison operators only.
    pub fn negate(self) -> Option<BinOp> {
        Some(match self {
            BinOp::Eq => BinOp::NotEq,
            BinOp::NotEq => BinOp::Eq,
            BinOp::Lt => BinOp::GtEq,
            BinOp::LtEq => BinOp::Gt,
            BinOp::Gt => BinOp::LtEq,
            BinOp::GtEq => BinOp::Lt,
            _ => return None,
        })
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Or => "OR",
            BinOp::And => "AND",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Not,
    Neg,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjuncts_flattens_nested_ands() {
        let e = Expr::binary(
            BinOp::And,
            Expr::binary(BinOp::And, Expr::column("a"), Expr::column("b")),
            Expr::column("c"),
        );
        let parts = e.conjuncts();
        assert_eq!(parts.len(), 3);
    }

    #[test]
    fn and_all_of_empty_is_none() {
        assert_eq!(Expr::and_all(vec![]), None);
    }

    #[test]
    fn and_all_of_single_is_identity() {
        assert_eq!(
            Expr::and_all(vec![Expr::column("x")]),
            Some(Expr::column("x"))
        );
    }

    #[test]
    fn binop_negate_roundtrip() {
        for op in [
            BinOp::Eq,
            BinOp::NotEq,
            BinOp::Lt,
            BinOp::LtEq,
            BinOp::Gt,
            BinOp::GtEq,
        ] {
            let neg = op.negate().unwrap();
            assert_eq!(neg.negate().unwrap(), op);
        }
        assert_eq!(BinOp::Add.negate(), None);
    }

    #[test]
    fn binop_flip_is_involution() {
        for op in [BinOp::Lt, BinOp::LtEq, BinOp::Gt, BinOp::GtEq, BinOp::Eq] {
            assert_eq!(op.flip().flip(), op);
        }
    }

    #[test]
    fn query_selects_walks_unions() {
        let s = Select::simple(false, vec![SelectItem::Wildcard], vec![], None);
        let q = Query::new(QueryBody::Union {
            left: Box::new(QueryBody::Select(Box::new(s.clone()))),
            right: Box::new(QueryBody::Select(Box::new(s))),
            all: true,
        });
        assert_eq!(q.selects().len(), 2);
    }

    #[test]
    fn table_ref_binding_name() {
        let t = TableRef::Named {
            name: "orders".into(),
            alias: Some("o".into()),
        };
        assert_eq!(t.binding_name(), Some("o"));
        let t = TableRef::Named {
            name: "orders".into(),
            alias: None,
        };
        assert_eq!(t.binding_name(), Some("orders"));
    }
}
