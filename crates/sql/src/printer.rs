//! SQL pretty-printer.
//!
//! Emits SQL text that parses back to the same AST (verified by round-trip
//! property tests). Identifiers that are reserved words or contain characters
//! outside `[a-z0-9_]` are double-quoted.

use crate::ast::*;
use std::fmt::{self, Write};

/// Quote an identifier if needed.
pub fn ident(out: &mut String, id: &str) {
    let plain = !id.is_empty()
        && id
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        && !id.chars().next().unwrap().is_ascii_digit()
        && !is_reserved(id);
    if plain {
        out.push_str(id);
    } else {
        out.push('"');
        out.push_str(id);
        out.push('"');
    }
}

fn is_reserved(id: &str) -> bool {
    const RESERVED: &[&str] = &[
        "select",
        "from",
        "where",
        "and",
        "or",
        "not",
        "exists",
        "in",
        "union",
        "all",
        "distinct",
        "join",
        "inner",
        "cross",
        "on",
        "as",
        "is",
        "null",
        "between",
        "values",
        "insert",
        "into",
        "delete",
        "create",
        "table",
        "view",
        "index",
        "assertion",
        "check",
        "drop",
        "truncate",
        "primary",
        "key",
        "foreign",
        "references",
        "unique",
        "constraint",
        "order",
        "group",
        "by",
        "having",
        "like",
        "set",
        "update",
        "true",
        "false",
        "if",
        "int",
        "integer",
        "real",
        "text",
        "begin",
        "commit",
        "rollback",
        "savepoint",
        "release",
        "transaction",
        "work",
        "to",
    ];
    RESERVED.contains(&id)
}

/// Escape a string literal body (`'` doubling).
fn string_lit(out: &mut String, s: &str) {
    out.push('\'');
    for c in s.chars() {
        if c == '\'' {
            out.push('\'');
        }
        out.push(c);
    }
    out.push('\'');
}

/// Render any statement to SQL text.
pub fn statement_to_sql(stmt: &Statement) -> String {
    let mut out = String::new();
    write_statement(&mut out, stmt);
    out
}

/// Render a query to SQL text.
pub fn query_to_sql(q: &Query) -> String {
    let mut out = String::new();
    write_query(&mut out, q);
    out
}

/// Render an expression to SQL text.
pub fn expr_to_sql(e: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, e, 0);
    out
}

fn write_statement(out: &mut String, stmt: &Statement) {
    match stmt {
        Statement::CreateTable(t) => {
            out.push_str("CREATE TABLE ");
            ident(out, &t.name);
            out.push_str(" (");
            let mut first = true;
            for c in &t.columns {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                ident(out, &c.name);
                let _ = write!(out, " {}", c.ty);
                if c.primary_key {
                    out.push_str(" PRIMARY KEY");
                } else if c.not_null {
                    out.push_str(" NOT NULL");
                }
                if c.unique {
                    out.push_str(" UNIQUE");
                }
            }
            for con in &t.constraints {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                match con {
                    TableConstraint::PrimaryKey(cols) => {
                        out.push_str("PRIMARY KEY (");
                        write_ident_list(out, cols);
                        out.push(')');
                    }
                    TableConstraint::Unique(cols) => {
                        out.push_str("UNIQUE (");
                        write_ident_list(out, cols);
                        out.push(')');
                    }
                    TableConstraint::ForeignKey {
                        columns,
                        ref_table,
                        ref_columns,
                    } => {
                        out.push_str("FOREIGN KEY (");
                        write_ident_list(out, columns);
                        out.push_str(") REFERENCES ");
                        ident(out, ref_table);
                        if !ref_columns.is_empty() {
                            out.push_str(" (");
                            write_ident_list(out, ref_columns);
                            out.push(')');
                        }
                    }
                    TableConstraint::Check(e) => {
                        out.push_str("CHECK (");
                        write_expr(out, e, 0);
                        out.push(')');
                    }
                }
            }
            out.push(')');
        }
        Statement::CreateAssertion(a) => {
            out.push_str("CREATE ASSERTION ");
            ident(out, &a.name);
            out.push_str(" CHECK (");
            write_expr(out, &a.condition, 0);
            out.push(')');
        }
        Statement::CreateView(v) => {
            out.push_str("CREATE VIEW ");
            ident(out, &v.name);
            out.push_str(" AS ");
            write_query(out, &v.query);
        }
        Statement::CreateIndex(ix) => {
            out.push_str("CREATE ");
            if ix.unique {
                out.push_str("UNIQUE ");
            }
            out.push_str("INDEX ");
            ident(out, &ix.name);
            out.push_str(" ON ");
            ident(out, &ix.table);
            out.push_str(" (");
            write_ident_list(out, &ix.columns);
            out.push(')');
        }
        Statement::DropTable { name, if_exists } => {
            out.push_str("DROP TABLE ");
            if *if_exists {
                out.push_str("IF EXISTS ");
            }
            ident(out, name);
        }
        Statement::DropView { name, if_exists } => {
            out.push_str("DROP VIEW ");
            if *if_exists {
                out.push_str("IF EXISTS ");
            }
            ident(out, name);
        }
        Statement::DropIndex { name, table } => {
            out.push_str("DROP INDEX ");
            ident(out, name);
            out.push_str(" ON ");
            ident(out, table);
        }
        Statement::DropAssertion { name } => {
            out.push_str("DROP ASSERTION ");
            ident(out, name);
        }
        Statement::ExplainAssertion { name } => {
            out.push_str("EXPLAIN ASSERTION ");
            ident(out, name);
        }
        Statement::TruncateTable { name } => {
            out.push_str("TRUNCATE TABLE ");
            ident(out, name);
        }
        Statement::Insert(i) => {
            out.push_str("INSERT INTO ");
            ident(out, &i.table);
            if let Some(cols) = &i.columns {
                out.push_str(" (");
                write_ident_list(out, cols);
                out.push(')');
            }
            match &i.source {
                InsertSource::Values(rows) => {
                    out.push_str(" VALUES ");
                    for (ri, row) in rows.iter().enumerate() {
                        if ri > 0 {
                            out.push_str(", ");
                        }
                        out.push('(');
                        for (ci, e) in row.iter().enumerate() {
                            if ci > 0 {
                                out.push_str(", ");
                            }
                            write_expr(out, e, 0);
                        }
                        out.push(')');
                    }
                }
                InsertSource::Query(q) => {
                    out.push(' ');
                    write_query(out, q);
                }
            }
        }
        Statement::Delete(d) => {
            out.push_str("DELETE FROM ");
            ident(out, &d.table);
            if let Some(a) = &d.alias {
                out.push_str(" AS ");
                ident(out, a);
            }
            if let Some(p) = &d.predicate {
                out.push_str(" WHERE ");
                write_expr(out, p, 0);
            }
        }
        Statement::Update(u) => {
            out.push_str("UPDATE ");
            ident(out, &u.table);
            if let Some(a) = &u.alias {
                out.push_str(" AS ");
                ident(out, a);
            }
            out.push_str(" SET ");
            for (i, (col, e)) in u.assignments.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                ident(out, col);
                out.push_str(" = ");
                write_expr(out, e, 0);
            }
            if let Some(p) = &u.predicate {
                out.push_str(" WHERE ");
                write_expr(out, p, 0);
            }
        }
        Statement::Query(q) => write_query(out, q),
        Statement::Begin => out.push_str("BEGIN"),
        Statement::Commit => out.push_str("COMMIT"),
        Statement::Rollback { to } => {
            out.push_str("ROLLBACK");
            if let Some(name) = to {
                out.push_str(" TO SAVEPOINT ");
                ident(out, name);
            }
        }
        Statement::Savepoint { name } => {
            out.push_str("SAVEPOINT ");
            ident(out, name);
        }
        Statement::Release { name } => {
            out.push_str("RELEASE SAVEPOINT ");
            ident(out, name);
        }
    }
}

fn write_ident_list(out: &mut String, ids: &[Ident]) {
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        ident(out, id);
    }
}

fn write_query(out: &mut String, q: &Query) {
    write_query_body(out, &q.body);
    if !q.order_by.is_empty() {
        out.push_str(" ORDER BY ");
        for (i, item) in q.order_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_expr(out, &item.expr, 0);
            if item.desc {
                out.push_str(" DESC");
            }
        }
    }
    if let Some(n) = q.limit {
        let _ = write!(out, " LIMIT {n}");
    }
}

fn write_query_body(out: &mut String, b: &QueryBody) {
    match b {
        QueryBody::Select(s) => write_select(out, s),
        QueryBody::Union { left, right, all } => {
            write_query_body(out, left);
            out.push_str(if *all { " UNION ALL " } else { " UNION " });
            // Right operand may itself be a union; parenthesize to keep
            // left-associativity on re-parse.
            if matches!(**right, QueryBody::Union { .. }) {
                out.push('(');
                write_query_body(out, right);
                out.push(')');
            } else {
                write_query_body(out, right);
            }
        }
    }
}

fn write_select(out: &mut String, s: &Select) {
    out.push_str("SELECT ");
    if s.distinct {
        out.push_str("DISTINCT ");
    }
    for (i, item) in s.projection.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match item {
            SelectItem::Wildcard => out.push('*'),
            SelectItem::QualifiedWildcard(q) => {
                ident(out, q);
                out.push_str(".*");
            }
            SelectItem::Expr { expr, alias } => {
                write_expr(out, expr, 0);
                if let Some(a) = alias {
                    out.push_str(" AS ");
                    ident(out, a);
                }
            }
        }
    }
    if !s.from.is_empty() {
        out.push_str(" FROM ");
        for (i, tr) in s.from.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_table_ref(out, tr);
        }
    }
    if let Some(sel) = &s.selection {
        out.push_str(" WHERE ");
        write_expr(out, sel, 0);
    }
    if !s.group_by.is_empty() {
        out.push_str(" GROUP BY ");
        for (i, e) in s.group_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_expr(out, e, 0);
        }
    }
    if let Some(h) = &s.having {
        out.push_str(" HAVING ");
        write_expr(out, h, 0);
    }
}

fn write_table_ref(out: &mut String, tr: &TableRef) {
    match tr {
        TableRef::Named { name, alias } => {
            ident(out, name);
            if let Some(a) = alias {
                out.push_str(" AS ");
                ident(out, a);
            }
        }
        TableRef::Join {
            left,
            right,
            kind,
            on,
        } => {
            write_table_ref(out, left);
            match kind {
                JoinKind::Inner => out.push_str(" JOIN "),
                JoinKind::Cross => out.push_str(" CROSS JOIN "),
            }
            // Parenthesize a join on the right to preserve shape.
            if matches!(**right, TableRef::Join { .. }) {
                out.push('(');
                write_table_ref(out, right);
                out.push(')');
            } else {
                write_table_ref(out, right);
            }
            if let Some(on) = on {
                out.push_str(" ON ");
                write_expr(out, on, 0);
            }
        }
        TableRef::Subquery { query, alias } => {
            out.push('(');
            write_query(out, query);
            out.push_str(") AS ");
            ident(out, alias);
        }
    }
}

/// Binding power of an operator for parenthesization decisions.
fn bin_prec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => 4,
        BinOp::Add | BinOp::Sub => 5,
        BinOp::Mul | BinOp::Div => 6,
    }
}

fn write_expr(out: &mut String, e: &Expr, min_prec: u8) {
    match e {
        Expr::Column(c) => {
            if let Some(q) = &c.qualifier {
                ident(out, q);
                out.push('.');
            }
            ident(out, &c.name);
        }
        Expr::Literal(l) => match l {
            Lit::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Lit::Real(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    let _ = write!(out, "{v:.1}");
                } else {
                    let _ = write!(out, "{v}");
                }
            }
            Lit::Str(s) => string_lit(out, s),
            Lit::Bool(b) => out.push_str(if *b { "TRUE" } else { "FALSE" }),
            Lit::Null => out.push_str("NULL"),
        },
        Expr::Binary { op, left, right } => {
            let prec = bin_prec(*op);
            let need_paren = prec < min_prec;
            if need_paren {
                out.push('(');
            }
            // Comparisons are non-associative: parenthesize both operands.
            let left_prec = if op.is_comparison() { prec + 1 } else { prec };
            write_expr(out, left, left_prec);
            let _ = write!(out, " {op} ");
            write_expr(out, right, prec + 1);
            if need_paren {
                out.push(')');
            }
        }
        Expr::Unary { op, expr } => match op {
            // NOT sits between AND and the predicates (precedence 3); wrap
            // it when embedded in a tighter context (e.g. an IN probe).
            UnOp::Not => {
                let need_paren = min_prec > 3;
                if need_paren {
                    out.push('(');
                }
                out.push_str("NOT (");
                write_expr(out, expr, 0);
                out.push(')');
                if need_paren {
                    out.push(')');
                }
            }
            UnOp::Neg => {
                out.push_str("-(");
                write_expr(out, expr, 0);
                out.push(')');
            }
        },
        Expr::IsNull { expr, negated } => {
            // Postfix predicate (precedence 4, non-associative): the operand
            // must bind tighter, and the whole thing needs parens inside
            // another predicate.
            let need_paren = min_prec > 4;
            if need_paren {
                out.push('(');
            }
            write_expr(out, expr, 5);
            out.push_str(if *negated { " IS NOT NULL" } else { " IS NULL" });
            if need_paren {
                out.push(')');
            }
        }
        Expr::Exists { query, negated } => {
            let need_paren = min_prec > 4;
            if need_paren {
                out.push('(');
            }
            if *negated {
                out.push_str("NOT ");
            }
            out.push_str("EXISTS (");
            write_query(out, query);
            out.push(')');
            if need_paren {
                out.push(')');
            }
        }
        Expr::InSubquery {
            exprs,
            query,
            negated,
        } => {
            let need_paren = min_prec > 4;
            if need_paren {
                out.push('(');
            }
            if exprs.len() == 1 {
                write_expr(out, &exprs[0], 5);
            } else {
                out.push('(');
                for (i, e) in exprs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_expr(out, e, 0);
                }
                out.push(')');
            }
            out.push_str(if *negated { " NOT IN (" } else { " IN (" });
            write_query(out, query);
            out.push(')');
            if need_paren {
                out.push(')');
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let need_paren = min_prec > 4;
            if need_paren {
                out.push('(');
            }
            write_expr(out, expr, 5);
            out.push_str(if *negated { " NOT IN (" } else { " IN (" });
            for (i, e) in list.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, e, 0);
            }
            out.push(')');
            if need_paren {
                out.push(')');
            }
        }
        Expr::Func {
            name,
            distinct,
            args,
        } => {
            // Function names print uppercased for readability; the lexer
            // lowercases them again on reparse.
            let _ = write!(out, "{}(", name.to_uppercase());
            match args {
                FuncArgs::Star => out.push('*'),
                FuncArgs::List(list) => {
                    if *distinct {
                        out.push_str("DISTINCT ");
                    }
                    for (i, e) in list.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        write_expr(out, e, 0);
                    }
                }
            }
            out.push(')');
        }
        Expr::Tuple(parts) => {
            out.push('(');
            for (i, e) in parts.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, e, 0);
            }
            out.push(')');
        }
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&statement_to_sql(self))
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&query_to_sql(self))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&expr_to_sql(self))
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::{parse_expr, parse_query, parse_statement, parse_statements};

    /// Parse → print → parse must be a fixpoint.
    fn roundtrip_stmt(sql: &str) {
        let s1 = parse_statement(sql).unwrap();
        let printed = s1.to_string();
        let s2 = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
        assert_eq!(s1, s2, "printed form: {printed}");
    }

    #[test]
    fn roundtrips_create_table() {
        roundtrip_stmt(
            "CREATE TABLE lineitem (l_orderkey INT NOT NULL, l_linenumber INT, l_quantity INT,
             PRIMARY KEY (l_orderkey, l_linenumber),
             FOREIGN KEY (l_orderkey) REFERENCES orders (o_orderkey),
             CHECK (l_quantity > 0))",
        );
    }

    #[test]
    fn roundtrips_assertion() {
        roundtrip_stmt(
            "CREATE ASSERTION a CHECK (NOT EXISTS (SELECT * FROM orders AS o
             WHERE NOT EXISTS (SELECT * FROM lineitem AS l WHERE l.k = o.k)))",
        );
    }

    #[test]
    fn roundtrips_dml() {
        roundtrip_stmt("INSERT INTO t (a, b) VALUES (1, 'x''y'), (2, NULL)");
        roundtrip_stmt("INSERT INTO t SELECT * FROM s");
        roundtrip_stmt("DELETE FROM t AS x WHERE x.a = 1 OR x.b < 2.5");
    }

    #[test]
    fn roundtrips_queries() {
        for q in [
            "SELECT DISTINCT a, b AS c, t.*, * FROM t, s AS u WHERE a = 1 AND b <> 2",
            "SELECT * FROM a JOIN b ON a.x = b.x CROSS JOIN c",
            "SELECT a FROM t UNION SELECT b FROM s UNION ALL SELECT c FROM u",
            "SELECT * FROM (SELECT a FROM t) AS sub",
            "SELECT * FROM t WHERE a IN (SELECT x FROM s) AND (b, c) NOT IN (SELECT y, z FROM r)",
            "SELECT * FROM t WHERE a IN (1, 2, 3) AND b IS NOT NULL",
            "SELECT * FROM t WHERE NOT (a = 1 OR b = 2)",
            "SELECT * FROM t WHERE a + 2 * b - 3 / c >= d",
        ] {
            let q1 = parse_query(q).unwrap();
            let printed = q1.to_string();
            let q2 = parse_query(&printed).unwrap();
            assert_eq!(q1, q2, "printed: {printed}");
        }
    }

    #[test]
    fn quotes_reserved_and_mixed_case_identifiers() {
        let q = parse_query("SELECT \"Select\".\"From\" FROM \"Select\"").unwrap();
        let printed = q.to_string();
        assert!(printed.contains("\"Select\""));
        assert!(printed.contains("\"From\""));
        let q2 = parse_query(&printed).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn real_literals_keep_decimal_point() {
        let e = parse_expr("a = 2.0").unwrap();
        assert_eq!(e.to_string(), "a = 2.0");
        // must reparse as Real, not Int
        let e2 = parse_expr(&e.to_string()).unwrap();
        assert_eq!(e, e2);
    }

    #[test]
    fn roundtrips_ddl_misc() {
        roundtrip_stmt("CREATE VIEW v AS SELECT a FROM t WHERE a > 0");
        roundtrip_stmt("CREATE UNIQUE INDEX i ON t (a, b)");
        roundtrip_stmt("DROP INDEX i ON t");
        roundtrip_stmt("DROP TABLE IF EXISTS t");
        roundtrip_stmt("TRUNCATE TABLE t");
        roundtrip_stmt("DROP ASSERTION a");
    }

    #[test]
    fn roundtrips_transaction_control() {
        roundtrip_stmt("BEGIN");
        roundtrip_stmt("COMMIT");
        roundtrip_stmt("ROLLBACK");
        roundtrip_stmt("SAVEPOINT s1");
        roundtrip_stmt("ROLLBACK TO SAVEPOINT s1");
        roundtrip_stmt("RELEASE SAVEPOINT s1");
        // Reserved or mixed-case savepoint names must come back quoted.
        roundtrip_stmt("SAVEPOINT \"select\"");
        roundtrip_stmt("ROLLBACK TO \"Sp One\"");
    }

    #[test]
    fn statements_roundtrip_as_script() {
        let script = "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t";
        let stmts = parse_statements(script).unwrap();
        let printed: Vec<String> = stmts.iter().map(|s| s.to_string()).collect();
        let reparsed = parse_statements(&printed.join("; ")).unwrap();
        assert_eq!(stmts, reparsed);
    }
}
