//! Byte accounting: estimated in-memory data sizes, used to express
//! database and update sizes on the paper's GB / MB axes.

use tintin_engine::{Database, Value};

/// Estimated stored size of one value in bytes.
pub fn value_bytes(v: &Value) -> usize {
    match v {
        Value::Null => 1,
        Value::Int(_) => 8,
        Value::Real(_) => 8,
        Value::Str(s) => s.len() + 8,
    }
}

/// Estimated size of a row (values + slot overhead).
pub fn row_bytes(row: &[Value]) -> usize {
    16 + row.iter().map(value_bytes).sum::<usize>()
}

/// Estimated data bytes of one table.
pub fn table_bytes(db: &Database, table: &str) -> usize {
    db.table(table)
        .map(|t| t.scan().map(|(_, r)| row_bytes(r)).sum())
        .unwrap_or(0)
}

/// Estimated data bytes of the TPC-H base tables (events excluded).
pub fn database_bytes(db: &Database) -> usize {
    crate::schema::TPCH_TABLES
        .iter()
        .map(|t| table_bytes(db, t))
        .sum()
}

/// Estimated bytes of the pending update (all event tables).
pub fn pending_update_bytes(db: &Database) -> usize {
    let mut total = 0;
    for t in crate::schema::TPCH_TABLES {
        total += table_bytes(db, &tintin_engine::ins_table_name(t));
        total += table_bytes(db, &tintin_engine::del_table_name(t));
    }
    total
}

/// Human-readable size.
pub fn human_bytes(n: usize) -> String {
    const UNITS: [&str; 4] = ["B", "KB", "MB", "GB"];
    let mut size = n as f64;
    let mut unit = 0;
    while size >= 1024.0 && unit < UNITS.len() - 1 {
        size /= 1024.0;
        unit += 1;
    }
    format!("{size:.1} {}", UNITS[unit])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgen::Dbgen;

    #[test]
    fn value_sizes() {
        assert_eq!(value_bytes(&Value::Int(1)), 8);
        assert_eq!(value_bytes(&Value::str("abcd")), 12);
        assert_eq!(value_bytes(&Value::Null), 1);
    }

    #[test]
    fn database_bytes_scale_with_sf() {
        let small = database_bytes(&Dbgen::new(0.0002).generate());
        let large = database_bytes(&Dbgen::new(0.0008).generate());
        assert!(large > 3 * small, "{small} vs {large}");
    }

    #[test]
    fn pending_bytes_track_events() {
        let mut db = Dbgen::new(0.0002).generate();
        db.enable_capture("orders").unwrap();
        assert_eq!(pending_update_bytes(&db), 0);
        db.execute_sql("INSERT INTO orders VALUES (999999, 1, 10.0)")
            .unwrap();
        assert!(pending_update_bytes(&db) > 0);
    }

    #[test]
    fn human_bytes_formatting() {
        assert_eq!(human_bytes(512), "512.0 B");
        assert_eq!(human_bytes(2048), "2.0 KB");
        assert!(human_bytes(3 * 1024 * 1024).contains("MB"));
    }
}
