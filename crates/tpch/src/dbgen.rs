//! Deterministic TPC-H data generator (a `dbgen` stand-in).
//!
//! Row counts follow the TPC-H ratios per scale factor SF = 1: 5 regions,
//! 25 nations, 10 k suppliers, 150 k customers, 200 k parts, 800 k partsupp,
//! 1.5 M orders and ~6 M lineitems (1–7 per order). The generator is seeded
//! and fully deterministic, and key spaces are dense (1..=n), which lets the
//! update generator synthesize valid references without querying.

use crate::schema::TPCH_SCHEMA_SQL;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tintin_engine::{Database, Value};

/// Row counts for a scale factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpchCounts {
    pub regions: i64,
    pub nations: i64,
    pub suppliers: i64,
    pub customers: i64,
    pub parts: i64,
    pub partsupps_per_part: i64,
    pub orders: i64,
    /// Upper bound of lineitems per order (uniform 1..=max).
    pub max_lines_per_order: i64,
}

impl TpchCounts {
    /// TPC-H ratios scaled by `sf` (regions/nations stay fixed).
    pub fn for_scale(sf: f64) -> TpchCounts {
        let n = |base: f64| -> i64 { ((base * sf).round() as i64).max(1) };
        TpchCounts {
            regions: 5,
            nations: 25,
            suppliers: n(10_000.0),
            customers: n(150_000.0),
            parts: n(200_000.0),
            partsupps_per_part: 4,
            orders: n(1_500_000.0),
            max_lines_per_order: 7,
        }
    }
}

/// The `ps_suppkey` values of a part, mirroring dbgen's supplier spread.
/// Deterministic so the update generator can produce valid FK pairs.
pub fn suppliers_of_part(counts: &TpchCounts, partkey: i64) -> impl Iterator<Item = i64> {
    let nsupp = counts.suppliers;
    let per = counts.partsupps_per_part.min(nsupp);
    (0..per).map(move |i| ((partkey + i * (nsupp / 4).max(1)) % nsupp) + 1)
}

/// Deterministic TPC-H database generator.
#[derive(Debug, Clone)]
pub struct Dbgen {
    pub sf: f64,
    pub seed: u64,
}

impl Dbgen {
    pub fn new(sf: f64) -> Self {
        Dbgen { sf, seed: 42 }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn counts(&self) -> TpchCounts {
        TpchCounts::for_scale(self.sf)
    }

    /// Generate the schema and data into a fresh database.
    pub fn generate(&self) -> Database {
        let mut db = Database::new();
        db.execute_sql(TPCH_SCHEMA_SQL).expect("schema installs");
        self.populate(&mut db);
        db
    }

    /// Populate an existing (empty) TPC-H schema.
    pub fn populate(&self, db: &mut Database) {
        let c = self.counts();
        let mut rng = StdRng::seed_from_u64(self.seed);

        const REGION_NAMES: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
        let regions: Vec<Vec<Value>> = (1..=c.regions)
            .map(|k| {
                vec![
                    Value::Int(k),
                    Value::str(REGION_NAMES[(k - 1) as usize % REGION_NAMES.len()]),
                ]
            })
            .collect();
        db.insert_direct("region", regions).unwrap();

        let nations: Vec<Vec<Value>> = (1..=c.nations)
            .map(|k| {
                vec![
                    Value::Int(k),
                    Value::str(format!("NATION#{k:02}")),
                    Value::Int(((k - 1) % c.regions) + 1),
                ]
            })
            .collect();
        db.insert_direct("nation", nations).unwrap();

        let suppliers: Vec<Vec<Value>> = (1..=c.suppliers)
            .map(|k| {
                vec![
                    Value::Int(k),
                    Value::str(format!("Supplier#{k:09}")),
                    Value::Int(rng.gen_range(1..=c.nations)),
                ]
            })
            .collect();
        db.insert_direct("supplier", suppliers).unwrap();

        let customers: Vec<Vec<Value>> = (1..=c.customers)
            .map(|k| {
                vec![
                    Value::Int(k),
                    Value::str(format!("Customer#{k:09}")),
                    Value::Int(rng.gen_range(1..=c.nations)),
                ]
            })
            .collect();
        db.insert_direct("customer", customers).unwrap();

        const COLORS: [&str; 8] = [
            "almond", "azure", "blush", "chiffon", "coral", "ivory", "linen", "salmon",
        ];
        let parts: Vec<Vec<Value>> = (1..=c.parts)
            .map(|k| {
                vec![
                    Value::Int(k),
                    Value::str(format!(
                        "{} {} part#{k}",
                        COLORS[rng.gen_range(0..COLORS.len())],
                        COLORS[rng.gen_range(0..COLORS.len())],
                    )),
                ]
            })
            .collect();
        db.insert_direct("part", parts).unwrap();

        let mut partsupps = Vec::new();
        for p in 1..=c.parts {
            for s in suppliers_of_part(&c, p) {
                partsupps.push(vec![
                    Value::Int(p),
                    Value::Int(s),
                    Value::Int(rng.gen_range(1..10_000)),
                    Value::real((rng.gen_range(100..100_000) as f64) / 100.0),
                ]);
            }
        }
        // Duplicate (part, supp) pairs can occur for tiny supplier counts;
        // drop them keeping the first.
        partsupps.sort_by(|a, b| (a[0].clone(), a[1].clone()).cmp(&(b[0].clone(), b[1].clone())));
        partsupps.dedup_by(|a, b| a[0] == b[0] && a[1] == b[1]);
        db.insert_direct("partsupp", partsupps).unwrap();

        let orders: Vec<Vec<Value>> = (1..=c.orders)
            .map(|k| {
                vec![
                    Value::Int(k),
                    Value::Int(rng.gen_range(1..=c.customers)),
                    Value::real((rng.gen_range(1_000..50_000_000) as f64) / 100.0),
                ]
            })
            .collect();
        db.insert_direct("orders", orders).unwrap();

        let mut lineitems = Vec::new();
        for o in 1..=c.orders {
            let nlines = rng.gen_range(1..=c.max_lines_per_order);
            for ln in 1..=nlines {
                let partkey = rng.gen_range(1..=c.parts);
                let pick = rng.gen_range(0..c.partsupps_per_part.min(c.suppliers)) as usize;
                let suppkey = suppliers_of_part(&c, partkey)
                    .nth(pick)
                    .expect("supplier pick in range");
                lineitems.push(vec![
                    Value::Int(o),
                    Value::Int(ln),
                    Value::Int(rng.gen_range(1..=50)),
                    Value::Int(partkey),
                    Value::Int(suppkey),
                ]);
            }
        }
        db.insert_direct("lineitem", lineitems).unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_scale_linearly() {
        let c1 = TpchCounts::for_scale(0.001);
        let c2 = TpchCounts::for_scale(0.002);
        assert_eq!(c1.orders, 1_500);
        assert_eq!(c2.orders, 3_000);
        assert_eq!(c1.regions, 5);
        assert_eq!(c2.nations, 25);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dbgen::new(0.0005).generate();
        let b = Dbgen::new(0.0005).generate();
        for t in crate::schema::TPCH_TABLES {
            assert_eq!(
                a.table(t).unwrap().len(),
                b.table(t).unwrap().len(),
                "{t} row counts differ"
            );
        }
        // Spot-check identical rows via a query.
        let qa = a
            .query_sql("SELECT o_totalprice FROM orders WHERE o_orderkey = 3")
            .unwrap();
        let qb = b
            .query_sql("SELECT o_totalprice FROM orders WHERE o_orderkey = 3")
            .unwrap();
        assert_eq!(qa.rows, qb.rows);
    }

    #[test]
    fn referential_integrity_holds() {
        let db = Dbgen::new(0.0005).generate();
        // Every lineitem references an existing order.
        let dangling = db
            .query_sql(
                "SELECT * FROM lineitem l WHERE NOT EXISTS (
                     SELECT * FROM orders o WHERE o.o_orderkey = l.l_orderkey)",
            )
            .unwrap();
        assert!(dangling.is_empty());
        // Every lineitem references an existing partsupp pair.
        let dangling = db
            .query_sql(
                "SELECT * FROM lineitem l WHERE NOT EXISTS (
                     SELECT * FROM partsupp ps
                     WHERE ps.ps_partkey = l.l_partkey AND ps.ps_suppkey = l.l_suppkey)",
            )
            .unwrap();
        assert!(dangling.is_empty());
        // Every order has at least one lineitem (the running example holds).
        let empty_orders = db
            .query_sql(
                "SELECT * FROM orders o WHERE NOT EXISTS (
                     SELECT * FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)",
            )
            .unwrap();
        assert!(empty_orders.is_empty());
    }

    #[test]
    fn key_spaces_are_dense() {
        let db = Dbgen::new(0.0003).generate();
        let c = TpchCounts::for_scale(0.0003);
        assert_eq!(db.table("orders").unwrap().len() as i64, c.orders);
        assert_eq!(db.table("customer").unwrap().len() as i64, c.customers);
        // Max order key equals the count (dense 1..=n).
        let rs = db
            .query_sql(&format!(
                "SELECT o_orderkey FROM orders WHERE o_orderkey = {}",
                c.orders
            ))
            .unwrap();
        assert_eq!(rs.len(), 1);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;

    #[test]
    fn tiny_scale_factors_do_not_panic() {
        // All counts clamp to ≥ 1; partsupp dedup handles the collapsed
        // supplier space.
        for sf in [0.0, 0.000001, 0.00001] {
            let db = Dbgen::new(sf).generate();
            for t in crate::schema::TPCH_TABLES {
                assert!(db.table(t).is_some());
            }
            assert!(!db.table("orders").unwrap().is_empty());
            // FK integrity still holds at the degenerate scale.
            let dangling = db
                .query_sql(
                    "SELECT * FROM lineitem l WHERE NOT EXISTS (
                         SELECT * FROM partsupp ps
                         WHERE ps.ps_partkey = l.l_partkey AND ps.ps_suppkey = l.l_suppkey)",
                )
                .unwrap();
            assert!(dangling.is_empty(), "sf={sf}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dbgen::new(0.0003).with_seed(1).generate();
        let b = Dbgen::new(0.0003).with_seed(2).generate();
        let qa = a
            .query_sql("SELECT o_custkey FROM orders WHERE o_orderkey = 1")
            .unwrap();
        let qb = b
            .query_sql("SELECT o_custkey FROM orders WHERE o_orderkey = 1")
            .unwrap();
        // Equal counts but (almost surely) different contents.
        assert_eq!(
            a.table("orders").unwrap().len(),
            b.table("orders").unwrap().len()
        );
        assert_ne!(qa.rows, qb.rows);
    }
}
