//! `tintin-tpch` — the TPC-H substrate of the TINTIN reproduction.
//!
//! The paper evaluates TINTIN on the TPC-H benchmark schema (its Figure 1)
//! with data sets of 1–5 GB and update files of 1–5 MB. This crate provides:
//!
//! * [`schema::TPCH_SCHEMA_SQL`] — the Figure-1 schema as `CREATE TABLE`
//!   DDL with keys and foreign keys;
//! * [`Dbgen`] — a deterministic, seedable `dbgen` stand-in with TPC-H row
//!   ratios per scale factor;
//! * [`UpdateGen`] — batches of tuple insertions/deletions of a target byte
//!   size, with a violation knob;
//! * [`sizing`] — byte accounting that maps the in-memory data to the
//!   paper's GB / MB axes.

pub mod assertions;
pub mod dbgen;
pub mod schema;
pub mod sizing;
pub mod update_gen;

pub use assertions::{assertion_sql, TPCH_ASSERTIONS};
pub use dbgen::{suppliers_of_part, Dbgen, TpchCounts};
pub use schema::{TPCH_SCHEMA_SQL, TPCH_TABLES};
pub use sizing::{database_bytes, human_bytes, pending_update_bytes, table_bytes};
pub use update_gen::{BatchStats, UpdateGen};
