//! The assertion suite used in the experiments ("assertions of different
//! complexity", paper §4): from a single-table selection to multi-hop
//! existential constraints over the Figure-1 schema.

/// `(name, CREATE ASSERTION sql)` pairs, ordered by increasing complexity.
pub const TPCH_ASSERTIONS: &[(&str, &str)] = &[
    // A1 — the paper's running example: every order has a line item.
    (
        "atLeastOneLineItem",
        "CREATE ASSERTION atLeastOneLineItem CHECK (NOT EXISTS (
             SELECT * FROM orders AS o
             WHERE NOT EXISTS (
                 SELECT * FROM lineitem AS l
                 WHERE l.l_orderkey = o.o_orderkey)))",
    ),
    // A2 — selection only: quantities in (0, 50].
    (
        "quantityInRange",
        "CREATE ASSERTION quantityInRange CHECK (NOT EXISTS (
             SELECT * FROM lineitem WHERE l_quantity <= 0 OR l_quantity > 50))",
    ),
    // A3 — inclusion dependency: line items reference existing orders.
    (
        "lineitemHasOrder",
        "CREATE ASSERTION lineitemHasOrder CHECK (NOT EXISTS (
             SELECT * FROM lineitem l
             WHERE NOT EXISTS (SELECT * FROM orders o
                               WHERE o.o_orderkey = l.l_orderkey)))",
    ),
    // A4 — two-column inclusion: line items reference existing partsupp.
    (
        "lineitemHasPartsupp",
        "CREATE ASSERTION lineitemHasPartsupp CHECK (NOT EXISTS (
             SELECT * FROM lineitem l
             WHERE NOT EXISTS (SELECT * FROM partsupp ps
                               WHERE ps.ps_partkey = l.l_partkey
                                 AND ps.ps_suppkey = l.l_suppkey)))",
    ),
    // A5 — union: no negative keys anywhere in orders/lineitem.
    (
        "nonNegativeKeys",
        "CREATE ASSERTION nonNegativeKeys CHECK (NOT EXISTS (
             SELECT o_orderkey FROM orders WHERE o_orderkey < 0
             UNION
             SELECT l_orderkey FROM lineitem WHERE l_orderkey < 0))",
    ),
    // A6 — derived predicate: every order has a line item with positive
    // quantity (negated subquery with an extra comparison).
    (
        "orderHasRealLine",
        "CREATE ASSERTION orderHasRealLine CHECK (NOT EXISTS (
             SELECT * FROM orders o
             WHERE NOT EXISTS (
                 SELECT * FROM lineitem l
                 WHERE l.l_orderkey = o.o_orderkey AND l.l_quantity > 0)))",
    ),
];

/// Just the SQL texts.
pub fn assertion_sql() -> Vec<&'static str> {
    TPCH_ASSERTIONS.iter().map(|(_, s)| *s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_assertions_parse() {
        for (name, text) in TPCH_ASSERTIONS {
            let stmt = tintin_sql::parse_statement(text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(matches!(stmt, tintin_sql::Statement::CreateAssertion(_)));
        }
    }

    #[test]
    fn generated_data_satisfies_all_assertions() {
        let db = crate::Dbgen::new(0.0004).generate();
        for (name, text) in TPCH_ASSERTIONS {
            let tintin_sql::Statement::CreateAssertion(a) =
                tintin_sql::parse_statement(text).unwrap()
            else {
                unreachable!()
            };
            for conj in a.condition.conjuncts() {
                if let tintin_sql::Expr::Exists {
                    query,
                    negated: true,
                } = conj
                {
                    let rs = db.query(query).unwrap();
                    assert!(rs.is_empty(), "{name} violated by generated data");
                }
            }
        }
    }
}
