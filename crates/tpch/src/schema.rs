//! The TPC-H schema of the paper's Figure 1.
//!
//! The figure shows a simplified TPC-H: eight tables with their keys and the
//! associations Region ←1:N— Nation ←1:N— {Supplier, Customer},
//! Customer ←1:N— Order ←1:N— LineItem —N:1→ PartSupp —N:1→ {Part, Supplier}.
//! Attribute names follow the TPC-H prefixes used in the paper's SQL
//! (`o_orderkey`, `l_orderkey`, …).

/// `CREATE TABLE` script for the Figure-1 schema.
pub const TPCH_SCHEMA_SQL: &str = "
CREATE TABLE region (
    r_regionkey INT PRIMARY KEY,
    r_name      VARCHAR(25) NOT NULL);

CREATE TABLE nation (
    n_nationkey INT PRIMARY KEY,
    n_name      VARCHAR(25) NOT NULL,
    n_regionkey INT NOT NULL REFERENCES region);

CREATE TABLE supplier (
    s_suppkey   INT PRIMARY KEY,
    s_name      VARCHAR(25) NOT NULL,
    s_nationkey INT NOT NULL REFERENCES nation);

CREATE TABLE customer (
    c_custkey   INT PRIMARY KEY,
    c_name      VARCHAR(25) NOT NULL,
    c_nationkey INT NOT NULL REFERENCES nation);

CREATE TABLE part (
    p_partkey   INT PRIMARY KEY,
    p_name      VARCHAR(55) NOT NULL);

CREATE TABLE partsupp (
    ps_partkey    INT NOT NULL REFERENCES part,
    ps_suppkey    INT NOT NULL REFERENCES supplier,
    ps_availqty   INT NOT NULL,
    ps_supplycost REAL NOT NULL,
    PRIMARY KEY (ps_partkey, ps_suppkey));

CREATE TABLE orders (
    o_orderkey   INT PRIMARY KEY,
    o_custkey    INT NOT NULL REFERENCES customer,
    o_totalprice REAL NOT NULL);

CREATE TABLE lineitem (
    l_orderkey   INT NOT NULL REFERENCES orders,
    l_linenumber INT NOT NULL,
    l_quantity   INT NOT NULL,
    l_partkey    INT NOT NULL,
    l_suppkey    INT NOT NULL,
    PRIMARY KEY (l_orderkey, l_linenumber),
    FOREIGN KEY (l_partkey, l_suppkey) REFERENCES partsupp (ps_partkey, ps_suppkey));
";

/// The eight base tables in FK-safe load order.
pub const TPCH_TABLES: [&str; 8] = [
    "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
];

#[cfg(test)]
mod tests {
    use super::*;
    use tintin_engine::Database;

    #[test]
    fn schema_installs() {
        let mut db = Database::new();
        db.execute_sql(TPCH_SCHEMA_SQL).unwrap();
        for t in TPCH_TABLES {
            assert!(db.table(t).is_some(), "missing {t}");
        }
        // lineitem has PK + two FKs; FK on l_orderkey gets an auto index.
        let li = db.table("lineitem").unwrap();
        assert!(li
            .indexes()
            .iter()
            .any(|ix| ix.columns == vec![0] && !ix.unique));
    }

    #[test]
    fn fk_metadata_resolved_to_positions() {
        let mut db = Database::new();
        db.execute_sql(TPCH_SCHEMA_SQL).unwrap();
        let li = db.table("lineitem").unwrap();
        assert_eq!(li.schema.foreign_keys.len(), 2);
        let fk_orders = &li.schema.foreign_keys[0];
        assert_eq!(fk_orders.ref_table, "orders");
        assert_eq!(fk_orders.columns, vec![0]);
        assert_eq!(fk_orders.ref_columns, vec![0]);
        let fk_ps = &li.schema.foreign_keys[1];
        assert_eq!(fk_ps.ref_table, "partsupp");
        assert_eq!(fk_ps.columns, vec![3, 4]);
        assert_eq!(fk_ps.ref_columns, vec![0, 1]);
    }
}
