//! Update-batch generator: synthesizes insertion/deletion workloads of a
//! target byte size against a captured TPC-H database (the paper's "1 MB to
//! 5 MB of tuple insertions/deletions").

use crate::dbgen::{suppliers_of_part, TpchCounts};
use crate::sizing::pending_update_bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use tintin_engine::{Database, Value};

/// Statistics of one generated batch.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchStats {
    pub orders_inserted: usize,
    pub lineitems_inserted: usize,
    pub orders_deleted: usize,
    pub lineitems_deleted: usize,
    /// Estimated bytes of the pending events after the batch.
    pub bytes: usize,
}

/// Generates update batches with fresh keys and valid references.
#[derive(Debug, Clone)]
pub struct UpdateGen {
    counts: TpchCounts,
    rng: StdRng,
    next_order: i64,
    /// Orders already deleted, stranded or repriced in this session —
    /// excluded from further operations so batches stay conflict-free.
    touched_orders: BTreeSet<i64>,
}

impl UpdateGen {
    pub fn new(counts: TpchCounts, seed: u64) -> Self {
        UpdateGen {
            counts,
            rng: StdRng::seed_from_u64(seed),
            next_order: counts.orders + 1,
            touched_orders: BTreeSet::new(),
        }
    }

    fn fresh_order_key(&mut self) -> i64 {
        let k = self.next_order;
        self.next_order += 1;
        k
    }

    fn random_existing_order(&mut self) -> Option<i64> {
        for _ in 0..64 {
            let k = self.rng.gen_range(1..=self.counts.orders);
            if !self.touched_orders.contains(&k) {
                return Some(k);
            }
        }
        None
    }

    fn random_part_supp(&mut self) -> (i64, i64) {
        let p = self.rng.gen_range(1..=self.counts.parts);
        let pick = self
            .rng
            .gen_range(0..self.counts.partsupps_per_part.min(self.counts.suppliers))
            as usize;
        let s = suppliers_of_part(&self.counts, p)
            .nth(pick)
            .expect("pick in range");
        (p, s)
    }

    /// Insert one new order with `nlines` lineitems (valid references).
    pub fn insert_order(&mut self, db: &mut Database, nlines: i64) -> BatchStats {
        let mut stats = BatchStats::default();
        let o = self.fresh_order_key();
        let cust = self.rng.gen_range(1..=self.counts.customers);
        let price = (self.rng.gen_range(1_000..5_000_000) as f64) / 100.0;
        db.insert_rows(
            "orders",
            vec![vec![Value::Int(o), Value::Int(cust), Value::real(price)]],
        )
        .unwrap();
        stats.orders_inserted += 1;
        let mut lines = Vec::new();
        for ln in 1..=nlines {
            let (p, s) = self.random_part_supp();
            lines.push(vec![
                Value::Int(o),
                Value::Int(ln),
                Value::Int(self.rng.gen_range(1..=50)),
                Value::Int(p),
                Value::Int(s),
            ]);
        }
        stats.lineitems_inserted += lines.len();
        db.insert_rows("lineitem", lines).unwrap();
        stats
    }

    /// Insert one order with **no** lineitems — violates the running
    /// example's assertion.
    pub fn insert_empty_order(&mut self, db: &mut Database) -> BatchStats {
        let mut stats = BatchStats::default();
        let o = self.fresh_order_key();
        let cust = self.rng.gen_range(1..=self.counts.customers);
        db.insert_rows(
            "orders",
            vec![vec![Value::Int(o), Value::Int(cust), Value::real(1.0)]],
        )
        .unwrap();
        stats.orders_inserted += 1;
        stats
    }

    /// Delete one random existing order together with all its lineitems
    /// (assertion-preserving).
    pub fn delete_whole_order(&mut self, db: &mut Database) -> BatchStats {
        let mut stats = BatchStats::default();
        let Some(o) = self.random_existing_order() else {
            return stats;
        };
        self.touched_orders.insert(o);
        let n = db
            .execute_sql(&format!("DELETE FROM lineitem WHERE l_orderkey = {o}"))
            .unwrap();
        if let tintin_engine::StatementResult::RowsAffected(k) = n[0] {
            stats.lineitems_deleted += k;
        }
        db.execute_sql(&format!("DELETE FROM orders WHERE o_orderkey = {o}"))
            .unwrap();
        stats.orders_deleted += 1;
        stats
    }

    /// Delete all lineitems of a random order but keep the order — violates
    /// the running example's assertion.
    pub fn strand_order(&mut self, db: &mut Database) -> BatchStats {
        let mut stats = BatchStats::default();
        let Some(o) = self.random_existing_order() else {
            return stats;
        };
        self.touched_orders.insert(o); // don't reuse it
        let n = db
            .execute_sql(&format!("DELETE FROM lineitem WHERE l_orderkey = {o}"))
            .unwrap();
        if let tintin_engine::StatementResult::RowsAffected(k) = n[0] {
            stats.lineitems_deleted += k;
        }
        stats
    }

    /// Reprice one random existing order via UPDATE (delete+insert events).
    pub fn reprice_order(&mut self, db: &mut Database) -> BatchStats {
        let stats = BatchStats::default();
        let Some(o) = self.random_existing_order() else {
            return stats;
        };
        self.touched_orders.insert(o); // one event pair per order and batch
        let price = (self.rng.gen_range(1_000..5_000_000) as f64) / 100.0;
        db.execute_sql(&format!(
            "UPDATE orders SET o_totalprice = {price} WHERE o_orderkey = {o}"
        ))
        .unwrap();
        stats
    }

    /// Generate a violation-free batch of roughly `target_bytes` of events:
    /// a mix of order insertions (with lines), whole-order deletions and
    /// repricing updates.
    pub fn valid_batch(&mut self, db: &mut Database, target_bytes: usize) -> BatchStats {
        let mut stats = BatchStats::default();
        while pending_update_bytes(db) < target_bytes {
            let roll = self.rng.gen_range(0..100);
            let s = if roll < 65 {
                let nlines = self.rng.gen_range(1..=4);
                self.insert_order(db, nlines)
            } else if roll < 85 {
                self.delete_whole_order(db)
            } else {
                self.reprice_order(db)
            };
            stats = merge(stats, s);
        }
        stats.bytes = pending_update_bytes(db);
        stats
    }

    /// A batch like [`Self::valid_batch`] plus `violations` updates that each
    /// violate the atLeastOneLineItem assertion.
    pub fn violating_batch(
        &mut self,
        db: &mut Database,
        target_bytes: usize,
        violations: usize,
    ) -> BatchStats {
        let mut stats = self.valid_batch(db, target_bytes);
        for i in 0..violations {
            let s = if i % 2 == 0 {
                self.insert_empty_order(db)
            } else {
                self.strand_order(db)
            };
            stats = merge(stats, s);
        }
        stats.bytes = pending_update_bytes(db);
        stats
    }
}

fn merge(a: BatchStats, b: BatchStats) -> BatchStats {
    BatchStats {
        orders_inserted: a.orders_inserted + b.orders_inserted,
        lineitems_inserted: a.lineitems_inserted + b.lineitems_inserted,
        orders_deleted: a.orders_deleted + b.orders_deleted,
        lineitems_deleted: a.lineitems_deleted + b.lineitems_deleted,
        bytes: a.bytes.max(b.bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgen::Dbgen;
    use crate::schema::TPCH_TABLES;

    fn captured_db(sf: f64) -> (Database, TpchCounts) {
        let gen = Dbgen::new(sf);
        let mut db = gen.generate();
        for t in TPCH_TABLES {
            db.enable_capture(t).unwrap();
        }
        (db, gen.counts())
    }

    #[test]
    fn valid_batch_hits_target_size() {
        let (mut db, counts) = captured_db(0.0005);
        let mut ug = UpdateGen::new(counts, 7);
        let stats = ug.valid_batch(&mut db, 10_000);
        assert!(stats.bytes >= 10_000);
        assert!(stats.orders_inserted > 0);
        let (ins, del) = db.pending_counts();
        assert!(ins + del > 0);
    }

    #[test]
    fn valid_batch_preserves_assertion_after_apply() {
        let (mut db, counts) = captured_db(0.0005);
        let mut ug = UpdateGen::new(counts, 11);
        ug.valid_batch(&mut db, 5_000);
        db.normalize_events().unwrap();
        db.apply_pending().unwrap();
        let empty_orders = db
            .query_sql(
                "SELECT * FROM orders o WHERE NOT EXISTS (
                     SELECT * FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)",
            )
            .unwrap();
        assert!(
            empty_orders.is_empty(),
            "valid batch must keep the assertion"
        );
    }

    #[test]
    fn violating_batch_breaks_assertion_after_apply() {
        let (mut db, counts) = captured_db(0.0005);
        let mut ug = UpdateGen::new(counts, 13);
        ug.violating_batch(&mut db, 2_000, 3);
        db.normalize_events().unwrap();
        db.apply_pending().unwrap();
        let empty_orders = db
            .query_sql(
                "SELECT * FROM orders o WHERE NOT EXISTS (
                     SELECT * FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)",
            )
            .unwrap();
        assert!(!empty_orders.is_empty());
    }

    #[test]
    fn batches_are_deterministic_per_seed() {
        let (mut db1, counts) = captured_db(0.0004);
        let (mut db2, _) = captured_db(0.0004);
        let s1 = UpdateGen::new(counts, 99).valid_batch(&mut db1, 4_000);
        let s2 = UpdateGen::new(counts, 99).valid_batch(&mut db2, 4_000);
        assert_eq!(s1.orders_inserted, s2.orders_inserted);
        assert_eq!(s1.lineitems_inserted, s2.lineitems_inserted);
    }
}
