//! Unified error type for the TINTIN public API.

use std::fmt;

/// Any failure in the install / check / commit pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum TintinError {
    /// SQL parsing failed.
    Parse(String),
    /// The statement was not a `CREATE ASSERTION`.
    NotAnAssertion(String),
    /// Assertion → denial translation failed (outside the fragment,
    /// unknown tables/columns, unsafe variables, …).
    Translate(String),
    /// EDC generation failed (expansion bounds).
    Edc(String),
    /// SQL view generation failed.
    SqlGen(String),
    /// Engine-level failure (catalog, DML, evaluation).
    Engine(tintin_engine::EngineError),
    /// An assertion with this name is already installed.
    DuplicateAssertion(String),
    /// The installation rejects the current database state (violated before
    /// any update).
    InitialStateViolated {
        /// The assertion the current state violates.
        assertion: String,
        /// Number of violating rows found.
        rows: usize,
    },
}

impl fmt::Display for TintinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TintinError::Parse(m) => write!(f, "parse error: {m}"),
            TintinError::NotAnAssertion(m) => {
                write!(f, "expected CREATE ASSERTION, got: {m}")
            }
            TintinError::Translate(m) => write!(f, "{m}"),
            TintinError::Edc(m) => write!(f, "{m}"),
            TintinError::SqlGen(m) => write!(f, "{m}"),
            TintinError::Engine(e) => write!(f, "{e}"),
            TintinError::DuplicateAssertion(n) => {
                write!(f, "assertion '{n}' is already installed")
            }
            TintinError::InitialStateViolated { assertion, rows } => write!(
                f,
                "database already violates assertion '{assertion}' ({rows} violating rows)"
            ),
        }
    }
}

impl std::error::Error for TintinError {}

impl From<tintin_engine::EngineError> for TintinError {
    fn from(e: tintin_engine::EngineError) -> Self {
        TintinError::Engine(e)
    }
}

impl From<tintin_sql::ParseError> for TintinError {
    fn from(e: tintin_sql::ParseError) -> Self {
        TintinError::Parse(e.to_string())
    }
}

impl From<tintin_logic::TranslateError> for TintinError {
    fn from(e: tintin_logic::TranslateError) -> Self {
        TintinError::Translate(e.to_string())
    }
}

impl From<tintin_logic::EdcError> for TintinError {
    fn from(e: tintin_logic::EdcError) -> Self {
        TintinError::Edc(e.to_string())
    }
}

impl From<tintin_sqlgen::SqlGenError> for TintinError {
    fn from(e: tintin_sqlgen::SqlGenError) -> Self {
        TintinError::SqlGen(e.to_string())
    }
}

/// Result alias for the public API.
pub type Result<T> = std::result::Result<T, TintinError>;
