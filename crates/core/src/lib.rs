//! `tintin` — incremental integrity checking of SQL assertions.
//!
//! A Rust reproduction of *TINTIN: a Tool for INcremental INTegrity checking
//! of Assertions in SQL Server* (EDBT 2016). Given a database and a set of
//! SQL `CREATE ASSERTION` statements, [`Tintin::install`] rewrites each
//! assertion into a set of incremental SQL views over auxiliary event tables
//! (`ins_T` / `del_T`), and [`Tintin::safe_commit`] implements the paper's
//! `safeCommit` procedure: it checks the views against the pending update
//! and either commits the update or reports the violating tuples.
//!
//! The pipeline (paper §2): assertions → logic denials → Event Dependency
//! Constraints (EDCs) → standard SQL queries. Efficiency comes from checking
//! only the assertions that the update can violate (the emptiness shortcut
//! over event tables) and joining the update with the current data instead
//! of re-evaluating the assertion from scratch.
//!
//! ```
//! use tintin_engine::Database;
//! use tintin::{Tintin, CommitOutcome};
//!
//! let mut db = Database::new();
//! db.execute_sql(
//!     "CREATE TABLE orders (o_orderkey INT PRIMARY KEY);
//!      CREATE TABLE lineitem (
//!          l_orderkey INT REFERENCES orders, l_linenumber INT,
//!          PRIMARY KEY (l_orderkey, l_linenumber));",
//! ).unwrap();
//!
//! let tintin = Tintin::new();
//! let installation = tintin.install(&mut db, &[
//!     "CREATE ASSERTION atLeastOneLineItem CHECK (NOT EXISTS (
//!          SELECT * FROM orders o WHERE NOT EXISTS (
//!              SELECT * FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)))",
//! ]).unwrap();
//!
//! // An order without a line item is rejected…
//! db.execute_sql("INSERT INTO orders VALUES (1)").unwrap();
//! let outcome = tintin.safe_commit(&mut db, &installation).unwrap();
//! assert!(matches!(outcome, CommitOutcome::Rejected { .. }));
//!
//! // …an order with a line item commits.
//! db.execute_sql("INSERT INTO orders VALUES (1); INSERT INTO lineitem VALUES (1, 1);")
//!     .unwrap();
//! let outcome = tintin.safe_commit(&mut db, &installation).unwrap();
//! assert!(matches!(outcome, CommitOutcome::Committed { .. }));
//! assert_eq!(db.table("orders").unwrap().len(), 1);
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod fk;

pub use error::{Result, TintinError};
pub use fk::assertions_from_foreign_keys;
pub use tintin_logic::{ColPredicate, EdcConfig, OptimizerConfig, ResidualGate};

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::time::{Duration, Instant};
use tintin_engine::{
    del_table_name, ins_table_name, Database, NormalizationReport, PreparedQuery, ResultSet,
    TxOverlay, Value,
};
use tintin_logic::{CmpOp, EdcGenerator, Konst, Registry, SchemaCatalog};
use tintin_sql as sql;
use tintin_sqlgen::GeneratedView;

/// Top-level configuration.
#[derive(Debug, Clone, Copy)]
pub struct TintinConfig {
    /// EDC generation switches (optimizations, FK pruning).
    pub edc: EdcConfig,
    /// Skip views whose gating event tables are empty (paper §2: queries
    /// joining an empty event table are "immediately discarded").
    pub emptiness_shortcut: bool,
    /// Verify at install time that the current database satisfies the
    /// assertions (the EDC method assumes a consistent old state).
    pub check_initial_state: bool,
    /// Accept assertions with aggregates (the paper's stated future work)
    /// in *fallback* mode: they are checked by re-running the original
    /// query on the hypothetically-updated state, but only when the pending
    /// update touches one of the assertion's tables — so the emptiness
    /// shortcut still applies even though the check itself is not
    /// incremental.
    pub aggregate_fallback: bool,
}

impl Default for TintinConfig {
    fn default() -> Self {
        TintinConfig {
            edc: EdcConfig::default(),
            emptiness_shortcut: true,
            check_initial_state: true,
            aggregate_fallback: true,
        }
    }
}

/// The TINTIN tool.
#[derive(Debug, Clone, Default)]
pub struct Tintin {
    /// Configuration applied by `install` and every check.
    pub config: TintinConfig,
}

/// One installed assertion with its provenance.
#[derive(Debug, Clone)]
pub struct InstalledAssertion {
    /// Assertion name (lower-cased at parse time).
    pub name: String,
    /// Original `CREATE ASSERTION` text.
    pub source_sql: String,
    /// The queries inside the assertion's `NOT EXISTS` clauses — the
    /// non-incremental checks used by the baseline.
    pub original_queries: Vec<sql::Query>,
    /// Number of logic denials the assertion translated into.
    pub denial_count: usize,
    /// Number of Event Dependency Constraints generated from the denials.
    pub edc_count: usize,
    /// Names of the incremental violation views installed for it.
    pub view_names: Vec<String>,
    /// EDC bodies the install-time analysis proved unsatisfiable and
    /// dropped before SQL generation.
    pub edc_pruned: usize,
    /// One human-readable line per pruned body (rule + body text).
    pub prune_reasons: Vec<String>,
    /// The linter's verdict on this assertion.
    pub class: AssertionClass,
    /// Linter warnings surfaced in the `CREATE ASSERTION` outcome (e.g.
    /// "this assertion can never be violated").
    pub warnings: Vec<String>,
}

/// The assertion linter's classification, derived from the install-time
/// constraint analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssertionClass {
    /// Ordinary assertion: satisfiable denials, all event rules kept.
    Normal,
    /// Some (not all) event rules were proved unsatisfiable and pruned.
    PartiallyPruned,
    /// The denials are satisfiable, but *every* event rule was pruned: no
    /// update can introduce a violation (given a consistent old state, the
    /// assertion never fires).
    NeverFires,
    /// The assertion's own condition is unsatisfiable: no database state
    /// violates it, so it is trivially true (tautological).
    Tautological,
    /// Aggregate assertion, checked by gated re-execution of the original
    /// query rather than incremental event rules.
    AggregateFallback,
}

impl fmt::Display for AssertionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AssertionClass::Normal => "normal",
            AssertionClass::PartiallyPruned => "partially-pruned",
            AssertionClass::NeverFires => "never-fires",
            AssertionClass::Tautological => "tautological",
            AssertionClass::AggregateFallback => "aggregate-fallback",
        })
    }
}

impl AssertionClass {
    /// Parse the wire/CLI name produced by `Display`.
    pub fn parse(s: &str) -> Option<AssertionClass> {
        Some(match s {
            "normal" => AssertionClass::Normal,
            "partially-pruned" => AssertionClass::PartiallyPruned,
            "never-fires" => AssertionClass::NeverFires,
            "tautological" => AssertionClass::Tautological,
            "aggregate-fallback" => AssertionClass::AggregateFallback,
            _ => return None,
        })
    }
}

/// One installed view, as reported by `EXPLAIN ASSERTION`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewExplain {
    /// View name.
    pub name: String,
    /// Emptiness-shortcut gate: `(is_insertion, base table)`.
    pub gate: Vec<(bool, String)>,
    /// Rendered residual gates ("ins_t where a < 0"), one per gated event
    /// atom; empty when the analysis found no refining predicates.
    pub residual: Vec<String>,
}

/// The full `EXPLAIN ASSERTION` report of one installed assertion.
#[derive(Debug, Clone, PartialEq)]
pub struct AssertionExplain {
    /// Assertion name.
    pub name: String,
    /// Linter classification.
    pub class: AssertionClass,
    /// Number of logic denials.
    pub denial_count: usize,
    /// Event rules installed (incremental views).
    pub edc_count: usize,
    /// Event rules proved unsatisfiable and pruned.
    pub edc_pruned: usize,
    /// One line per pruned body (rule + body text).
    pub prune_reasons: Vec<String>,
    /// Per-view gates and residual predicates.
    pub views: Vec<ViewExplain>,
    /// Linter warnings.
    pub warnings: Vec<String>,
}

/// An assertion checked in fallback mode (aggregates): the original query
/// re-runs on the updated state whenever the pending update touches one of
/// the referenced tables.
#[derive(Debug, Clone)]
pub struct FallbackCheck {
    /// The assertion this fallback belongs to.
    pub assertion: String,
    /// The original queries re-run on the hypothetically updated state.
    pub queries: Vec<sql::Query>,
    /// Tables whose events make the check necessary.
    pub tables: Vec<String>,
    /// Prepared plans for `queries`, compiled at install time (one per
    /// query, in order).
    plans: Vec<PreparedQuery>,
}

/// Handle to an installed set of assertions.
#[derive(Debug, Clone)]
pub struct Installation {
    /// The assertions of this installation, with provenance.
    pub assertions: Vec<InstalledAssertion>,
    views: Vec<GeneratedView>,
    /// Prepared plans for the views, compiled once at install time
    /// (parallel to `views`). Re-compilation after DDL is transparent and
    /// accounted in [`CheckStats::plans_recompiled`].
    plans: Vec<PreparedQuery>,
    /// Aggregate assertions checked non-incrementally (with event gating).
    pub fallbacks: Vec<FallbackCheck>,
    /// Human-readable denial forms, for demos and docs.
    pub denial_texts: Vec<String>,
    /// Table → views relevance index (see [`RelevanceIndex`]).
    relevance: RelevanceIndex,
    /// Base-table column names captured at install time, for rendering
    /// residual gates in `EXPLAIN ASSERTION`.
    table_columns: BTreeMap<String, Vec<String>>,
}

/// The table → check dependency index behind the emptiness shortcut.
///
/// Every incremental view carries a *gate*: the set of event tables that
/// must all be non-empty for the view to possibly return rows (each view
/// joins its gating events positively). Indexing views by their first gate
/// entry turns the commit-time check loop inside out: instead of consulting
/// the gate of every installed view on every commit — O(installed checks) —
/// the checker looks up only the event tables the pending update actually
/// touched and gets the candidate views back, making the write-locked
/// critical section O(touched checks). This is the "relevance" idea of
/// simplified integrity checking: constraints over relations the update
/// does not mention cannot be violated by it.
#[derive(Debug, Clone, Default)]
struct RelevanceIndex {
    /// First gate entry's base table → view indices, bucketed by event
    /// kind. A view whose first gate entry has no pending events has a
    /// closed gate, so each view needs exactly one home; candidates still
    /// verify their full gate (gates are conjunctions). The commit path
    /// looks up only the *touched* tables, never iterating the installed
    /// set.
    by_table: BTreeMap<String, GateBuckets>,
    /// Views with no gating event table — always candidates (defensive:
    /// the EDC generator always emits at least one positive event atom).
    ungated: Vec<usize>,
}

/// Views homed under one base table, split by which event kind gates them.
#[derive(Debug, Clone, Default)]
struct GateBuckets {
    /// Views whose first gate entry is `ins_<table>`.
    ins: Vec<usize>,
    /// Views whose first gate entry is `del_<table>`.
    del: Vec<usize>,
}

impl RelevanceIndex {
    fn build(views: &[GeneratedView]) -> Self {
        let mut idx = RelevanceIndex::default();
        for (i, v) in views.iter().enumerate() {
            match v.gate.first() {
                Some((is_ins, table)) => {
                    let buckets = idx.by_table.entry(table.clone()).or_default();
                    if *is_ins {
                        buckets.ins.push(i);
                    } else {
                        buckets.del.push(i);
                    }
                }
                None => idx.ungated.push(i),
            }
        }
        idx
    }
}

/// The event tables actually holding pending rows, computed once per
/// commit ([`TouchedEvents::scan`]) and consulted by every installation's
/// relevance index instead of re-probing the database per view.
#[derive(Debug, Clone, Default)]
pub struct TouchedEvents {
    ins: BTreeSet<String>,
    del: BTreeSet<String>,
}

impl TouchedEvents {
    /// Scan the captured tables' event tables for pending rows (one cheap
    /// engine pass; see [`Database::touched_event_tables`]).
    ///
    /// For gating [`Tintin::check_normalized`], scan *after*
    /// [`Database::normalize_events`]: gating must reflect the events the
    /// check will actually see (normalization can empty an event table,
    /// which closes its gates). [`TouchedEvents::from_list`] over
    /// [`Database::normalize_events_touched`]'s result does both in one
    /// pass.
    pub fn scan(db: &Database) -> Self {
        Self::from_list(&db.touched_event_tables())
    }

    /// Build from an engine touched list (the shape
    /// [`Database::normalize_events_touched`] returns), avoiding a second
    /// scan of the captured set.
    pub fn from_list(list: &[tintin_engine::TouchedTable]) -> Self {
        let mut t = TouchedEvents::default();
        for (has_ins, has_del, base) in list {
            if *has_ins {
                t.ins.insert(base.clone());
            }
            if *has_del {
                t.del.insert(base.clone());
            }
        }
        t
    }

    /// Iterate the touched event tables as `(is_insertion, base table)`.
    pub fn iter(&self) -> impl Iterator<Item = (bool, &str)> + '_ {
        self.ins
            .iter()
            .map(|t| (true, t.as_str()))
            .chain(self.del.iter().map(|t| (false, t.as_str())))
    }

    /// Are there pending insertion (`is_ins`) or deletion events for
    /// `table`?
    pub fn contains(&self, is_ins: bool, table: &str) -> bool {
        if is_ins {
            self.ins.contains(table)
        } else {
            self.del.contains(table)
        }
    }

    /// Does the pending update touch `table` at all (either event kind)?
    pub fn touches_table(&self, table: &str) -> bool {
        self.ins.contains(table) || self.del.contains(table)
    }

    /// No pending events anywhere?
    pub fn is_empty(&self) -> bool {
        self.ins.is_empty() && self.del.is_empty()
    }
}

impl Installation {
    /// The generated incremental views (one per EDC).
    pub fn views(&self) -> &[GeneratedView] {
        &self.views
    }

    /// Number of generated incremental views.
    pub fn view_count(&self) -> usize {
        self.views.len()
    }

    /// Keep only the views satisfying the predicate (used when a single
    /// assertion is dropped from an installation). Prepared plans follow
    /// their views, and the relevance index is rebuilt.
    pub fn retain_views(&mut self, f: impl FnMut(&GeneratedView) -> bool) {
        let keep: Vec<bool> = self.views.iter().map(f).collect();
        let mut it = keep.iter();
        self.views.retain(|_| *it.next().unwrap());
        let mut it = keep.iter();
        self.plans.retain(|_| *it.next().unwrap());
        self.relevance = RelevanceIndex::build(&self.views);
    }

    /// The linter/analysis report of one installed assertion, by name —
    /// the data behind `EXPLAIN ASSERTION`.
    pub fn explain_assertion(&self, name: &str) -> Option<AssertionExplain> {
        let a = self.assertions.iter().find(|a| a.name == name)?;
        let views = self
            .views
            .iter()
            .filter(|v| v.assertion == a.name)
            .map(|v| ViewExplain {
                name: v.name.clone(),
                gate: v.gate.clone(),
                residual: v
                    .residual
                    .iter()
                    .filter(|g| !g.preds.is_empty())
                    .map(|g| self.render_residual(g))
                    .collect(),
            })
            .collect();
        Some(AssertionExplain {
            name: a.name.clone(),
            class: a.class,
            denial_count: a.denial_count,
            edc_count: a.edc_count,
            edc_pruned: a.edc_pruned,
            prune_reasons: a.prune_reasons.clone(),
            views,
            warnings: a.warnings.clone(),
        })
    }

    /// Render one residual gate against the column names captured at
    /// install time.
    fn render_residual(&self, gate: &ResidualGate) -> String {
        let cols = self
            .table_columns
            .get(&gate.table)
            .cloned()
            .unwrap_or_default();
        let prefix = if gate.is_ins { "ins_" } else { "del_" };
        let preds: Vec<String> = gate.preds.iter().map(|p| p.display(&cols)).collect();
        format!("{prefix}{} where {}", gate.table, preds.join(" and "))
    }

    /// The base tables whose events can trigger checks of this
    /// installation, with the number of dependent checks (views and
    /// fallbacks) per table — the relevance index, summarized.
    pub fn table_dependencies(&self) -> BTreeMap<String, usize> {
        let mut out: BTreeMap<String, usize> = BTreeMap::new();
        for v in &self.views {
            let mut seen = BTreeSet::new();
            for (_, table) in &v.gate {
                if seen.insert(table.clone()) {
                    *out.entry(table.clone()).or_default() += 1;
                }
            }
        }
        for f in &self.fallbacks {
            for table in &f.tables {
                *out.entry(table.clone()).or_default() += 1;
            }
        }
        out
    }

    /// Export everything TINTIN generated as a portable SQL script: the
    /// event tables and the violation views, with the source assertions as
    /// comments. The paper stresses that the incremental queries are
    /// standard SQL usable "on any relational DBMS"; this script is that
    /// artifact (triggers and the safeCommit procedure remain
    /// vendor-specific and are left to the target system).
    pub fn export_sql(&self, db: &Database) -> String {
        let mut out = String::new();
        out.push_str(
            "-- Generated by tintin-rs: incremental integrity checking views
",
        );
        out.push_str(
            "-- (EDBT 2016, \"TINTIN: a Tool for INcremental INTegrity checking\")

",
        );
        out.push_str(
            "-- Event tables (populate via INSTEAD OF triggers or application code):
",
        );
        for t in db.captured_tables() {
            let base = db.table(&t).expect("captured table exists");
            for prefix in ["ins_", "del_"] {
                let cols: Vec<String> = base
                    .schema
                    .columns
                    .iter()
                    .map(|c| format!("{} {}", c.name, c.ty))
                    .collect();
                out.push_str(&format!(
                    "CREATE TABLE {prefix}{t} ({});
",
                    cols.join(", ")
                ));
            }
        }
        out.push('\n');
        for a in &self.assertions {
            out.push_str(&format!(
                "-- assertion {}:
",
                a.name
            ));
            for line in a.source_sql.lines() {
                out.push_str(&format!(
                    "--   {}
",
                    line.trim()
                ));
            }
            for v in self.views.iter().filter(|v| v.assertion == a.name) {
                out.push_str(&v.sql_text);
                out.push_str(
                    ";
",
                );
            }
            if self.fallbacks.iter().any(|f| f.assertion == a.name) {
                out.push_str(
                    "--   (aggregate assertion: checked by re-running the original                      query, no incremental view)
",
                );
            }
            out.push('\n');
        }
        out
    }
}

/// Violating tuples reported by a check.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The violated assertion.
    pub assertion: String,
    /// The incremental view (or fallback query) that reported the tuples.
    pub view: String,
    /// The violating tuples themselves.
    pub rows: ResultSet,
}

/// Statistics of one incremental check.
#[derive(Debug, Clone, Default)]
pub struct CheckStats {
    /// What event normalization removed (paper §2 preconditions).
    pub normalization: NormalizationReport,
    /// Incremental views installed in total.
    pub views_total: usize,
    /// Views skipped by the emptiness shortcut (a gating event table was
    /// empty). Includes the relevance-skipped views.
    pub views_skipped: usize,
    /// Views skipped by the relevance index without even consulting their
    /// gate: no pending event table mapped to them at all (a subset of
    /// `views_skipped`).
    pub views_skipped_relevance: usize,
    /// Views whose event tables were non-empty but where a residual gate
    /// found no qualifying event row, so the full plan was skipped (a
    /// subset of `views_skipped`).
    pub views_skipped_residual: usize,
    /// Views actually evaluated.
    pub views_evaluated: usize,
    /// Prepared plans executed from the cache (no recompilation).
    pub plans_reused: usize,
    /// Prepared plans recompiled because the catalog generation moved
    /// since they were cached (DDL between commits).
    pub plans_recompiled: usize,
    /// Aggregate-fallback assertions skipped (no relevant events).
    pub fallbacks_skipped: usize,
    /// Aggregate-fallback assertions evaluated.
    pub fallbacks_evaluated: usize,
    /// Time spent evaluating views and fallbacks (excludes normalization
    /// and commit).
    pub check_time: Duration,
}

/// Result of `safeCommit`.
#[derive(Debug, Clone)]
pub enum CommitOutcome {
    /// No violation: the update was applied and the event tables truncated.
    Committed {
        /// Rows inserted into base tables (after normalization).
        inserted: usize,
        /// Rows deleted from base tables (after normalization).
        deleted: usize,
        /// Check statistics.
        stats: CheckStats,
    },
    /// Violations found: the update was discarded (events truncated) and the
    /// violating tuples are reported.
    Rejected {
        /// The violating tuples per assertion/view.
        violations: Vec<Violation>,
        /// Check statistics.
        stats: CheckStats,
    },
}

impl CommitOutcome {
    /// Did the update pass every assertion and get applied?
    pub fn is_committed(&self) -> bool {
        matches!(self, CommitOutcome::Committed { .. })
    }

    /// Check statistics, whichever way the commit went.
    pub fn stats(&self) -> &CheckStats {
        match self {
            CommitOutcome::Committed { stats, .. } | CommitOutcome::Rejected { stats, .. } => stats,
        }
    }
}

/// Result of the non-incremental baseline check.
#[derive(Debug, Clone)]
pub struct FullRecheckOutcome {
    /// Did the update pass (and stay applied)?
    pub committed: bool,
    /// Violating tuples found on the updated state.
    pub violations: Vec<Violation>,
    /// Time spent running the original assertion queries on the updated
    /// state (the paper's non-incremental comparator).
    pub query_time: Duration,
}

impl Tintin {
    /// A checker with the default configuration.
    pub fn new() -> Self {
        Tintin::default()
    }

    /// A checker with an explicit configuration.
    pub fn with_config(config: TintinConfig) -> Self {
        Tintin { config }
    }

    /// Build the logic-layer catalog from the engine's schema, excluding
    /// event tables.
    pub fn catalog_of(db: &Database) -> SchemaCatalog {
        let mut cat = SchemaCatalog::new();
        for name in db.table_names() {
            if db.is_event_table(&name) {
                continue;
            }
            let t = db.table(&name).expect("listed table exists");
            let mut info = tintin_logic::TableInfo::new(
                t.schema.columns.iter().map(|c| c.name.clone()).collect(),
            );
            info.primary_key = t.schema.primary_key.clone();
            info.foreign_keys = t
                .schema
                .foreign_keys
                .iter()
                .map(|fk| tintin_logic::FkInfo {
                    columns: fk.columns.clone(),
                    ref_table: fk.ref_table.clone(),
                    ref_columns: fk.ref_columns.clone(),
                })
                .collect();
            cat.add_table(name, info);
        }
        cat
    }

    /// Install assertions: create event tables and capture (the trigger
    /// equivalent) for every base table, rewrite the assertions into
    /// incremental views, and store the views in the database.
    ///
    /// Installation is atomic: on any failure (untranslatable assertion,
    /// initial state violated, …) every view created and every capture
    /// enabled by this call is removed again, so a failed install leaves
    /// the database exactly as it was.
    pub fn install(&self, db: &mut Database, assertions: &[&str]) -> Result<Installation> {
        // Parse everything first.
        let mut parsed: Vec<(sql::CreateAssertion, String)> = Vec::new();
        for text in assertions {
            let stmt = sql::parse_statement(text)?;
            match stmt {
                sql::Statement::CreateAssertion(a) => parsed.push((a, text.to_string())),
                other => return Err(TintinError::NotAnAssertion(other.to_string())),
            }
        }
        for (i, (a, _)) in parsed.iter().enumerate() {
            if parsed[..i].iter().any(|(b, _)| b.name == a.name) {
                return Err(TintinError::DuplicateAssertion(a.name.clone()));
            }
        }

        let cat = Self::catalog_of(db);

        // Enable capture for all base tables (the paper builds event tables
        // for every table of the target database), remembering which ones
        // this call enabled so a failure can roll them back.
        let base_tables: Vec<String> = db
            .table_names()
            .into_iter()
            .filter(|t| !db.is_event_table(t))
            .collect();
        let mut newly_captured: Vec<String> = Vec::new();
        for t in &base_tables {
            if !db.is_captured(t) {
                if let Err(e) = db.enable_capture(t) {
                    for c in &newly_captured {
                        let _ = db.disable_capture(c);
                    }
                    return Err(e.into());
                }
                newly_captured.push(t.clone());
            }
        }

        let mut created_views: Vec<String> = Vec::new();
        match self.install_rewrites(db, &cat, &parsed, &mut created_views) {
            Ok(installation) => Ok(installation),
            Err(e) => {
                for v in &created_views {
                    let _ = db.drop_view(v, true);
                }
                for c in &newly_captured {
                    let _ = db.disable_capture(c);
                }
                Err(e)
            }
        }
    }

    /// The fallible tail of [`Tintin::install`]: rewrite the assertions,
    /// store the views (recording each created name in `created_views` for
    /// the caller's cleanup) and verify the initial state.
    fn install_rewrites(
        &self,
        db: &mut Database,
        cat: &SchemaCatalog,
        parsed: &[(sql::CreateAssertion, String)],
        created_views: &mut Vec<String>,
    ) -> Result<Installation> {
        // Rewrite each assertion.
        let mut reg = Registry::new();
        let mut installed = Vec::new();
        let mut all_views = Vec::new();
        let mut denial_texts = Vec::new();
        let mut fallbacks = Vec::new();
        for (assertion, source_sql) in parsed {
            let denials = match tintin_logic::translate_assertion(cat, &mut reg, assertion) {
                Ok(d) => d,
                Err(e)
                    if self.config.aggregate_fallback
                        && (e.message.contains("aggregate") || e.message.contains("GROUP BY")) =>
                {
                    // Aggregates: fall back to gated re-execution of the
                    // original query (the paper's future work, handled
                    // pragmatically).
                    let queries = split_assertion_queries(&assertion.condition)?;
                    let mut tables = Vec::new();
                    for q in &queries {
                        collect_query_tables(q, &mut tables);
                    }
                    tables.retain(|t| db.table(t).is_some());
                    tables.sort();
                    tables.dedup();
                    installed.push(InstalledAssertion {
                        name: assertion.name.clone(),
                        source_sql: source_sql.clone(),
                        original_queries: queries.clone(),
                        denial_count: 0,
                        edc_count: 0,
                        view_names: Vec::new(),
                        edc_pruned: 0,
                        prune_reasons: Vec::new(),
                        class: AssertionClass::AggregateFallback,
                        warnings: Vec::new(),
                    });
                    fallbacks.push(FallbackCheck {
                        assertion: assertion.name.clone(),
                        queries,
                        tables,
                        plans: Vec::new(), // prepared below, post-DDL
                    });
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            for d in &denials {
                denial_texts.push(format!("{}: {}", assertion.name, reg.denial_str(d)));
            }
            // Linter: an assertion whose denial bodies are all statically
            // unsatisfiable is tautological — no database state violates
            // its condition (checked before EDC expansion, on the denials
            // themselves).
            let analysis_on = self.config.edc.optimize && self.config.edc.analysis;
            let tautological = analysis_on
                && !denials.is_empty()
                && denials
                    .iter()
                    .all(|d| tintin_logic::analyze_body(&d.body, cat, true).is_err());
            let mut edcs = Vec::new();
            let mut prune_reasons = Vec::new();
            for d in &denials {
                let mut generator = EdcGenerator::new(&mut reg, cat, self.config.edc);
                edcs.extend(generator.generate(d)?);
                let pruned = std::mem::take(&mut generator.pruned);
                for p in &pruned {
                    prune_reasons.push(format!("{} [{}]", p.reason, reg.body_str(&p.body)));
                }
            }
            let views = tintin_sqlgen::generate_views(cat, &reg, &edcs)?;
            let original_queries = split_assertion_queries(&assertion.condition)?;
            let class = if tautological {
                AssertionClass::Tautological
            } else if edcs.is_empty() && !prune_reasons.is_empty() {
                AssertionClass::NeverFires
            } else if prune_reasons.is_empty() {
                AssertionClass::Normal
            } else {
                AssertionClass::PartiallyPruned
            };
            let warnings = match class {
                AssertionClass::Tautological => vec![format!(
                    "assertion '{}' is tautological: its condition is statically \
                     unsatisfiable, so it can never be violated",
                    assertion.name
                )],
                AssertionClass::NeverFires => vec![format!(
                    "assertion '{}' can never fire: every event rule was proved \
                     unsatisfiable, so no update can violate it",
                    assertion.name
                )],
                _ => Vec::new(),
            };
            installed.push(InstalledAssertion {
                name: assertion.name.clone(),
                source_sql: source_sql.clone(),
                original_queries,
                denial_count: denials.len(),
                edc_count: edcs.len(),
                view_names: views.iter().map(|v| v.name.clone()).collect(),
                edc_pruned: prune_reasons.len(),
                prune_reasons,
                class,
                warnings,
            });
            all_views.extend(views);
        }

        // Store views in the database (validates that they compile); every
        // created name is recorded so a later failure can remove them.
        for v in &all_views {
            db.create_view(&v.name, v.query.clone())?;
            created_views.push(v.name.clone());
        }

        if self.config.check_initial_state {
            for a in &installed {
                for q in &a.original_queries {
                    let rs = db.query(q)?;
                    if !rs.is_empty() {
                        return Err(TintinError::InitialStateViolated {
                            assertion: a.name.clone(),
                            rows: rs.len(),
                        });
                    }
                }
            }
        }

        // Compile every check once, now that install's own DDL (views,
        // capture) is done: the cached plans stay valid until the next
        // catalog change, so steady-state commits never touch the compiler.
        let plans: Vec<PreparedQuery> = all_views
            .iter()
            .map(|v| db.prepare(&v.query))
            .collect::<std::result::Result<_, _>>()?;
        for f in &mut fallbacks {
            f.plans = f
                .queries
                .iter()
                .map(|q| db.prepare(q))
                .collect::<std::result::Result<_, _>>()?;
        }
        let relevance = RelevanceIndex::build(&all_views);
        let table_columns = cat
            .table_names()
            .filter_map(|t| Some((t.clone(), cat.table(t)?.columns.clone())))
            .collect();

        Ok(Installation {
            assertions: installed,
            views: all_views,
            plans,
            fallbacks,
            denial_texts,
            relevance,
            table_columns,
        })
    }

    /// Remove everything an installation created: the violation views and —
    /// unless another installation still needs them — the event tables and
    /// capture triggers. The inverse of [`Tintin::install`].
    pub fn uninstall(
        &self,
        db: &mut Database,
        installation: &Installation,
        drop_capture: bool,
    ) -> Result<()> {
        for v in &installation.views {
            db.drop_view(&v.name, true)?;
        }
        if drop_capture {
            for t in db.captured_tables() {
                db.disable_capture(&t)?;
            }
        }
        Ok(())
    }

    /// Evaluate the incremental views against the pending events without
    /// committing or truncating anything (a dry run of the check phase).
    ///
    /// Normalizes the events first, then delegates to
    /// [`Tintin::check_normalized`]. Callers checking *several*
    /// installations against one pending update (the session layer's
    /// commit) should normalize and scan the touched tables once and call
    /// `check_normalized` per installation instead.
    pub fn check_pending(
        &self,
        db: &mut Database,
        installation: &Installation,
    ) -> Result<(Vec<Violation>, CheckStats)> {
        let (normalization, touched_list) = db.normalize_events_touched()?;
        let mut stats = CheckStats {
            normalization,
            ..CheckStats::default()
        };
        let touched = TouchedEvents::from_list(&touched_list);
        let violations = self.check_normalized(db, installation, &touched, &mut stats)?;
        Ok((violations, stats))
    }

    /// The check phase proper, over already-normalized events: consult the
    /// installation's relevance index with the `touched` event tables,
    /// evaluate only the checks the pending update can possibly violate,
    /// and run each through its prepared plan. Statistics (including
    /// plan-cache hits/recompiles) accumulate into `stats`.
    ///
    /// Checking is **read-only** (`&Database`): incremental views join the
    /// staged event tables against the committed state, and aggregate
    /// fallbacks evaluate the hypothetically-updated state by overlay
    /// composition instead of apply-and-undo. The session layer exploits
    /// this by running the whole check phase under the shared *read* lock,
    /// concurrent with other sessions' reads.
    ///
    /// With the emptiness shortcut disabled every view and fallback is
    /// evaluated — the semantics-preserving baseline the relevance index is
    /// an optimization of.
    pub fn check_normalized(
        &self,
        db: &Database,
        installation: &Installation,
        touched: &TouchedEvents,
        stats: &mut CheckStats,
    ) -> Result<Vec<Violation>> {
        stats.views_total += installation.views.len();
        let mut violations = Vec::new();
        let t0 = Instant::now();
        if self.config.emptiness_shortcut {
            // Relevance: a view whose first gate table has no pending
            // events cannot return rows; only views reachable from a
            // touched event table are even looked at — O(touched), not
            // O(installed).
            let mut candidates: Vec<usize> = installation.relevance.ungated.clone();
            for (is_ins, table) in touched.iter() {
                if let Some(buckets) = installation.relevance.by_table.get(table) {
                    let views = if is_ins { &buckets.ins } else { &buckets.del };
                    candidates.extend(views.iter().copied());
                }
            }
            candidates.sort_unstable();
            let skipped_by_relevance = installation.views.len() - candidates.len();
            stats.views_skipped_relevance += skipped_by_relevance;
            stats.views_skipped += skipped_by_relevance;
            for i in candidates {
                // Gates are conjunctions: the remaining entries must hold
                // too.
                let gate = &installation.views[i].gate;
                if !gate.iter().all(|(is_ins, t)| touched.contains(*is_ins, t)) {
                    stats.views_skipped += 1;
                    continue;
                }
                // Residual gates refine the emptiness check to predicate
                // granularity: the view joins each gated event atom with
                // the predicates the analysis proved necessary, so if some
                // event table holds no qualifying row the view is empty and
                // the full plan can be skipped. Sound because a predicate
                // is only emitted when every witnessing row must satisfy it
                // (and NULL fails both SQL `WHERE` and `sql_cmp`).
                let residual = &installation.views[i].residual;
                if !residual.is_empty() && !residual.iter().all(|g| residual_gate_open(db, g)) {
                    stats.views_skipped += 1;
                    stats.views_skipped_residual += 1;
                    continue;
                }
                self.eval_view(db, installation, i, stats, &mut violations)?;
            }
        } else {
            for i in 0..installation.views.len() {
                self.eval_view(db, installation, i, stats, &mut violations)?;
            }
        }
        // Aggregate fallbacks: re-run the original query on the
        // hypothetically updated state, but only when the pending update
        // touches one of the assertion's tables.
        if !installation.fallbacks.is_empty() {
            let relevant: Vec<&FallbackCheck> = installation
                .fallbacks
                .iter()
                .filter(|f| {
                    !self.config.emptiness_shortcut
                        || f.tables.iter().any(|t| touched.touches_table(t))
                })
                .collect();
            stats.fallbacks_skipped += installation.fallbacks.len() - relevant.len();
            stats.fallbacks_evaluated += relevant.len();
            if !relevant.is_empty() {
                // The hypothetically-updated state, by overlay composition:
                // normalized events guarantee `del ⊆ base` and
                // `ins ∩ base = ∅`, so `(base − del) ∪ ins` is exactly what
                // apply-and-undo used to materialize — without mutating the
                // database, which is what lets the whole check run under a
                // shared read lock.
                let overlay = events_as_overlay(db, touched);
                for f in relevant {
                    for (qi, plan) in f.plans.iter().enumerate() {
                        let resolved = plan.resolve(db)?;
                        if resolved.recompiled {
                            stats.plans_recompiled += 1;
                        } else {
                            stats.plans_reused += 1;
                        }
                        let rs = db.execute_plan(&resolved.plan, Some(&overlay))?;
                        if !rs.is_empty() {
                            violations.push(Violation {
                                assertion: f.assertion.clone(),
                                view: format!("fallback_query_{qi}"),
                                rows: rs,
                            });
                        }
                    }
                }
            }
        }
        stats.check_time += t0.elapsed();
        Ok(violations)
    }

    /// Evaluate one incremental view through its prepared plan.
    fn eval_view(
        &self,
        db: &Database,
        installation: &Installation,
        i: usize,
        stats: &mut CheckStats,
        violations: &mut Vec<Violation>,
    ) -> Result<()> {
        stats.views_evaluated += 1;
        let resolved = installation.plans[i].resolve(db)?;
        if resolved.recompiled {
            stats.plans_recompiled += 1;
        } else {
            stats.plans_reused += 1;
        }
        // Clean commits are the common case: probe for emptiness with an
        // early-exit execution, and materialize the violating tuples only
        // when there are any.
        if db.plan_returns_rows(&resolved.plan, None)? {
            let rs = db.execute_plan(&resolved.plan, None)?;
            let view = &installation.views[i];
            violations.push(Violation {
                assertion: view.assertion.clone(),
                view: view.name.clone(),
                rows: rs,
            });
        }
        Ok(())
    }

    /// The paper's `safeCommit` procedure: check the pending update against
    /// every assertion; commit it if no violation is found, otherwise report
    /// the violating tuples. Either way the event tables are truncated so a
    /// new update can be proposed.
    pub fn safe_commit(
        &self,
        db: &mut Database,
        installation: &Installation,
    ) -> Result<CommitOutcome> {
        // One scan of the captured set (inside normalization) feeds the
        // whole commit: gating, counting, applying and truncating all reuse
        // the touched list, keeping the critical section O(touched).
        let (normalization, touched_list) = db.normalize_events_touched()?;
        let mut stats = CheckStats {
            normalization,
            ..CheckStats::default()
        };
        let touched = TouchedEvents::from_list(&touched_list);
        let violations = self.check_normalized(db, installation, &touched, &mut stats)?;
        if violations.is_empty() {
            let (inserted, deleted) = db.pending_counts_for(&touched_list);
            db.apply_pending_for(&touched_list)?;
            db.truncate_events_for(&touched_list);
            Ok(CommitOutcome::Committed {
                inserted,
                deleted,
                stats,
            })
        } else {
            db.truncate_events_for(&touched_list);
            Ok(CommitOutcome::Rejected { violations, stats })
        }
    }

    /// Non-incremental baseline: apply the pending update, run the original
    /// assertion queries on the updated database, and undo if any violation
    /// shows up. `query_time` isolates the cost the paper compares against.
    pub fn full_recheck(
        &self,
        db: &mut Database,
        installation: &Installation,
    ) -> Result<FullRecheckOutcome> {
        db.normalize_events()?;
        let log = db.apply_pending()?;
        let t0 = Instant::now();
        let mut violations = Vec::new();
        for a in &installation.assertions {
            for (qi, q) in a.original_queries.iter().enumerate() {
                let rs = db.query(q)?;
                if !rs.is_empty() {
                    violations.push(Violation {
                        assertion: a.name.clone(),
                        view: format!("original_query_{qi}"),
                        rows: rs,
                    });
                }
            }
        }
        let query_time = t0.elapsed();
        let committed = violations.is_empty();
        if !committed {
            db.undo(log);
        }
        db.truncate_events();
        Ok(FullRecheckOutcome {
            committed,
            violations,
            query_time,
        })
    }

    /// Run the original (non-incremental) assertion queries against the
    /// *current* state; returns per-assertion violating row counts.
    pub fn check_current_state(
        &self,
        db: &Database,
        installation: &Installation,
    ) -> Result<Vec<(String, usize)>> {
        let mut out = Vec::new();
        for a in &installation.assertions {
            let mut n = 0;
            for q in &a.original_queries {
                n += db.query(q)?.len();
            }
            out.push((a.name.clone(), n));
        }
        Ok(out)
    }
}

/// Is a residual gate open — does its event table hold at least one row
/// satisfying all of the gate's predicates? An empty predicate list is
/// always open (the plain emptiness gate already verified non-emptiness).
fn residual_gate_open(db: &Database, gate: &ResidualGate) -> bool {
    if gate.preds.is_empty() {
        return true;
    }
    let evt_name = if gate.is_ins {
        ins_table_name(&gate.table)
    } else {
        del_table_name(&gate.table)
    };
    let Some(evt) = db.table(&evt_name) else {
        // No event table at all: closed (nothing can qualify).
        return false;
    };
    evt.scan()
        .any(|(_, row)| gate.preds.iter().all(|p| residual_pred_holds(row, p)))
}

/// Evaluate one residual column predicate against a stored event row, with
/// exactly the engine's SQL `WHERE` semantics: NULL and cross-class
/// comparisons never match.
fn residual_pred_holds(row: &[Value], pred: &ColPredicate) -> bool {
    match pred {
        ColPredicate::Null { col, negated } => match row.get(*col) {
            Some(v) => v.is_null() != *negated,
            None => false,
        },
        ColPredicate::Cmp { col, op, value } => {
            let Some(v) = row.get(*col) else { return false };
            let Some(ord) = v.sql_cmp(&konst_value(value)) else {
                return false;
            };
            match op {
                CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                CmpOp::NotEq => ord != std::cmp::Ordering::Equal,
                CmpOp::Lt => ord == std::cmp::Ordering::Less,
                CmpOp::LtEq => ord != std::cmp::Ordering::Greater,
                CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                CmpOp::GtEq => ord != std::cmp::Ordering::Less,
            }
        }
    }
}

/// Convert a logic-layer constant to an engine value (the same mapping the
/// SQL generator's literals go through).
fn konst_value(k: &Konst) -> Value {
    match k {
        Konst::Int(i) => Value::Int(*i),
        Konst::Real(r) => Value::real(*r),
        Konst::Str(s) => Value::str(s.as_str()),
    }
}

/// Build a read-only overlay representing the staged pending update: the
/// contents of the touched `ins_T` / `del_T` event tables as per-table
/// insertion / deletion sets. Composed onto the committed state during
/// evaluation it yields `(base − del) ∪ ins` — the hypothetically-updated
/// state aggregate fallbacks check — without mutating anything.
fn events_as_overlay(db: &Database, touched: &TouchedEvents) -> TxOverlay {
    let mut overlay = TxOverlay::new();
    for (is_ins, table) in touched.iter() {
        let evt_name = if is_ins {
            ins_table_name(table)
        } else {
            del_table_name(table)
        };
        let Some(evt) = db.table(&evt_name) else {
            continue;
        };
        let delta = overlay.delta_mut(table);
        for (_, row) in evt.scan() {
            if is_ins {
                delta.ins.push(row.clone());
            } else {
                delta.del.push(row.clone());
            }
        }
    }
    overlay
}

/// Collect base-table names referenced anywhere in a query (FROM clauses of
/// all nested selects and subqueries).
fn collect_query_tables(q: &sql::Query, out: &mut Vec<String>) {
    fn walk_tr(tr: &sql::TableRef, out: &mut Vec<String>) {
        match tr {
            sql::TableRef::Named { name, .. } => out.push(name.clone()),
            sql::TableRef::Join {
                left, right, on, ..
            } => {
                walk_tr(left, out);
                walk_tr(right, out);
                if let Some(on) = on {
                    walk_expr(on, out);
                }
            }
            sql::TableRef::Subquery { query, .. } => collect_query_tables(query, out),
        }
    }
    fn walk_expr(e: &sql::Expr, out: &mut Vec<String>) {
        match e {
            sql::Expr::Exists { query, .. } => collect_query_tables(query, out),
            sql::Expr::InSubquery { exprs, query, .. } => {
                for x in exprs {
                    walk_expr(x, out);
                }
                collect_query_tables(query, out);
            }
            sql::Expr::Binary { left, right, .. } => {
                walk_expr(left, out);
                walk_expr(right, out);
            }
            sql::Expr::Unary { expr, .. } => walk_expr(expr, out),
            sql::Expr::IsNull { expr, .. } => walk_expr(expr, out),
            sql::Expr::InList { expr, list, .. } => {
                walk_expr(expr, out);
                for x in list {
                    walk_expr(x, out);
                }
            }
            sql::Expr::Tuple(parts) => {
                for x in parts {
                    walk_expr(x, out);
                }
            }
            sql::Expr::Func { args, .. } => {
                if let sql::FuncArgs::List(list) = args {
                    for x in list {
                        walk_expr(x, out);
                    }
                }
            }
            sql::Expr::Column(_) | sql::Expr::Literal(_) => {}
        }
    }
    for sel in q.selects() {
        for tr in &sel.from {
            walk_tr(tr, out);
        }
        if let Some(w) = &sel.selection {
            walk_expr(w, out);
        }
        if let Some(h) = &sel.having {
            walk_expr(h, out);
        }
        for g in &sel.group_by {
            walk_expr(g, out);
        }
    }
    for item in &q.order_by {
        walk_expr(&item.expr, out);
    }
}

/// Extract the queries inside the assertion's NOT EXISTS conjuncts.
fn split_assertion_queries(cond: &sql::Expr) -> Result<Vec<sql::Query>> {
    let mut out = Vec::new();
    for conj in cond.conjuncts() {
        match conj {
            sql::Expr::Exists {
                query,
                negated: true,
            } => out.push((**query).clone()),
            sql::Expr::Unary {
                op: sql::UnOp::Not,
                expr,
            } => match &**expr {
                sql::Expr::Exists {
                    query,
                    negated: false,
                } => out.push((**query).clone()),
                _ => {
                    return Err(TintinError::Translate(
                        "assertion condition must be a conjunction of NOT EXISTS".into(),
                    ))
                }
            },
            _ => {
                return Err(TintinError::Translate(
                    "assertion condition must be a conjunction of NOT EXISTS".into(),
                ))
            }
        }
    }
    Ok(out)
}
