//! Deriving assertions from declared foreign keys.
//!
//! The engine stores foreign keys as metadata only; this helper turns each
//! declared FK into a `CREATE ASSERTION` so referential integrity can be
//! checked incrementally through the same EDC machinery as any other
//! assertion (an extension beyond the paper's demo, using exactly its
//! technique).

use tintin_engine::Database;

/// Generate one `CREATE ASSERTION` statement per declared foreign key.
///
/// For a FK `child(c1..ck) → parent(p1..pk)` the assertion is
///
/// ```sql
/// CREATE ASSERTION fk_child_parent_i CHECK (NOT EXISTS (
///     SELECT * FROM child WHERE NOT EXISTS (
///         SELECT * FROM parent WHERE parent.p1 = child.c1 AND …)))
/// ```
pub fn assertions_from_foreign_keys(db: &Database) -> Vec<String> {
    let mut out = Vec::new();
    for tname in db.table_names() {
        let table = db.table(&tname).expect("listed table exists");
        for (i, fk) in table.schema.foreign_keys.iter().enumerate() {
            let Some(parent) = db.table(&fk.ref_table) else {
                continue;
            };
            if fk.columns.len() != fk.ref_columns.len() || fk.columns.is_empty() {
                continue;
            }
            let conds: Vec<String> = fk
                .columns
                .iter()
                .zip(&fk.ref_columns)
                .map(|(c, p)| {
                    format!(
                        "{}.{} = {}.{}",
                        fk.ref_table,
                        parent.schema.columns[*p].name,
                        tname,
                        table.schema.columns[*c].name
                    )
                })
                .collect();
            out.push(format!(
                "CREATE ASSERTION fk_{}_{}_{} CHECK (NOT EXISTS (\
                 SELECT * FROM {} WHERE NOT EXISTS (\
                 SELECT * FROM {} WHERE {})))",
                tname,
                fk.ref_table,
                i,
                tname,
                fk.ref_table,
                conds.join(" AND ")
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_fk_assertion_sql() {
        let mut db = Database::new();
        db.execute_sql(
            "CREATE TABLE parent (pk INT PRIMARY KEY);
             CREATE TABLE child (ck INT PRIMARY KEY, fkc INT REFERENCES parent);",
        )
        .unwrap();
        let asserts = assertions_from_foreign_keys(&db);
        assert_eq!(asserts.len(), 1);
        assert!(asserts[0].contains("fk_child_parent_0"));
        assert!(asserts[0].contains("parent.pk = child.fkc"));
        // Must parse as a CREATE ASSERTION.
        let stmt = tintin_sql::parse_statement(&asserts[0]).unwrap();
        assert!(matches!(stmt, tintin_sql::Statement::CreateAssertion(_)));
    }

    #[test]
    fn skips_tables_without_fks() {
        let mut db = Database::new();
        db.execute_sql("CREATE TABLE solo (a INT)").unwrap();
        assert!(assertions_from_foreign_keys(&db).is_empty());
    }
}
