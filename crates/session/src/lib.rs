//! `tintin-session` — concurrent, transactional sessions over one shared
//! TINTIN database.
//!
//! The EDBT 2016 paper's usage model is *transaction-time* integrity
//! checking: an application opens a transaction, issues updates, and at
//! `COMMIT` the `safeCommit` procedure either applies the whole update or
//! rejects it, reporting the violated assertion. This crate supplies the
//! connection abstraction around that model, scaled from the paper's single
//! client to any number of concurrent ones:
//!
//! * **[`Server`]** holds the [`SharedDatabase`] handle plus the [`Tintin`]
//!   checker and all installed assertion sets; it is cheap to clone and
//!   safe to share across threads;
//! * **[`Session`]** is one connection, created by [`Server::connect`]. Any
//!   number of sessions attach to the same database; assertions installed
//!   through one are enforced on every commit from all of them;
//! * **explicit transactions** — `BEGIN; …; COMMIT` groups any number of
//!   DML statements into one unit. `BEGIN` captures an **MVCC snapshot**
//!   (the latest commit timestamp); every query and DML statement inside
//!   the transaction then observes the visible-state equation
//!   `(snapshot − del) ∪ ins` — the `BEGIN`-time row versions, minus the
//!   transaction's pending deletions, plus its pending insertions
//!   (accumulated in the session's private [`TxOverlay`]). Repeated
//!   `SELECT`s inside a transaction return identical results even while
//!   other sessions commit, and no other session ever observes pending
//!   work — not through base-table reads, and not through `ins_T` /
//!   `del_T` event-table or vio-view reads either: a commit stages its
//!   events stamped with its still-unpublished timestamp, invisible to
//!   every reader until (and unless) the commit publishes. `SAVEPOINT` /
//!   `ROLLBACK TO` / `RELEASE` give partial rollback via cheap overlay
//!   snapshots;
//! * **phased commits** — `COMMIT` serializes against other committers on
//!   the database's commit lock, but holds the *exclusive* write lock only
//!   for two short bookkeeping windows: (1) first-committer-wins conflict
//!   detection on row-version stamps, staging and normalization before the
//!   check, and (3) version stamping, publication and garbage collection
//!   after it. The expensive phase — (2), evaluating every touched
//!   assertion — runs under the shared *read* lock, concurrent with every
//!   other session's reads. Readers never block behind a checked commit;
//!   a violating commit still rolls back atomically, and a commit that
//!   raced a concurrent one loses with a distinct
//!   [`SessionError::SerializationConflict`] (retry on a fresh snapshot);
//! * **autocommit** — outside an explicit transaction every DML statement
//!   is its own transaction: planned, staged, checked and applied (or
//!   rejected) through the same phased commit.
//!
//! Reads outside a transaction see the latest committed state; reads inside
//! one see the transaction's `BEGIN`-time snapshot plus its own pending
//! updates — and never another session's. Old row versions are pruned by
//! commit-piggybacked garbage collection once no live snapshot can see
//! them. Schema changes (`CREATE` / `DROP` / `TRUNCATE`) are not
//! transactional and are rejected while a transaction is open;
//! `CREATE ASSERTION` outside a transaction installs the assertion
//! (incremental views and all) for every attached session on the fly.
//!
//! # Example
//!
//! ```
//! use tintin_session::{Server, StatementOutcome};
//!
//! let server = Server::new();
//! let mut alice = server.connect();
//! let mut bob = server.connect();
//!
//! alice
//!     .execute(
//!         "CREATE TABLE orders (o_orderkey INT PRIMARY KEY);
//!          CREATE TABLE lineitem (
//!              l_orderkey INT REFERENCES orders, l_linenumber INT,
//!              PRIMARY KEY (l_orderkey, l_linenumber));
//!          CREATE ASSERTION atLeastOneLineItem CHECK (NOT EXISTS (
//!              SELECT * FROM orders o WHERE NOT EXISTS (
//!                  SELECT * FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)));",
//!     )
//!     .unwrap();
//!
//! // Alice's open transaction reads its own writes…
//! alice.execute("BEGIN; INSERT INTO orders VALUES (1); INSERT INTO lineitem VALUES (1, 1);").unwrap();
//! assert_eq!(alice.query_rows("SELECT * FROM orders").unwrap().len(), 1);
//! // …which Bob cannot see until they commit.
//! assert_eq!(bob.query_rows("SELECT * FROM orders").unwrap().len(), 0);
//! let outcomes = alice.execute("COMMIT").unwrap();
//! assert!(matches!(outcomes.last(), Some(StatementOutcome::Committed { .. })));
//! assert_eq!(bob.query_rows("SELECT * FROM orders").unwrap().len(), 1);
//!
//! // Bob's violating commit is rejected and rolled back — the assertion
//! // Alice installed protects every session.
//! let outcomes = bob.execute("BEGIN; INSERT INTO orders VALUES (2); COMMIT;").unwrap();
//! assert!(matches!(outcomes.last(), Some(StatementOutcome::Rejected { .. })));
//! assert_eq!(bob.query_rows("SELECT * FROM orders").unwrap().len(), 1);
//! ```

mod durability;

pub use durability::{
    CheckpointStats, DurabilityFault, DurabilityOptions, RecoverySummary, WalStatus,
};
pub use tintin::{AssertionClass, AssertionExplain, ViewExplain};
pub use tintin_wal::Lsn;

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;
use tintin::{CheckStats, Installation, Tintin, TintinError, TouchedEvents, Violation};
use tintin_engine::{
    Database, EngineError, ResultSet, SharedDatabase, Snapshot, TxOverlay, TS_LATEST,
};
use tintin_obs::{
    log_warn, Counter, Gauge, Histogram, Registry, Snapshot as MetricsSnapshot, Stopwatch,
};
use tintin_sql as sql;

/// Result of executing one statement through a [`Session`].
#[derive(Debug, Clone)]
pub enum StatementOutcome {
    /// DDL succeeded.
    Ddl,
    /// An assertion was parsed, rewritten and installed. `warnings` carries
    /// the static-analysis linter's verdicts (tautological / never-fires).
    AssertionInstalled {
        name: String,
        views: usize,
        warnings: Vec<String>,
    },
    /// `EXPLAIN ASSERTION` — the install-time static-analysis report for an
    /// installed assertion (boxed to keep the enum register-sized).
    Explain(Box<AssertionExplain>),
    /// An assertion (and its incremental views) was removed.
    AssertionDropped { name: String },
    /// DML affected this many rows (pending while a transaction is open).
    RowsAffected(usize),
    /// A query returned rows.
    Rows(ResultSet),
    /// `BEGIN` opened a transaction.
    TransactionStarted,
    /// `SAVEPOINT name` was established.
    SavepointCreated(String),
    /// `RELEASE name` discarded a savepoint.
    SavepointReleased(String),
    /// `ROLLBACK TO name` reversed the transaction suffix.
    RolledBackToSavepoint(String),
    /// `ROLLBACK` aborted the transaction.
    RolledBack,
    /// `COMMIT` passed every assertion; the update is applied.
    Committed {
        inserted: usize,
        deleted: usize,
        stats: CheckStats,
    },
    /// `COMMIT` (or an autocommitted statement) violated an assertion; the
    /// transaction was rolled back atomically.
    Rejected {
        violations: Vec<Violation>,
        stats: CheckStats,
    },
}

impl StatementOutcome {
    /// Was this a successful `COMMIT` (or autocommit)?
    pub fn is_committed(&self) -> bool {
        matches!(self, StatementOutcome::Committed { .. })
    }

    /// Was this a rejected (assertion-violating) `COMMIT` or autocommit?
    pub fn is_rejected(&self) -> bool {
        matches!(self, StatementOutcome::Rejected { .. })
    }
}

/// Errors surfaced by [`Session::execute`].
#[derive(Debug, Clone)]
pub enum SessionError {
    /// SQL parsing failed.
    Parse(String),
    /// Engine-level failure (catalog, DML, evaluation).
    Engine(EngineError),
    /// Install / check pipeline failure.
    Tintin(TintinError),
    /// `COMMIT`, `ROLLBACK`, `SAVEPOINT`, … without an open transaction.
    NoActiveTransaction,
    /// `BEGIN` while a transaction is already open.
    TransactionAlreadyOpen,
    /// `ROLLBACK TO` / `RELEASE` an unknown savepoint.
    NoSuchSavepoint(String),
    /// Schema changes are not transactional.
    DdlInTransaction(String),
    /// `CREATE ASSERTION` with a name that is already installed.
    DuplicateAssertion(String),
    /// `DROP ASSERTION` of an unknown name.
    NoSuchAssertion(String),
    /// Write-ahead log / checkpoint / recovery failure. Surfaced when a
    /// durable server cannot log or sync a commit (the commit is failed,
    /// not acknowledged) or when [`Server::open`] finds a damaged
    /// checkpoint or discontinuous log.
    Durability(String),
    /// This transaction lost a first-committer-wins race: a concurrent
    /// commit created or removed row versions its update depends on after
    /// its snapshot was taken. The transaction is fully rolled back (its
    /// overlay discarded, the shared database untouched); retrying on a
    /// fresh snapshot may succeed. Distinct from an assertion violation —
    /// nothing was wrong with the data, only with the interleaving.
    SerializationConflict {
        /// The table the conflicting row versions live in.
        table: String,
        /// What raced.
        detail: String,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Parse(m) => write!(f, "parse error: {m}"),
            SessionError::Engine(e) => write!(f, "{e}"),
            SessionError::Tintin(e) => write!(f, "{e}"),
            SessionError::NoActiveTransaction => {
                write!(f, "no transaction is open (use BEGIN)")
            }
            SessionError::TransactionAlreadyOpen => {
                write!(
                    f,
                    "a transaction is already open (COMMIT or ROLLBACK first)"
                )
            }
            SessionError::NoSuchSavepoint(n) => write!(f, "no such savepoint: '{n}'"),
            SessionError::DdlInTransaction(stmt) => write!(
                f,
                "{stmt} is not transactional; COMMIT or ROLLBACK the open transaction first"
            ),
            SessionError::DuplicateAssertion(n) => {
                write!(f, "assertion '{n}' is already installed")
            }
            SessionError::NoSuchAssertion(n) => write!(f, "no such assertion: '{n}'"),
            SessionError::Durability(m) => write!(f, "durability error: {m}"),
            SessionError::SerializationConflict { table, detail } => {
                write!(
                    f,
                    "serialization conflict on {table}: {detail} (transaction rolled \
                     back; retry on a fresh snapshot)"
                )
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// A script failed partway through [`Session::execute`].
///
/// The statements before [`ScriptError::statement_index`] completed — their
/// outcomes are preserved in [`ScriptError::completed`], so the caller can
/// tell what *did* happen: DML may have autocommitted, a transaction may
/// have been opened and left open ([`Session::in_transaction`] tells). The
/// failing statement itself had no effect, and no later statement ran.
#[derive(Debug, Clone)]
pub struct ScriptError {
    /// Outcomes of the statements that completed before the failure, in
    /// script order (empty when the script failed to parse).
    pub completed: Vec<StatementOutcome>,
    /// Zero-based index of the failing statement within the script (`0`
    /// for a script that failed to parse — nothing ran at all).
    pub statement_index: usize,
    /// The failing statement, pretty-printed (empty for a parse error).
    pub statement: String,
    /// The underlying failure.
    pub error: SessionError,
}

impl ScriptError {
    /// A parse failure: nothing ran. (Boxed: the script error is the cold
    /// path of a `Result` whose `Ok` side should stay register-sized.)
    fn parse(error: SessionError) -> Box<Self> {
        Box::new(ScriptError {
            completed: Vec::new(),
            statement_index: 0,
            statement: String::new(),
            error,
        })
    }
}

/// Flatten a failing statement to one readable error-message line:
/// newlines become spaces and anything past 80 characters is elided. The
/// rendering [`ScriptError`] uses — exposed so its wire mirror
/// (`tintin-server`'s `WireScriptError`) prints identically.
pub fn one_line_statement(statement: &str) -> String {
    let mut stmt = statement.replace('\n', " ");
    if stmt.len() > 80 {
        let cut = (0..=77).rev().find(|&i| stmt.is_char_boundary(i)).unwrap();
        stmt.truncate(cut);
        stmt.push_str("...");
    }
    stmt
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.statement.is_empty() {
            return write!(f, "{}", self.error);
        }
        write!(
            f,
            "statement {} ({}) failed: {}",
            self.statement_index + 1,
            one_line_statement(&self.statement),
            self.error
        )
    }
}

impl std::error::Error for ScriptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Dropping the script context recovers the plain session error (lets `?`
/// forward [`Session::execute`] failures from functions returning
/// [`Result`]).
impl From<ScriptError> for SessionError {
    fn from(e: ScriptError) -> Self {
        e.error
    }
}

/// Same as [`From<ScriptError>`], for the boxed form
/// [`Session::execute`] returns.
impl From<Box<ScriptError>> for SessionError {
    fn from(e: Box<ScriptError>) -> Self {
        e.error
    }
}

impl From<EngineError> for SessionError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::SerializationConflict { table, detail } => {
                SessionError::SerializationConflict { table, detail }
            }
            e => SessionError::Engine(e),
        }
    }
}

impl From<TintinError> for SessionError {
    fn from(e: TintinError) -> Self {
        SessionError::Tintin(e)
    }
}

impl From<sql::ParseError> for SessionError {
    fn from(e: sql::ParseError) -> Self {
        SessionError::Parse(e.to_string())
    }
}

/// Result alias for session operations.
pub type Result<T> = std::result::Result<T, SessionError>;

/// Pending-event counts for one table of an open transaction (the REPL's
/// `.tx` view).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingTable {
    /// The base table the events target.
    pub table: String,
    /// Pending insertions.
    pub inserts: usize,
    /// Pending deletions.
    pub deletes: usize,
}

/// Where in the phased commit protocol a [`CommitHook`] fires.
///
/// The boundaries correspond to the lock transitions of
/// [`Session::commit`]: at each of the first two points the commit lock is
/// held but neither the read nor the write lock is — other sessions'
/// *reads* may safely run inside the hook (another `COMMIT` would
/// deadlock on the commit lock). This is the seam the deterministic
/// simulation harness (`tintin-sim`) schedules through: it never relies on
/// OS-thread timing to land a probe inside a commit — the hook *is* the
/// mid-commit interleaving point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitPhase {
    /// Phase 1 finished: conflicts detected, the overlay staged into the
    /// event tables (stamped with the still-unpublished commit timestamp)
    /// and normalized. The write lock has been released; nothing is
    /// applied yet.
    Staged,
    /// Phase 2 finished: every touched check evaluated under the read
    /// lock; the verdict is computed but not yet acted on. Returning
    /// [`HookAction::Abort`] here simulates a crash after checking but
    /// before publication.
    Checked,
    /// Phase 3 published the commit: the timestamp is live and every new
    /// read observes the update. Informational — [`HookAction::Abort`] is
    /// ignored, the decision is already public.
    Published,
    /// Phase 3 discarded the update (assertion violation). Informational.
    Rejected,
}

/// What a [`CommitHook`] tells the in-flight commit to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HookAction {
    /// Proceed normally.
    #[default]
    Continue,
    /// Abandon the commit: staged events are discarded, nothing is
    /// published, and `COMMIT` fails with an
    /// [`EngineError::Transaction`]-backed error. Only honored at
    /// [`CommitPhase::Staged`] and [`CommitPhase::Checked`]; the commit
    /// must leave no trace (the torn-rollback property the simulation
    /// oracle checks).
    Abort,
}

/// A test/simulation observer invoked at every phase boundary of every
/// non-no-op phased commit, with the committing session's id. See
/// [`Server::set_commit_hook`].
pub type CommitHook = Arc<dyn Fn(u64, CommitPhase) -> HookAction + Send + Sync>;

/// Shared cell holding the server's optional commit hook. A plain
/// mutex-guarded `Option`: the commit path locks it once per phased commit
/// (uncontended — committers already serialize on the commit lock).
#[derive(Default, Clone)]
struct CommitHookCell(Arc<Mutex<Option<CommitHook>>>);

impl CommitHookCell {
    fn get(&self) -> Option<CommitHook> {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn set(&self, hook: Option<CommitHook>) {
        *self.0.lock().unwrap_or_else(PoisonError::into_inner) = hook;
    }
}

impl fmt::Debug for CommitHookCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let set = self
            .0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some();
        write!(f, "CommitHookCell({})", if set { "set" } else { "unset" })
    }
}

/// Checker state shared by every session of a [`Server`]: the configured
/// [`Tintin`] instance and the assertion sets installed so far.
#[derive(Debug, Default)]
struct ServerState {
    tintin: Tintin,
    installations: Vec<Installation>,
}

/// Pre-resolved metric handles for the session layer's hot paths. Handles
/// are looked up once at server construction — the commit path never takes
/// the registry lock.
#[derive(Debug)]
struct SessionMetrics {
    // Commit-outcome counters. Conservation invariant:
    // attempts == commits + rejects + conflicts + errors.
    attempts: Arc<Counter>,
    commits: Arc<Counter>,
    rejects: Arc<Counter>,
    conflicts: Arc<Counter>,
    errors: Arc<Counter>,
    violations: Arc<Counter>,
    // Prepared-plan cache activity, accumulated from each commit's
    // `CheckStats` (the engine keeps per-check state; the counters give the
    // server-wide cumulative view).
    plans_reused: Arc<Counter>,
    plans_recompiled: Arc<Counter>,
    checks_evaluated: Arc<Counter>,
    // Connections.
    sessions_open: Arc<Gauge>,
    // MVCC / GC state, sampled from the engine by `Server::observe_engine`
    // (the engine already tracks these; sampling avoids an engine→obs
    // dependency).
    mvcc_commit_ts: Arc<Gauge>,
    mvcc_live_versions: Arc<Gauge>,
    mvcc_dead_versions: Arc<Gauge>,
    snapshots_live: Arc<Gauge>,
    gc_runs: Arc<Counter>,
    gc_pruned: Arc<Counter>,
    // Per-phase commit latency. `commit_seconds` covers the whole phased
    // commit (successful, non-no-op commits only, so its count equals the
    // storm test's successful-commit count); the phase histograms cover
    // stage/conflict-detect (write lock), check (read lock), and
    // stamp/publish/GC (write lock).
    commit_seconds: Arc<Histogram>,
    stage_seconds: Arc<Histogram>,
    check_seconds: Arc<Histogram>,
    publish_seconds: Arc<Histogram>,
}

impl SessionMetrics {
    fn new(registry: &Registry) -> Self {
        SessionMetrics {
            attempts: registry.counter("tintin_commit_attempts_total"),
            commits: registry.counter("tintin_commits_total"),
            rejects: registry.counter("tintin_commit_rejects_total"),
            conflicts: registry.counter("tintin_commit_conflicts_total"),
            errors: registry.counter("tintin_commit_errors_total"),
            violations: registry.counter("tintin_violations_total"),
            plans_reused: registry.counter("tintin_plans_reused_total"),
            plans_recompiled: registry.counter("tintin_plans_recompiled_total"),
            checks_evaluated: registry.counter("tintin_checks_evaluated_total"),
            sessions_open: registry.gauge("tintin_sessions_open"),
            mvcc_commit_ts: registry.gauge("tintin_mvcc_commit_ts"),
            mvcc_live_versions: registry.gauge("tintin_mvcc_live_versions"),
            mvcc_dead_versions: registry.gauge("tintin_mvcc_dead_versions"),
            snapshots_live: registry.gauge("tintin_snapshots_live"),
            gc_runs: registry.counter("tintin_gc_runs_total"),
            gc_pruned: registry.counter("tintin_gc_pruned_total"),
            commit_seconds: registry.histogram("tintin_commit_seconds"),
            stage_seconds: registry.histogram("tintin_commit_stage_seconds"),
            check_seconds: registry.histogram("tintin_commit_check_seconds"),
            publish_seconds: registry.histogram("tintin_commit_publish_seconds"),
        }
    }
}

/// The observability side of a [`Server`]: the metrics registry, the
/// session layer's pre-resolved handles, and the slow-commit threshold
/// (nanoseconds; `0` = disabled) shared by every clone of the server.
#[derive(Debug)]
struct ServerObs {
    registry: Registry,
    metrics: SessionMetrics,
    slow_commit_nanos: AtomicU64,
}

impl ServerObs {
    fn with_registry(registry: Registry) -> Self {
        let metrics = SessionMetrics::new(&registry);
        // `TINTIN_SLOW_COMMIT_MS` sets the default threshold; a server flag
        // or `Server::set_slow_commit_threshold` can override it later.
        let slow_ms = std::env::var("TINTIN_SLOW_COMMIT_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(0);
        ServerObs {
            registry,
            metrics,
            slow_commit_nanos: AtomicU64::new(slow_ms.saturating_mul(1_000_000)),
        }
    }
}

impl Default for ServerObs {
    fn default() -> Self {
        ServerObs::with_registry(Registry::new())
    }
}

/// The shared side of the session layer: one database, one checker, many
/// connections.
///
/// A `Server` is a pair of handles — a [`SharedDatabase`] and the shared
/// checker state — so cloning it (or a [`Session`] holding it) attaches to
/// the *same* database rather than copying it. It is `Send + Sync`;
/// sessions for different threads are created with [`Server::connect`].
#[derive(Debug, Clone, Default)]
pub struct Server {
    db: SharedDatabase,
    state: Arc<RwLock<ServerState>>,
    next_session_id: Arc<AtomicU64>,
    open_sessions: Arc<AtomicUsize>,
    obs: Arc<ServerObs>,
    hook: CommitHookCell,
    /// The durable side (WAL + checkpoints), present only for servers
    /// opened over a data directory ([`Server::open`]). `Server::new()`
    /// and friends stay purely in-memory.
    dura: Option<Arc<durability::Durability>>,
}

impl Server {
    /// A server over a fresh, empty database with the default checker.
    pub fn new() -> Self {
        Server::default()
    }

    /// A server over an existing database, taking ownership.
    pub fn with_database(db: Database) -> Self {
        Server {
            db: SharedDatabase::from_database(db),
            ..Server::default()
        }
    }

    /// A server with an explicit checker configuration.
    pub fn with_database_and_checker(db: Database, tintin: Tintin) -> Self {
        Server {
            db: SharedDatabase::from_database(db),
            state: Arc::new(RwLock::new(ServerState {
                tintin,
                installations: Vec::new(),
            })),
            ..Server::default()
        }
    }

    /// A server recording its metrics into the given registry — pass
    /// [`Registry::noop`] to turn every metric and span into a no-op (the
    /// configuration the instrumentation-overhead bench compares against).
    pub fn with_registry(registry: Registry) -> Self {
        Server {
            obs: Arc::new(ServerObs::with_registry(registry)),
            ..Server::default()
        }
    }

    /// The metrics registry every session of this server records into.
    /// Other layers (the wire front-end) register their own metrics here so
    /// one snapshot covers the whole process.
    pub fn registry(&self) -> &Registry {
        &self.obs.registry
    }

    /// Sample the engine's MVCC / garbage-collection state into the
    /// registry's gauges (`tintin_mvcc_*`, `tintin_snapshots_live`) and
    /// cumulative counters (`tintin_gc_*_total`). Called by
    /// [`Server::metrics_snapshot`]; cheap (one read lock, no scans beyond
    /// the version counters the engine already keeps).
    pub fn observe_engine(&self) {
        let stats = self.db.read().mvcc_stats();
        let m = &self.obs.metrics;
        m.mvcc_commit_ts.set(stats.commit_ts as i64);
        m.mvcc_live_versions.set(stats.live_versions as i64);
        m.mvcc_dead_versions.set(stats.dead_versions as i64);
        m.gc_runs.record_absolute(stats.gc_runs);
        m.gc_pruned.record_absolute(stats.gc_pruned);
        m.snapshots_live.set(self.db.live_snapshots() as i64);
    }

    /// A full metrics snapshot: the engine gauges are re-sampled
    /// ([`Server::observe_engine`]) and the registry captured. This is what
    /// the wire protocol's `STATS` command and the REPL's `.stats` render.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.observe_engine();
        self.obs.registry.snapshot()
    }

    /// Set (or, with `None`, disable) the slow-commit threshold: any phased
    /// commit whose total latency reaches it is logged at `WARN` with its
    /// per-phase breakdown. Defaults to the `TINTIN_SLOW_COMMIT_MS`
    /// environment variable (unset or `0` = disabled).
    pub fn set_slow_commit_threshold(&self, threshold: Option<Duration>) {
        let nanos = threshold.map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        self.obs.slow_commit_nanos.store(nanos, Ordering::Relaxed);
    }

    /// The current slow-commit threshold, if enabled.
    pub fn slow_commit_threshold(&self) -> Option<Duration> {
        match self.obs.slow_commit_nanos.load(Ordering::Relaxed) {
            0 => None,
            n => Some(Duration::from_nanos(n)),
        }
    }

    /// Install a commit-phase hook, shared by every session of this
    /// server (and every clone of the handle).
    ///
    /// The hook fires at each [`CommitPhase`] boundary of every non-no-op
    /// phased commit — explicit `COMMIT` and autocommitted DML alike —
    /// with the committing session's id. At [`CommitPhase::Staged`] and
    /// [`CommitPhase::Checked`] the commit lock is held but the rwlock is
    /// free, so the hook may run *reads* through other sessions (a nested
    /// commit would deadlock on the commit lock); returning
    /// [`HookAction::Abort`] there abandons the commit without a trace.
    ///
    /// This is a testing/simulation seam (the `tintin-sim` harness drives
    /// deterministic mid-commit interleavings and fault injection through
    /// it); production servers leave it unset, which costs one uncontended
    /// mutex lock per checked commit.
    pub fn set_commit_hook(&self, hook: CommitHook) {
        self.hook.set(Some(hook));
    }

    /// Remove the commit-phase hook installed by
    /// [`Server::set_commit_hook`], if any.
    pub fn clear_commit_hook(&self) {
        self.hook.set(None);
    }

    /// The shared database handle (read/write lock it for direct access).
    pub fn database(&self) -> &SharedDatabase {
        &self.db
    }

    /// Attach a new session to this server's database.
    pub fn connect(&self) -> Session {
        let id = self.next_session_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.open_sessions.fetch_add(1, Ordering::Relaxed);
        self.obs.metrics.sessions_open.inc();
        Session {
            server: self.clone(),
            id,
            tx: None,
        }
    }

    /// Number of currently attached sessions.
    pub fn session_count(&self) -> usize {
        self.open_sessions.load(Ordering::Relaxed)
    }

    /// The installed assertion sets (cloned snapshot).
    pub fn installations(&self) -> Vec<Installation> {
        self.state_read().installations.clone()
    }

    /// Names of all installed assertions, in installation order.
    pub fn assertion_names(&self) -> Vec<String> {
        self.state_read()
            .installations
            .iter()
            .flat_map(|i| i.assertions.iter().map(|a| a.name.clone()))
            .collect()
    }

    /// A snapshot of the checker configuration.
    pub fn checker(&self) -> Tintin {
        self.state_read().tintin.clone()
    }

    // Lock poisoning is recovered from for the same reason SharedDatabase
    // recovers: every mutation of the state either completes or is
    // compensated before the guard drops.
    fn state_read(&self) -> RwLockReadGuard<'_, ServerState> {
        self.state.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn state_write(&self) -> RwLockWriteGuard<'_, ServerState> {
        self.state.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The private state of one open transaction: the `BEGIN`-time MVCC
/// snapshot (which row versions the transaction observes, pinned against
/// garbage collection), the pending-update overlay, plus named savepoints
/// (cheap snapshots of the overlay — pending updates are bounded by the
/// transaction's own statements).
#[derive(Debug)]
struct SessionTx {
    snapshot: Snapshot,
    overlay: TxOverlay,
    savepoints: Vec<(String, TxOverlay)>,
}

/// One connection to a [`Server`]: transactional statement execution over
/// the shared database.
///
/// A session holds no locks between statements. Reads execute against a
/// snapshot of row versions — the transaction's `BEGIN`-time snapshot
/// inside one, the latest committed state outside — taking only the shared
/// read lock, which an in-flight commit's check phase also shares: readers
/// never wait out another session's assertion checking. `COMMIT` (and
/// autocommitted DML) serializes on the commit lock and touches the
/// exclusive write lock only for update-sized bookkeeping. An open
/// transaction's pending updates live in the session's private overlay
/// until commit — visible to this session's own queries
/// (read-your-writes), invisible to every other session.
#[derive(Debug)]
pub struct Session {
    server: Server,
    id: u64,
    tx: Option<SessionTx>,
}

impl Default for Session {
    fn default() -> Self {
        Server::new().connect()
    }
}

/// Cloning a session opens a *new connection* to the same server: the clone
/// shares the database and assertions but starts outside any transaction.
impl Clone for Session {
    fn clone(&self) -> Self {
        self.server.connect()
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.server.open_sessions.fetch_sub(1, Ordering::Relaxed);
        self.server.obs.metrics.sessions_open.dec();
    }
}

impl Session {
    /// A single session over a fresh private server (the one-client
    /// convenience constructor; use [`Server::connect`] to share).
    pub fn new() -> Self {
        Session::default()
    }

    /// A session over an existing database (wrapped into a fresh server).
    pub fn with_database(db: Database) -> Self {
        Server::with_database(db).connect()
    }

    /// A session with an explicit checker configuration.
    pub fn with_database_and_checker(db: Database, tintin: Tintin) -> Self {
        Server::with_database_and_checker(db, tintin).connect()
    }

    /// The server this session is attached to.
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// The shared database handle. Lock it directly for bulk loading
    /// (`.write()`) or inspection (`.read()`); writing to it while this
    /// session's transaction is open bypasses the overlay and voids
    /// read-your-writes.
    pub fn database(&self) -> &SharedDatabase {
        &self.server.db
    }

    /// This connection's server-unique id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// A snapshot of the checker configuration.
    pub fn checker(&self) -> Tintin {
        self.server.checker()
    }

    /// The installed assertion sets (cloned snapshot; shared server-wide).
    pub fn installations(&self) -> Vec<Installation> {
        self.server.installations()
    }

    /// Names of all installed assertions, in installation order.
    pub fn assertion_names(&self) -> Vec<String> {
        self.server.assertion_names()
    }

    /// Is an explicit transaction open on this session?
    pub fn in_transaction(&self) -> bool {
        self.tx.is_some()
    }

    /// Pending `(insertions, deletions)` of this session's open
    /// transaction; `(0, 0)` outside one (plus any events staged directly
    /// into the shared event tables by engine-level callers — another
    /// session's in-flight commit staging is never counted).
    pub fn pending_counts(&self) -> (usize, usize) {
        match &self.tx {
            Some(tx) => tx.overlay.counts(),
            None => {
                let db = self.server.db.read();
                db.pending_counts_at(db.current_ts())
            }
        }
    }

    /// A clone of the open transaction's pending-update overlay — the
    /// exact per-table insertion/deletion sets a `COMMIT` would stage —
    /// or `None` outside a transaction. The simulation harness snapshots
    /// this right before `COMMIT` to replay the same update into its
    /// differential-oracle mirror.
    pub fn pending_overlay(&self) -> Option<TxOverlay> {
        self.tx.as_ref().map(|tx| tx.overlay.clone())
    }

    /// Per-table pending event counts of the open transaction (tables with
    /// no pending events are omitted).
    pub fn pending_by_table(&self) -> Vec<PendingTable> {
        match &self.tx {
            Some(tx) => tx
                .overlay
                .touched_tables()
                .into_iter()
                .map(|t| {
                    let d = tx.overlay.delta(&t).expect("touched implies delta");
                    PendingTable {
                        table: t,
                        inserts: d.ins.len(),
                        deletes: d.del.len(),
                    }
                })
                .collect(),
            None => {
                let db = self.server.db.read();
                // Count at the published clock: a concurrent commit's
                // staged (unpublished-timestamp) rows are not pending
                // events of *this* session's world.
                let s = db.current_ts();
                let mut out = Vec::new();
                for t in db.captured_tables() {
                    let ins = db
                        .table(&tintin_engine::ins_table_name(&t))
                        .map_or(0, |x| x.len_at(s));
                    let del = db
                        .table(&tintin_engine::del_table_name(&t))
                        .map_or(0, |x| x.len_at(s));
                    if ins + del > 0 {
                        out.push(PendingTable {
                            table: t,
                            inserts: ins,
                            deletes: del,
                        });
                    }
                }
                out
            }
        }
    }

    /// Live savepoints of the open transaction, oldest first.
    pub fn savepoints(&self) -> Vec<String> {
        self.tx
            .as_ref()
            .map(|t| t.savepoints.iter().map(|(n, _)| n.clone()).collect())
            .unwrap_or_default()
    }

    /// Install a batch of `CREATE ASSERTION` statements (event tables,
    /// capture, incremental views) for *every* session of the server. Not
    /// allowed inside a transaction.
    pub fn install(&mut self, assertions: &[&str]) -> Result<Installation> {
        if self.in_transaction() {
            return Err(SessionError::DdlInTransaction("CREATE ASSERTION".into()));
        }
        // Lock order everywhere: commit lock, then database, then checker
        // state. The commit lock keeps installs out of the unlocked middle
        // of another session's phased commit.
        let _commit = self.server.db.commit_guard();
        let mut db = self.server.db.write();
        let mut state = self.server.state_write();
        // Reject duplicates against already-installed assertions up front so
        // a failed install leaves the server untouched.
        let installed: Vec<String> = state
            .installations
            .iter()
            .flat_map(|i| i.assertions.iter().map(|a| a.name.clone()))
            .collect();
        for text in assertions {
            if let Ok(sql::Statement::CreateAssertion(a)) = sql::parse_statement(text) {
                if installed.contains(&a.name) {
                    return Err(SessionError::DuplicateAssertion(a.name));
                }
            }
        }
        let inst = state.tintin.install(&mut db, assertions)?;
        state.installations.push(inst.clone());
        if let Some(dura) = &self.server.dura {
            dura.log_install(assertions)?;
        }
        Ok(inst)
    }

    /// Remove one assertion and its incremental views, server-wide.
    pub fn drop_assertion(&mut self, name: &str) -> Result<()> {
        if self.in_transaction() {
            return Err(SessionError::DdlInTransaction("DROP ASSERTION".into()));
        }
        let _commit = self.server.db.commit_guard();
        let mut db = self.server.db.write();
        let mut state = self.server.state_write();
        durability::drop_assertion_in(&mut db, &mut state.installations, name)?;
        if let Some(dura) = &self.server.dura {
            dura.log_drop_assertion(name)?;
        }
        Ok(())
    }

    /// Execute a script of semicolon-separated statements, stopping at the
    /// first error. DML inside an open transaction accumulates in the
    /// session's private overlay; outside one it autocommits (plan → stage
    /// → check → apply/reject under the write lock).
    ///
    /// On failure the returned [`ScriptError`] carries the outcomes of the
    /// statements that *did* complete, the index and text of the failing
    /// one, and the underlying [`SessionError`] — so a caller (a REPL, a
    /// wire-protocol server) can report exactly how far the script got and
    /// whether a transaction was left open. (Boxed so the `Ok` side of the
    /// result stays register-sized; field access works through the box.)
    pub fn execute(
        &mut self,
        script: &str,
    ) -> std::result::Result<Vec<StatementOutcome>, Box<ScriptError>> {
        let stmts =
            sql::parse_statements(script).map_err(|e| ScriptError::parse(SessionError::from(e)))?;
        let mut out = Vec::with_capacity(stmts.len());
        for (i, stmt) in stmts.iter().enumerate() {
            match self.execute_statement(stmt) {
                Ok(outcome) => out.push(outcome),
                Err(error) => {
                    return Err(Box::new(ScriptError {
                        completed: out,
                        statement_index: i,
                        statement: stmt.to_string(),
                        error,
                    }))
                }
            }
        }
        Ok(out)
    }

    /// Run one query and return its rows (a convenience around
    /// [`Session::execute`] for `SELECT`-only callers). Inside an open
    /// transaction the result reflects the transaction's `BEGIN`-time
    /// snapshot plus this session's pending updates — repeated queries
    /// return identical results regardless of concurrent commits.
    pub fn query_rows(&self, query: &str) -> Result<ResultSet> {
        let q = sql::parse_query(query).map_err(SessionError::from)?;
        let db = self.server.db.read();
        Ok(db.query_with_overlay_at(
            &q,
            self.tx.as_ref().map(|t| &t.overlay),
            self.read_snapshot(&db),
        )?)
    }

    /// The snapshot timestamp this session's reads are pinned to: the
    /// transaction's `BEGIN`-time snapshot inside one, the latest
    /// *published* commit timestamp outside.
    ///
    /// Pinning autocommit reads to the published clock (instead of
    /// [`TS_LATEST`], which sees every live version) is what hides an
    /// in-flight commit's staged event rows: they are stamped with the
    /// committer's still-unpublished timestamp, above any value this can
    /// return. The caller must hold `db`'s read guard across the query so
    /// the clock cannot advance under it.
    fn read_snapshot(&self, db: &Database) -> u64 {
        self.tx
            .as_ref()
            .map_or_else(|| db.current_ts(), |t| t.snapshot.ts())
    }

    /// Execute a single parsed statement.
    pub fn execute_statement(&mut self, stmt: &sql::Statement) -> Result<StatementOutcome> {
        match stmt {
            sql::Statement::Begin => self.begin(),
            sql::Statement::Commit => self.commit(),
            sql::Statement::Rollback { to: None } => self.rollback(),
            sql::Statement::Rollback { to: Some(name) } => self.rollback_to(name),
            sql::Statement::Savepoint { name } => self.savepoint(name),
            sql::Statement::Release { name } => self.release(name),
            sql::Statement::CreateAssertion(a) => {
                let text = stmt.to_string();
                let inst = self.install(&[text.as_str()])?;
                let warnings = inst
                    .assertions
                    .iter()
                    .find(|ia| ia.name == a.name)
                    .map(|ia| ia.warnings.clone())
                    .unwrap_or_default();
                Ok(StatementOutcome::AssertionInstalled {
                    name: a.name.clone(),
                    views: inst.view_count(),
                    warnings,
                })
            }
            sql::Statement::DropAssertion { name } => {
                self.drop_assertion(name)?;
                Ok(StatementOutcome::AssertionDropped { name: name.clone() })
            }
            sql::Statement::ExplainAssertion { name } => {
                let state = self.server.state_read();
                state
                    .installations
                    .iter()
                    .find_map(|i| i.explain_assertion(name))
                    .map(|e| StatementOutcome::Explain(Box::new(e)))
                    .ok_or_else(|| SessionError::NoSuchAssertion(name.clone()))
            }
            ddl if ddl.is_ddl() => {
                if self.in_transaction() {
                    // The verb phrase comes from the AST variant, not from
                    // the printed SQL's first tokens (`CREATE UNIQUE INDEX
                    // …` must not be reported as "CREATE UNIQUE").
                    return Err(SessionError::DdlInTransaction(ddl.kind().to_string()));
                }
                // DDL takes the commit lock too: a schema change may not
                // slip into the unlocked middle of a phased commit.
                let _commit = self.server.db.commit_guard();
                self.server.db.write().execute(ddl)?;
                if let Some(dura) = &self.server.dura {
                    dura.log_ddl(&ddl.to_string())?;
                }
                Ok(StatementOutcome::Ddl)
            }
            sql::Statement::Query(q) => {
                let db = self.server.db.read();
                let snapshot = self.read_snapshot(&db);
                let rs =
                    db.query_with_overlay_at(q, self.tx.as_ref().map(|t| &t.overlay), snapshot)?;
                Ok(StatementOutcome::Rows(rs))
            }
            dml => {
                // INSERT / DELETE / UPDATE.
                if let Some(tx) = self.tx.as_mut() {
                    // Planning only reads (against the BEGIN-time snapshot
                    // plus the overlay): a shared lock suffices, so other
                    // sessions keep reading while this one stages work.
                    let delta =
                        self.server
                            .db
                            .read()
                            .plan_dml_at(dml, &tx.overlay, tx.snapshot.ts())?;
                    let n = delta.rows_affected;
                    tx.overlay.apply_delta(&delta);
                    Ok(StatementOutcome::RowsAffected(n))
                } else {
                    self.autocommit(dml)
                }
            }
        }
    }

    /// `BEGIN`: open a transaction. An MVCC snapshot of the latest
    /// committed state is captured (and pinned against garbage collection);
    /// pending updates accumulate in the session's private overlay until
    /// `COMMIT` — nothing touches the shared database, so `ROLLBACK` is
    /// simply discarding the overlay and releasing the snapshot.
    pub fn begin(&mut self) -> Result<StatementOutcome> {
        if self.in_transaction() {
            return Err(SessionError::TransactionAlreadyOpen);
        }
        self.tx = Some(SessionTx {
            snapshot: self.server.db.begin_snapshot(),
            overlay: TxOverlay::new(),
            savepoints: Vec::new(),
        });
        Ok(StatementOutcome::TransactionStarted)
    }

    /// `COMMIT`: run the phased MVCC commit over every installed assertion
    /// set. Committers serialize on the commit lock; the exclusive write
    /// lock is held only for the two update-sized bookkeeping phases —
    /// (1) first-committer-wins conflict detection + staging +
    /// normalization, (3) version stamping + publication + GC — while the
    /// expensive check phase (2) runs under the shared *read* lock,
    /// concurrent with other sessions' reads.
    ///
    /// On success the pending update is applied (as row versions stamped
    /// with a fresh commit timestamp) and the transaction closed; on
    /// violation it is discarded atomically and the violating tuples
    /// reported; on a lost first-committer-wins race it is discarded with
    /// [`SessionError::SerializationConflict`]. No session can observe any
    /// state between "before the commit" and "after the decision": open
    /// snapshots keep reading the pre-commit versions, and the latest state
    /// flips atomically when the timestamp is published.
    pub fn commit(&mut self) -> Result<StatementOutcome> {
        let Some(tx) = self.tx.take() else {
            return Err(SessionError::NoActiveTransaction);
        };
        self.phased_commit(&tx.overlay, tx.snapshot.ts())
    }

    /// The three-phase commit protocol (see [`Session::commit`]). The
    /// caller has already detached the transaction: whatever happens here,
    /// the session ends up outside one, with the shared event tables empty.
    fn phased_commit(&self, overlay: &TxOverlay, snapshot: u64) -> Result<StatementOutcome> {
        // Read-only fast path, checked *before* queueing on the commit
        // lock: a transaction with nothing pending (and no hand-staged
        // events awaiting a carrier commit) has nothing to check, apply or
        // publish — it must not wait out a concurrent checked commit's
        // expensive phase or bump the commit clock.
        if self.nothing_to_commit(overlay) {
            // Fast-path commits count toward the conservation invariant
            // (attempts == commits + rejects + conflicts + errors) but not
            // toward the latency histograms — a no-op is not a latency
            // sample.
            let m = &self.server.obs.metrics;
            m.attempts.inc();
            m.commits.inc();
            return Ok(StatementOutcome::Committed {
                inserted: 0,
                deleted: 0,
                stats: CheckStats::default(),
            });
        }
        let commit = self.server.db.commit_guard();
        let res = self.phased_commit_guarded(overlay, snapshot);
        // Group commit: release the commit lock *before* the durability
        // sync, so concurrent committers' fsyncs coalesce on one leader
        // (`finish_durable`). The commit is already published — the sync
        // only gates the acknowledgment.
        drop(commit);
        let (outcome, wal_lsn) = res?;
        self.finish_durable(wal_lsn)?;
        Ok(outcome)
    }

    /// Is there nothing for a commit to do — an empty overlay and empty
    /// shared event tables (engine-level callers may hand-stage events that
    /// any session's next real commit carries)?
    fn nothing_to_commit(&self, overlay: &TxOverlay) -> bool {
        overlay.is_empty() && {
            let db = self.server.db.read();
            // Probe at the published clock, not TS_LATEST: a concurrent
            // commit's staged (unpublished-timestamp) event rows must not
            // defeat this fast path, or an empty COMMIT would queue on the
            // commit lock behind that commit's whole check phase — the
            // stall the fast path exists to avoid. Hand-staged carrier
            // events (`begin = 0`) are still seen and still force a real
            // commit.
            db.pending_counts_at(db.current_ts()) == (0, 0)
        }
    }

    /// [`Session::phased_commit`] with the commit lock already held by the
    /// caller (autocommit holds it from planning onwards). On a durable
    /// server a successful commit also returns the LSN of its log record;
    /// the *caller* syncs to it after releasing the commit lock
    /// ([`Session::finish_durable`]) — that ordering is the group-commit
    /// amortization.
    fn phased_commit_guarded(
        &self,
        overlay: &TxOverlay,
        snapshot: u64,
    ) -> Result<(StatementOutcome, Option<Lsn>)> {
        let state = self.server.state_read();
        let m = &self.server.obs.metrics;
        let hook = self.server.hook.get();
        m.attempts.inc();

        // No-op fast path (autocommitted statements that planned to
        // nothing, e.g. an UPDATE matching zero rows): skip the phases and
        // the clock bump. The guard is already held, so this is cheap.
        if self.nothing_to_commit(overlay) {
            m.commits.inc();
            return Ok((
                StatementOutcome::Committed {
                    inserted: 0,
                    deleted: 0,
                    stats: CheckStats::default(),
                },
                None,
            ));
        }

        // Per-phase spans: one clock read per phase boundary, and none at
        // all under a no-op registry.
        let mut span = Stopwatch::start_if(self.server.obs.registry.is_enabled());

        // Phase 1 — write lock, O(update): lose now if a concurrent commit
        // invalidated the snapshot this update was planned against, else
        // stage the overlay into the event tables and normalize. Staged
        // event rows are stamped with this commit's still-unpublished
        // timestamp: invisible to every other session's reads (which pin to
        // a registered snapshot or the published clock) until — and only if
        // — phase 3 publishes.
        let (ts, normalization, touched_list) = {
            let mut db = self.server.db.write();
            let ts = db.next_commit_ts();
            let staged = (|| {
                db.detect_conflicts(overlay, snapshot)?;
                db.stage_overlay_at(overlay, ts)?;
                db.normalize_events_touched()
            })();
            match staged {
                Ok((normalization, touched_list)) => (ts, normalization, touched_list),
                Err(e) => {
                    // Partial staging is discarded; base tables untouched.
                    db.truncate_events();
                    if matches!(e, EngineError::SerializationConflict { .. }) {
                        m.conflicts.inc();
                    } else {
                        m.errors.inc();
                    }
                    return Err(e.into());
                }
            }
        };
        let stage_time = span.lap();
        m.stage_seconds.record(stage_time);
        // Phase boundary: staged but unchecked, no rwlock held. (Hook time
        // bleeds into the check-phase span; the hook is a test-only seam.)
        if let Some(h) = &hook {
            if h(self.id, CommitPhase::Staged) == HookAction::Abort {
                return self.abort_in_flight(&touched_list, m).map(|o| (o, None));
            }
        }
        let mut stats = CheckStats {
            normalization,
            ..CheckStats::default()
        };

        // Phase 2 — read lock, the expensive part: evaluate every touched
        // check through its prepared plan. Other sessions read concurrently:
        // base versions are untouched so far, and the staged ins_T/del_T
        // rows carry the unpublished timestamp — so neither base-table nor
        // event-table/vio-view reads can observe this commit mid-flight.
        // (The check itself reads the event tables at TS_LATEST, which sees
        // every live version regardless of its begin stamp.)
        let touched = TouchedEvents::from_list(&touched_list);
        let checked = {
            let db = self.server.db.read();
            let mut all = Vec::new();
            let mut failure = None;
            for inst in &state.installations {
                match state
                    .tintin
                    .check_normalized(&db, inst, &touched, &mut stats)
                {
                    Ok(v) => all.extend(v),
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            (all, failure)
        };
        let check_time = span.lap();
        m.check_seconds.record(check_time);
        m.plans_reused.add(stats.plans_reused as u64);
        m.plans_recompiled.add(stats.plans_recompiled as u64);
        m.checks_evaluated
            .add((stats.views_evaluated + stats.fallbacks_evaluated) as u64);

        // Phase boundary: verdict computed, nothing acted on, no rwlock
        // held.
        if let Some(h) = &hook {
            if h(self.id, CommitPhase::Checked) == HookAction::Abort {
                return self.abort_in_flight(&touched_list, m).map(|o| (o, None));
            }
        }

        // Phase 3 — write lock, O(update): stamp versions and publish, or
        // discard.
        let mut db = self.server.db.write();
        let (violations, failure) = checked;
        if let Some(e) = failure {
            db.truncate_events_for(&touched_list);
            m.errors.inc();
            return Err(e.into());
        }
        if violations.is_empty() {
            let (inserted, deleted) = db.pending_counts_for(&touched_list);
            // The commit lock has been held since phase 1, so the timestamp
            // reserved there is still the next one to publish.
            debug_assert_eq!(ts, db.next_commit_ts());
            if let Err(e) = db.apply_pending_versioned_for(&touched_list, ts) {
                // Compensated by version un-stamping; ts was never
                // published, so no session saw anything.
                db.truncate_events_for(&touched_list);
                m.errors.inc();
                return Err(e.into());
            }
            // Write-ahead: on a durable server the commit's normalized
            // effects reach the log before the timestamp publishes. Both
            // happen under the commit lock, so log order equals publish
            // order; the fsync waits until the lock drops (group commit).
            // The staged event tables still hold the effects — apply
            // copied them, truncation comes next.
            let mut wal_lsn = None;
            if let Some(dura) = &self.server.dura {
                if dura.fault() != DurabilityFault::AckBeforeLog {
                    match dura.append_commit(ts, db.staged_effects_for(&touched_list)) {
                        Ok(lsn) => wal_lsn = Some(lsn),
                        Err(e) => {
                            // The record never reached the log: withdraw
                            // the apply (ts is unpublished, so nothing was
                            // observable) and fail the commit.
                            db.unapply_pending_versioned_for(&touched_list, ts);
                            db.truncate_events_for(&touched_list);
                            m.errors.inc();
                            return Err(e);
                        }
                    }
                }
            }
            db.truncate_events_for(&touched_list);
            db.publish_commit(ts);
            // Commit-piggybacked GC: prune versions no live snapshot can
            // see, on the touched tables, once enough history accumulated.
            let horizon = self.server.db.gc_horizon(ts);
            db.maybe_gc_for(&touched_list, horizon);
            drop(db);
            let publish_time = span.lap();
            m.publish_seconds.record(publish_time);
            m.commits.inc();
            let total = stage_time + check_time + publish_time;
            m.commit_seconds.record(total);
            self.report_slow_commit(ts, total, stage_time, check_time, publish_time);
            if let Some(h) = &hook {
                h(self.id, CommitPhase::Published);
            }
            Ok((
                StatementOutcome::Committed {
                    inserted,
                    deleted,
                    stats,
                },
                wal_lsn,
            ))
        } else {
            db.truncate_events_for(&touched_list);
            drop(db);
            let publish_time = span.lap();
            m.rejects.inc();
            m.violations.add(violations.len() as u64);
            let total = stage_time + check_time + publish_time;
            self.report_slow_commit(ts, total, stage_time, check_time, publish_time);
            if let Some(h) = &hook {
                h(self.id, CommitPhase::Rejected);
            }
            // Rejected commits never reach the log: recovery replays only
            // acknowledged history.
            Ok((StatementOutcome::Rejected { violations, stats }, None))
        }
    }

    /// Make an acknowledged commit durable: group-fsync the log up to its
    /// record, then run the size-triggered checkpoint policy. Called with
    /// the commit lock *released* — concurrent committers coalesce on one
    /// leader fsync. A checkpoint failure is logged, not surfaced: the
    /// commit itself is already durable.
    fn finish_durable(&self, wal_lsn: Option<Lsn>) -> Result<()> {
        let (Some(dura), Some(lsn)) = (&self.server.dura, wal_lsn) else {
            return Ok(());
        };
        dura.sync_to(lsn)?;
        if dura.should_checkpoint() {
            if let Err(e) = self.server.checkpoint() {
                log_warn!("tintin_session", "size-triggered checkpoint failed: {e}");
            }
        }
        Ok(())
    }

    /// A [`HookAction::Abort`] landed mid-commit: discard the staged
    /// events (the base tables were never touched — phase 3 had not run)
    /// and surface a transaction error, exactly the trace-free rollback a
    /// crashed committer must leave behind.
    fn abort_in_flight(
        &self,
        touched: &[tintin_engine::TouchedTable],
        m: &SessionMetrics,
    ) -> Result<StatementOutcome> {
        let mut db = self.server.db.write();
        db.truncate_events_for(touched);
        drop(db);
        m.errors.inc();
        Err(SessionError::Engine(EngineError::Transaction(
            "commit aborted mid-flight by commit hook (fault injection)".into(),
        )))
    }

    /// Emit the slow-commit `WARN` line when the configured threshold is
    /// enabled and this commit's total phased latency reached it. The line
    /// carries the per-phase breakdown, so a pathological commit is
    /// diagnosable from the log alone (which phase ate the time: staging
    /// under the write lock, checking under the read lock, or
    /// publish/GC under the write lock).
    fn report_slow_commit(
        &self,
        ts: u64,
        total: Duration,
        stage: Duration,
        check: Duration,
        publish: Duration,
    ) {
        let threshold = self.server.obs.slow_commit_nanos.load(Ordering::Relaxed);
        if threshold == 0 || (total.as_nanos() as u64) < threshold {
            return;
        }
        log_warn!(
            "tintin_session",
            "slow commit: session={} ts={ts} total={total:?} stage={stage:?} \
             check={check:?} publish={publish:?} threshold={:?}",
            self.id,
            Duration::from_nanos(threshold),
        );
    }

    /// `ROLLBACK`: abort the open transaction by discarding its overlay.
    /// The shared database was never touched.
    pub fn rollback(&mut self) -> Result<StatementOutcome> {
        if self.tx.take().is_none() {
            return Err(SessionError::NoActiveTransaction);
        }
        Ok(StatementOutcome::RolledBack)
    }

    /// `SAVEPOINT name`: snapshot the overlay. Re-using a name moves the
    /// savepoint (standard SQL semantics).
    pub fn savepoint(&mut self, name: &str) -> Result<StatementOutcome> {
        let tx = self.tx.as_mut().ok_or(SessionError::NoActiveTransaction)?;
        tx.savepoints.retain(|(n, _)| n != name);
        tx.savepoints.push((name.to_string(), tx.overlay.clone()));
        Ok(StatementOutcome::SavepointCreated(name.to_string()))
    }

    /// `ROLLBACK TO name`: restore the overlay snapshot taken at the
    /// savepoint. The savepoint itself survives; later ones are discarded.
    pub fn rollback_to(&mut self, name: &str) -> Result<StatementOutcome> {
        let tx = self.tx.as_mut().ok_or(SessionError::NoActiveTransaction)?;
        let pos = tx
            .savepoints
            .iter()
            .rposition(|(n, _)| n == name)
            .ok_or_else(|| SessionError::NoSuchSavepoint(name.to_string()))?;
        tx.savepoints.truncate(pos + 1);
        tx.overlay = tx.savepoints[pos].1.clone();
        Ok(StatementOutcome::RolledBackToSavepoint(name.to_string()))
    }

    /// `RELEASE name`: discard a savepoint (and any later ones), merging
    /// its changes into the enclosing scope.
    pub fn release(&mut self, name: &str) -> Result<StatementOutcome> {
        let tx = self.tx.as_mut().ok_or(SessionError::NoActiveTransaction)?;
        let pos = tx
            .savepoints
            .iter()
            .rposition(|(n, _)| n == name)
            .ok_or_else(|| SessionError::NoSuchSavepoint(name.to_string()))?;
        tx.savepoints.truncate(pos);
        Ok(StatementOutcome::SavepointReleased(name.to_string()))
    }

    /// Dry-run check of the open transaction's pending update (no commit):
    /// stage the overlay, evaluate the incremental views, and restore the
    /// event-capture state exactly as found — events staged by hand by
    /// engine-level callers survive the dry run untouched (not even
    /// normalized). Outside a transaction the check still runs, over
    /// whatever is staged in the shared event tables.
    pub fn check_pending(&self) -> Result<(Vec<Violation>, CheckStats)> {
        // The commit lock keeps the dry run's staged events from mixing
        // with a concurrent phased commit's.
        let _commit = self.server.db.commit_guard();
        let mut db = self.server.db.write();
        let state = self.server.state_read();
        let saved = db.snapshot_events();
        let result = (|| {
            if let Some(tx) = &self.tx {
                db.stage_overlay(&tx.overlay)?;
            }
            check_staged(&mut db, &state)
        })();
        db.restore_events(saved);
        result
    }

    // ------------------------------------------------------------ internal

    /// Statement-as-transaction: plan the statement's effects, then run the
    /// same phased commit an explicit single-statement transaction would.
    /// The commit lock is held from planning through publication, so the
    /// planned state cannot be invalidated in between. On any error the
    /// staged events are discarded, so a failed statement can never poison
    /// later ones.
    fn autocommit(&mut self, dml: &sql::Statement) -> Result<StatementOutcome> {
        let commit = self.server.db.commit_guard();
        let res = (|| {
            let (overlay, snapshot) = {
                // Planning only reads; concurrent readers are unaffected.
                let db = self.server.db.read();
                let snapshot = db.current_ts();
                let mut overlay = TxOverlay::new();
                let delta = db.plan_dml_at(dml, &overlay, TS_LATEST)?;
                overlay.apply_delta(&delta);
                (overlay, snapshot)
            };
            self.phased_commit_guarded(&overlay, snapshot)
        })();
        // Same group-commit ordering as `phased_commit`: lock released,
        // then fsync before the acknowledgment.
        drop(commit);
        let (outcome, wal_lsn) = res?;
        self.finish_durable(wal_lsn)?;
        Ok(outcome)
    }
}

/// The multi-installation check over the staged event tables.
///
/// The write-locked critical section stays O(touched checks): events are
/// normalized exactly once per commit, the touched event tables are scanned
/// once, and each installation's relevance index is consulted with that set
/// — only checks whose gate tables have pending events are evaluated, each
/// through its install-time prepared plan.
fn check_staged(db: &mut Database, state: &ServerState) -> Result<(Vec<Violation>, CheckStats)> {
    let (violations, stats, _) = check_staged_touched(db, state)?;
    Ok((violations, stats))
}

/// [`check_staged`] plus the post-normalization touched-table list, so the
/// commit can apply and truncate without re-scanning the captured set.
type TouchedList = Vec<tintin_engine::TouchedTable>;
fn check_staged_touched(
    db: &mut Database,
    state: &ServerState,
) -> Result<(Vec<Violation>, CheckStats, TouchedList)> {
    let mut all = Vec::new();
    // Normalize unconditionally: even with zero installations the
    // subsequent apply must see normalized events, or a set-semantics
    // no-op (e.g. re-inserting an existing row) would explode into a key
    // conflict. This is the only scan of the captured set in the whole
    // commit; everything downstream reuses the touched list.
    let (normalization, touched_list) = db.normalize_events_touched()?;
    let mut stats = CheckStats {
        normalization,
        ..CheckStats::default()
    };
    let touched = tintin::TouchedEvents::from_list(&touched_list);
    for inst in &state.installations {
        let violations = state
            .tintin
            .check_normalized(db, inst, &touched, &mut stats)?;
        all.extend(violations);
    }
    Ok((all, stats, touched_list))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orders_session() -> Session {
        let mut s = Session::new();
        s.execute(
            "CREATE TABLE orders (o_orderkey INT PRIMARY KEY, o_totalprice REAL);
             CREATE TABLE lineitem (
                 l_orderkey INT NOT NULL REFERENCES orders,
                 l_linenumber INT NOT NULL,
                 PRIMARY KEY (l_orderkey, l_linenumber));",
        )
        .unwrap();
        s.install(&["CREATE ASSERTION atLeastOneLineItem CHECK (NOT EXISTS (
            SELECT * FROM orders o WHERE NOT EXISTS (
                SELECT * FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)))"])
            .unwrap();
        s
    }

    fn table_len(s: &Session, table: &str) -> usize {
        s.database().read().table(table).unwrap().len()
    }

    #[test]
    fn autocommit_rejects_violating_statement() {
        let mut s = orders_session();
        let out = s.execute("INSERT INTO orders VALUES (1, 10.0)").unwrap();
        assert!(out[0].is_rejected());
        assert_eq!(table_len(&s, "orders"), 0);
        assert_eq!(s.pending_counts(), (0, 0));
    }

    #[test]
    fn transaction_commits_consistent_batch() {
        let mut s = orders_session();
        let out = s
            .execute(
                "BEGIN;
                 INSERT INTO orders VALUES (1, 10.0);
                 INSERT INTO lineitem VALUES (1, 1);
                 COMMIT;",
            )
            .unwrap();
        assert!(matches!(out[0], StatementOutcome::TransactionStarted));
        assert!(out[3].is_committed());
        assert_eq!(table_len(&s, "orders"), 1);
        assert!(!s.in_transaction());
    }

    #[test]
    fn rejected_commit_rolls_back_atomically() {
        let mut s = orders_session();
        s.execute(
            "BEGIN; INSERT INTO orders VALUES (1, 10.0);
             INSERT INTO lineitem VALUES (1, 1); COMMIT;",
        )
        .unwrap();
        let out = s
            .execute("BEGIN; INSERT INTO orders VALUES (2, 20.0); COMMIT;")
            .unwrap();
        let StatementOutcome::Rejected { violations, .. } = &out[2] else {
            panic!("expected rejection, got {:?}", out[2]);
        };
        assert_eq!(violations[0].assertion, "atleastonelineitem");
        assert_eq!(table_len(&s, "orders"), 1);
        assert_eq!(s.pending_counts(), (0, 0));
        assert!(!s.in_transaction());
    }

    #[test]
    fn rollback_discards_pending_work() {
        let mut s = orders_session();
        s.execute("BEGIN; INSERT INTO orders VALUES (1, 10.0); ROLLBACK;")
            .unwrap();
        assert_eq!(table_len(&s, "orders"), 0);
        assert_eq!(s.pending_counts(), (0, 0));
    }

    #[test]
    fn savepoints_partial_rollback() {
        let mut s = orders_session();
        let out = s
            .execute(
                "BEGIN;
                 INSERT INTO orders VALUES (1, 10.0);
                 INSERT INTO lineitem VALUES (1, 1);
                 SAVEPOINT consistent;
                 INSERT INTO orders VALUES (2, 20.0);
                 ROLLBACK TO consistent;
                 COMMIT;",
            )
            .unwrap();
        assert!(out.last().unwrap().is_committed());
        assert_eq!(table_len(&s, "orders"), 1);
    }

    #[test]
    fn ddl_rejected_inside_transaction() {
        let mut s = orders_session();
        s.execute("BEGIN").unwrap();
        let err = s.execute("CREATE TABLE x (a INT)").unwrap_err();
        assert!(matches!(err.error, SessionError::DdlInTransaction(_)));
        s.execute("ROLLBACK").unwrap();
        s.execute("CREATE TABLE x (a INT)").unwrap();
    }

    #[test]
    fn create_assertion_statement_installs() {
        let mut s = Session::new();
        s.execute("CREATE TABLE t (a INT PRIMARY KEY)").unwrap();
        let out = s
            .execute("CREATE ASSERTION positive CHECK (NOT EXISTS (SELECT * FROM t WHERE a < 0))")
            .unwrap();
        assert!(matches!(
            out[0],
            StatementOutcome::AssertionInstalled { .. }
        ));
        assert_eq!(s.assertion_names(), vec!["positive".to_string()]);
        assert!(s.execute("INSERT INTO t VALUES (-1)").unwrap()[0].is_rejected());
        assert!(s.execute("INSERT INTO t VALUES (1)").unwrap()[0].is_committed());

        // Dropping it lifts the constraint.
        s.execute("DROP ASSERTION positive").unwrap();
        assert!(s.assertion_names().is_empty());
        assert!(s.execute("INSERT INTO t VALUES (-1)").unwrap()[0].is_committed());
    }

    #[test]
    fn duplicate_assertion_rejected() {
        let mut s = Session::new();
        s.execute("CREATE TABLE t (a INT PRIMARY KEY)").unwrap();
        s.execute("CREATE ASSERTION a1 CHECK (NOT EXISTS (SELECT * FROM t WHERE a < 0))")
            .unwrap();
        let err = s
            .execute("CREATE ASSERTION a1 CHECK (NOT EXISTS (SELECT * FROM t WHERE a > 9))")
            .unwrap_err();
        assert!(matches!(err.error, SessionError::DuplicateAssertion(_)));
    }

    #[test]
    fn transaction_state_errors_are_precise() {
        let mut s = orders_session();
        assert!(matches!(
            s.execute("COMMIT").unwrap_err().error,
            SessionError::NoActiveTransaction
        ));
        s.execute("BEGIN").unwrap();
        assert!(matches!(
            s.execute("BEGIN").unwrap_err().error,
            SessionError::TransactionAlreadyOpen
        ));
        assert!(matches!(
            s.execute("ROLLBACK TO nope").unwrap_err().error,
            SessionError::NoSuchSavepoint(_)
        ));
        s.execute("ROLLBACK").unwrap();
    }

    #[test]
    fn queries_inside_tx_read_their_own_writes() {
        let mut s = orders_session();
        s.execute("BEGIN; INSERT INTO orders VALUES (1, 10.0);")
            .unwrap();
        // Read-your-writes: the pending insert is visible to this session…
        let out = s.execute("SELECT * FROM orders").unwrap();
        let StatementOutcome::Rows(rs) = &out[0] else {
            panic!()
        };
        assert_eq!(rs.len(), 1, "a transaction must read its own writes");
        // …but lives only in the overlay, not in the shared database…
        assert_eq!(table_len(&s, "orders"), 0);
        let pending = s.pending_by_table();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].table, "orders");
        assert_eq!(pending[0].inserts, 1);
        // …and another session attached to the same database cannot see it.
        let other = s.server().connect();
        assert_eq!(
            other.query_rows("SELECT * FROM orders").unwrap().len(),
            0,
            "pending events must not leak to other sessions"
        );
        s.execute("ROLLBACK").unwrap();
    }

    #[test]
    fn transaction_dml_reads_its_own_writes() {
        let mut s = Session::new();
        s.execute("CREATE TABLE t (a INT PRIMARY KEY, b INT)")
            .unwrap();
        s.execute("BEGIN; INSERT INTO t VALUES (1, 10); INSERT INTO t VALUES (2, 20);")
            .unwrap();
        // UPDATE of a pending insert retracts and replaces it…
        let out = s.execute("UPDATE t SET b = 11 WHERE a = 1").unwrap();
        assert!(matches!(out[0], StatementOutcome::RowsAffected(1)));
        // …and DELETE of a pending insert un-proposes it.
        let out = s.execute("DELETE FROM t WHERE a = 2").unwrap();
        assert!(matches!(out[0], StatementOutcome::RowsAffected(1)));
        assert_eq!(s.pending_counts(), (1, 0));
        let out = s.execute("COMMIT").unwrap();
        assert!(out[0].is_committed());
        let rs = s.query_rows("SELECT a, b FROM t").unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][1], tintin_engine::Value::Int(11));
    }

    #[test]
    fn sessions_without_assertions_still_get_transactions() {
        let mut s = Session::new();
        s.execute("CREATE TABLE t (a INT PRIMARY KEY)").unwrap();
        s.execute("BEGIN; INSERT INTO t VALUES (1); INSERT INTO t VALUES (2); COMMIT;")
            .unwrap();
        assert_eq!(table_len(&s, "t"), 2);
        s.execute("BEGIN; DELETE FROM t WHERE a = 1; ROLLBACK;")
            .unwrap();
        assert_eq!(table_len(&s, "t"), 2);
    }

    #[test]
    fn failed_autocommit_apply_does_not_poison_session() {
        let mut s = Session::new();
        s.execute("CREATE TABLE t (a INT PRIMARY KEY, b INT)")
            .unwrap();
        assert!(s.execute("INSERT INTO t VALUES (1, 10)").unwrap()[0].is_committed());
        // Same PK, different payload: survives normalization (the rows are
        // not identical) but conflicts at apply time.
        assert!(s.execute("INSERT INTO t VALUES (1, 99)").is_err());
        // The failed statement's events must be discarded with it…
        assert_eq!(s.pending_counts(), (0, 0));
        // …so the session keeps working.
        assert!(s.execute("INSERT INTO t VALUES (2, 20)").unwrap()[0].is_committed());
        assert_eq!(table_len(&s, "t"), 2);
    }

    #[test]
    fn duplicate_key_rejected_at_statement_time() {
        use tintin_engine::EngineError;
        let mut s = Session::new();
        s.execute("CREATE TABLE t (a INT PRIMARY KEY, b INT)")
            .unwrap();
        s.execute("INSERT INTO t VALUES (1, 10)").unwrap();
        s.execute("BEGIN").unwrap();
        // A key conflict with a committed row fails at statement time (not
        // as an opaque engine error at COMMIT), so the transaction never
        // observes duplicate-key state…
        let err = s.execute("INSERT INTO t VALUES (1, 99)").unwrap_err();
        assert!(matches!(
            err.error,
            SessionError::Engine(EngineError::UniqueViolation { .. })
        ));
        assert_eq!(s.query_rows("SELECT * FROM t").unwrap().len(), 1);
        // …and so does a conflict between two pending rows.
        s.execute("INSERT INTO t VALUES (2, 20)").unwrap();
        assert!(s.execute("INSERT INTO t VALUES (2, 21)").is_err());
        // Re-inserting an identical existing row is the set-semantics no-op.
        s.execute("INSERT INTO t VALUES (1, 10)").unwrap();
        // UPDATE moving a key onto an occupied one is caught too.
        assert!(s.execute("UPDATE t SET a = 1 WHERE a = 2").is_err());
        // Delete-then-reinsert under the same key is legal.
        s.execute("DELETE FROM t WHERE a = 1; INSERT INTO t VALUES (1, 11);")
            .unwrap();
        let out = s.execute("COMMIT").unwrap();
        assert!(out[0].is_committed(), "got {:?}", out[0]);
        let rs = s.query_rows("SELECT b FROM t WHERE a = 1").unwrap();
        assert_eq!(rs.rows[0][0], tintin_engine::Value::Int(11));
    }

    #[test]
    fn deleting_duplicate_rows_is_consistent_between_tx_and_commit() {
        use tintin_engine::Value;
        let mut s = Session::new();
        {
            // Duplicate rows need a PK-less table and the direct loader
            // (the event pipeline itself is set-semantics).
            let mut db = s.database().write();
            db.execute_sql("CREATE TABLE u (a INT)").unwrap();
            db.insert_direct(
                "u",
                vec![
                    vec![Value::Int(7)],
                    vec![Value::Int(7)],
                    vec![Value::Int(8)],
                ],
            )
            .unwrap();
        }
        s.execute("BEGIN").unwrap();
        let out = s.execute("DELETE FROM u WHERE a = 7").unwrap();
        assert!(matches!(out[0], StatementOutcome::RowsAffected(2)));
        // What the transaction sees is what commit produces: the deletion
        // event removes every identical copy.
        assert_eq!(s.query_rows("SELECT * FROM u").unwrap().len(), 1);
        s.execute("COMMIT").unwrap();
        assert_eq!(s.query_rows("SELECT * FROM u").unwrap().len(), 1);
    }

    #[test]
    fn dry_run_check_preserves_hand_staged_events() {
        use tintin_engine::Value;
        let mut s = Session::new();
        s.execute("CREATE TABLE t (a INT PRIMARY KEY)").unwrap();
        {
            // Engine-level escape hatch: stage an event directly.
            let mut db = s.database().write();
            db.enable_capture("t").unwrap();
            db.insert_rows("t", vec![vec![Value::Int(5)]]).unwrap();
        }
        s.execute("BEGIN; INSERT INTO t VALUES (6);").unwrap();
        let (violations, _) = s.check_pending().unwrap();
        assert!(violations.is_empty());
        // The dry run staged and unstaged the overlay without destroying
        // the hand-staged event.
        assert_eq!(s.database().read().table("ins_t").unwrap().len(), 1);
        s.execute("ROLLBACK").unwrap();
        // The no-transaction dry run is side-effect-free too: the staged
        // event is checked but neither applied nor normalized away.
        s.check_pending().unwrap();
        assert_eq!(s.database().read().table("ins_t").unwrap().len(), 1);
    }

    #[test]
    fn identical_reinsert_is_a_visible_noop_and_commits() {
        let mut s = Session::new();
        s.execute("CREATE TABLE t (a INT PRIMARY KEY, b INT)")
            .unwrap();
        s.execute("INSERT INTO t VALUES (1, 10)").unwrap();
        s.execute("BEGIN; INSERT INTO t VALUES (1, 10); INSERT INTO t VALUES (1, 10);")
            .unwrap();
        // The no-op insertions are dropped at plan time: read-your-writes
        // never shows duplicate rows…
        assert_eq!(s.query_rows("SELECT * FROM t").unwrap().len(), 1);
        assert_eq!(s.pending_counts(), (0, 0));
        // …and COMMIT (with zero assertions installed, so the check loop
        // alone would never normalize) applies cleanly.
        let out = s.execute("COMMIT").unwrap();
        assert!(out[0].is_committed(), "got {:?}", out[0]);
        assert_eq!(s.query_rows("SELECT * FROM t").unwrap().len(), 1);
    }

    #[test]
    fn commit_normalizes_even_without_assertions() {
        use tintin_engine::Value;
        let mut s = Session::new();
        s.execute("CREATE TABLE t (a INT PRIMARY KEY)").unwrap();
        s.execute("INSERT INTO t VALUES (1)").unwrap();
        {
            // Hand-stage an event identical to an existing base row: the
            // set-semantics no-op normalization must drop it even when no
            // assertion is installed. (Capture is already on: the
            // autocommit above enabled it when staging.)
            let mut db = s.database().write();
            if !db.is_captured("t") {
                db.enable_capture("t").unwrap();
            }
            db.insert_rows("t", vec![vec![Value::Int(1)]]).unwrap();
        }
        let out = s
            .execute("BEGIN; INSERT INTO t VALUES (2); COMMIT;")
            .unwrap();
        assert!(out.last().unwrap().is_committed(), "got {out:?}");
        assert_eq!(s.query_rows("SELECT * FROM t").unwrap().len(), 2);
    }

    #[test]
    fn dry_run_check_does_not_leak_capture() {
        let mut s = Session::new();
        s.execute("CREATE TABLE t (a INT PRIMARY KEY)").unwrap();
        s.execute("BEGIN; INSERT INTO t VALUES (1);").unwrap();
        s.check_pending().unwrap();
        // The dry run staged onto an uncaptured table; restoring must
        // disable the capture it enabled…
        assert!(!s.database().read().is_captured("t"));
        s.execute("ROLLBACK").unwrap();
        // …so the documented direct bulk-load path still hits the base
        // table instead of being diverted into ins_t.
        s.database()
            .write()
            .execute_sql("INSERT INTO t VALUES (9)")
            .unwrap();
        assert_eq!(s.database().read().table("t").unwrap().len(), 1);
    }

    #[test]
    fn read_only_commit_skips_the_commit_machinery() {
        let mut s = orders_session();
        s.execute(
            "BEGIN; INSERT INTO orders VALUES (1, 10.0);
             INSERT INTO lineitem VALUES (1, 1); COMMIT;",
        )
        .unwrap();
        let ts_before = s.database().read().current_ts();
        // A pure-reader transaction commits without publishing a timestamp.
        let out = s.execute("BEGIN; SELECT * FROM orders; COMMIT;").unwrap();
        assert!(matches!(
            out.last(),
            Some(StatementOutcome::Committed {
                inserted: 0,
                deleted: 0,
                ..
            })
        ));
        assert_eq!(s.database().read().current_ts(), ts_before);
        // So does a transaction whose statements planned to nothing.
        let out = s
            .execute("BEGIN; DELETE FROM orders WHERE o_orderkey = 99; COMMIT;")
            .unwrap();
        assert!(out.last().unwrap().is_committed());
        assert_eq!(s.database().read().current_ts(), ts_before);
    }

    #[test]
    fn session_count_tracks_connects_and_drops() {
        let server = Server::new();
        assert_eq!(server.session_count(), 0);
        let a = server.connect();
        let b = server.connect();
        assert_eq!(server.session_count(), 2);
        assert_ne!(a.id(), b.id());
        drop(a);
        assert_eq!(server.session_count(), 1);
        drop(b);
        assert_eq!(server.session_count(), 0);
    }

    #[test]
    fn assertions_installed_by_one_session_bind_all() {
        let server = Server::new();
        let mut a = server.connect();
        let mut b = server.connect();
        a.execute("CREATE TABLE t (v INT PRIMARY KEY)").unwrap();
        a.execute("CREATE ASSERTION positive CHECK (NOT EXISTS (SELECT * FROM t WHERE v < 0))")
            .unwrap();
        // The other session is bound by it immediately.
        assert!(b.execute("INSERT INTO t VALUES (-1)").unwrap()[0].is_rejected());
        assert!(b.execute("INSERT INTO t VALUES (1)").unwrap()[0].is_committed());
        assert_eq!(b.assertion_names(), vec!["positive".to_string()]);
    }

    #[test]
    fn metrics_track_commit_outcomes_and_phases() {
        let server = Server::new();
        let mut s = server.connect();
        s.execute("CREATE TABLE t (a INT PRIMARY KEY)").unwrap();
        s.execute("CREATE ASSERTION nonneg CHECK (NOT EXISTS (SELECT * FROM t WHERE a < 0))")
            .unwrap();
        assert!(s.execute("INSERT INTO t VALUES (1)").unwrap()[0].is_committed());
        assert!(s
            .execute("BEGIN; INSERT INTO t VALUES (2); COMMIT;")
            .unwrap()[2]
            .is_committed());
        assert!(s.execute("INSERT INTO t VALUES (-1)").unwrap()[0].is_rejected());
        // A no-op commit counts as a commit but not as a latency sample.
        assert!(s.execute("BEGIN; COMMIT;").unwrap()[1].is_committed());

        let m = server.metrics_snapshot();
        assert_eq!(m.counter("tintin_commit_attempts_total"), Some(4));
        assert_eq!(m.counter("tintin_commits_total"), Some(3));
        assert_eq!(m.counter("tintin_commit_rejects_total"), Some(1));
        assert_eq!(m.counter("tintin_commit_conflicts_total"), Some(0));
        assert_eq!(m.counter("tintin_commit_errors_total"), Some(0));
        assert_eq!(m.counter("tintin_violations_total"), Some(1));
        // Histograms: the overall one holds only real successful commits;
        // per-phase ones saw the rejected commit's phases too.
        let commit = m.histogram("tintin_commit_seconds").unwrap();
        assert_eq!(commit.count, 2);
        assert!(commit.quantile(0.5) <= commit.quantile(0.999));
        assert_eq!(m.histogram("tintin_commit_stage_seconds").unwrap().count, 3);
        assert_eq!(m.histogram("tintin_commit_check_seconds").unwrap().count, 3);
        assert_eq!(
            m.histogram("tintin_commit_publish_seconds").unwrap().count,
            2
        );
        // The check phase ran through prepared plans.
        let reused = m.counter("tintin_plans_reused_total").unwrap();
        let recompiled = m.counter("tintin_plans_recompiled_total").unwrap();
        assert!(reused + recompiled > 0, "checks must have used plans");
        // Engine sampling: the clock advanced and live versions exist.
        assert_eq!(m.gauge("tintin_mvcc_commit_ts"), Some(2));
        assert!(m.gauge("tintin_mvcc_live_versions").unwrap() >= 2);
        assert_eq!(m.gauge("tintin_sessions_open"), Some(1));
        assert_eq!(m.gauge("tintin_snapshots_live"), Some(0));
        drop(s);
        assert_eq!(
            server.metrics_snapshot().gauge("tintin_sessions_open"),
            Some(0)
        );
    }

    #[test]
    fn serialization_conflicts_are_counted() {
        let server = Server::new();
        let mut a = server.connect();
        let mut b = server.connect();
        a.execute("CREATE TABLE t (a INT PRIMARY KEY, b INT)")
            .unwrap();
        a.execute("INSERT INTO t VALUES (1, 10)").unwrap();
        // Two transactions race on the same row; the second committer loses.
        a.execute("BEGIN; UPDATE t SET b = 11 WHERE a = 1;")
            .unwrap();
        b.execute("BEGIN; UPDATE t SET b = 12 WHERE a = 1;")
            .unwrap();
        assert!(a.execute("COMMIT").unwrap()[0].is_committed());
        let err = b.execute("COMMIT").unwrap_err();
        assert!(matches!(
            err.error,
            SessionError::SerializationConflict { .. }
        ));
        let m = server.metrics_snapshot();
        assert_eq!(m.counter("tintin_commit_conflicts_total"), Some(1));
        // Conservation: attempts == commits + rejects + conflicts + errors.
        assert_eq!(
            m.counter("tintin_commit_attempts_total").unwrap(),
            m.counter("tintin_commits_total").unwrap()
                + m.counter("tintin_commit_rejects_total").unwrap()
                + m.counter("tintin_commit_conflicts_total").unwrap()
                + m.counter("tintin_commit_errors_total").unwrap()
        );
    }

    #[test]
    fn noop_registry_disables_all_session_metrics() {
        let server = Server::with_registry(Registry::noop());
        let mut s = server.connect();
        s.execute("CREATE TABLE t (a INT PRIMARY KEY)").unwrap();
        assert!(s.execute("INSERT INTO t VALUES (1)").unwrap()[0].is_committed());
        assert!(server.metrics_snapshot().samples.is_empty());
    }
}
