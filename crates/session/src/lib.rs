//! `tintin-session` — interactive, transactional sessions over the TINTIN
//! engine.
//!
//! The EDBT 2016 paper's usage model is *transaction-time* integrity
//! checking: an application opens a transaction, issues updates (which the
//! `INSTEAD OF` triggers divert into `ins_T` / `del_T` event tables), and at
//! `COMMIT` the `safeCommit` procedure either applies the whole update or
//! rejects it, reporting the violated assertion. The seed library exposed
//! `safeCommit` only as a one-shot call; this crate supplies the missing
//! connection abstraction:
//!
//! * **[`Session`]** owns a [`Database`] plus a [`Tintin`] checker and any
//!   number of installed assertion sets, and executes SQL scripts
//!   statement by statement;
//! * **explicit transactions** — `BEGIN; …; COMMIT` groups any number of
//!   DML statements into one unit. The engine's undo-log savepoint stack
//!   (`SAVEPOINT` / `ROLLBACK TO` / `RELEASE`) gives partial rollback, and
//!   `COMMIT` runs `safeCommit`: if any assertion would be violated the
//!   whole transaction is rolled back atomically (base tables *and* event
//!   tables restored) and the violating tuples are reported;
//! * **autocommit** — outside an explicit transaction every DML statement
//!   is its own transaction: it is captured, checked and applied (or
//!   rejected) immediately, matching the seed library's behaviour.
//!
//! Reads inside an open transaction see the *pre-transaction* state: that
//! is the paper's model, where proposed updates live in the event tables
//! until `safeCommit` promotes them. Schema changes (`CREATE` / `DROP` /
//! `TRUNCATE`) are not transactional and are rejected while a transaction
//! is open; `CREATE ASSERTION` outside a transaction installs the
//! assertion (incremental views and all) on the fly.
//!
//! # Example
//!
//! ```
//! use tintin_session::{Session, StatementOutcome};
//!
//! let mut session = Session::new();
//! session
//!     .execute(
//!         "CREATE TABLE orders (o_orderkey INT PRIMARY KEY);
//!          CREATE TABLE lineitem (
//!              l_orderkey INT REFERENCES orders, l_linenumber INT,
//!              PRIMARY KEY (l_orderkey, l_linenumber));
//!          CREATE ASSERTION atLeastOneLineItem CHECK (NOT EXISTS (
//!              SELECT * FROM orders o WHERE NOT EXISTS (
//!                  SELECT * FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)));",
//!     )
//!     .unwrap();
//!
//! // A transaction that ends consistent commits atomically…
//! let outcomes = session
//!     .execute("BEGIN; INSERT INTO orders VALUES (1); INSERT INTO lineitem VALUES (1, 1); COMMIT;")
//!     .unwrap();
//! assert!(matches!(outcomes.last(), Some(StatementOutcome::Committed { .. })));
//!
//! // …one that would violate the assertion is rejected and rolled back.
//! let outcomes = session.execute("BEGIN; INSERT INTO orders VALUES (2); COMMIT;").unwrap();
//! assert!(matches!(outcomes.last(), Some(StatementOutcome::Rejected { .. })));
//! assert_eq!(session.database().table("orders").unwrap().len(), 1);
//! ```

use std::fmt;
use tintin::{CheckStats, Installation, Tintin, TintinError, Violation};
use tintin_engine::{Database, EngineError, ResultSet, StatementResult};
use tintin_sql as sql;

/// Result of executing one statement through a [`Session`].
#[derive(Debug, Clone)]
pub enum StatementOutcome {
    /// DDL succeeded.
    Ddl,
    /// An assertion was parsed, rewritten and installed.
    AssertionInstalled { name: String, views: usize },
    /// An assertion (and its incremental views) was removed.
    AssertionDropped { name: String },
    /// DML affected this many rows (pending while a transaction is open).
    RowsAffected(usize),
    /// A query returned rows.
    Rows(ResultSet),
    /// `BEGIN` opened a transaction.
    TransactionStarted,
    /// `SAVEPOINT name` was established.
    SavepointCreated(String),
    /// `RELEASE name` discarded a savepoint.
    SavepointReleased(String),
    /// `ROLLBACK TO name` reversed the transaction suffix.
    RolledBackToSavepoint(String),
    /// `ROLLBACK` aborted the transaction.
    RolledBack,
    /// `COMMIT` passed every assertion; the update is applied.
    Committed {
        inserted: usize,
        deleted: usize,
        stats: CheckStats,
    },
    /// `COMMIT` (or an autocommitted statement) violated an assertion; the
    /// transaction was rolled back atomically.
    Rejected {
        violations: Vec<Violation>,
        stats: CheckStats,
    },
}

impl StatementOutcome {
    pub fn is_committed(&self) -> bool {
        matches!(self, StatementOutcome::Committed { .. })
    }

    pub fn is_rejected(&self) -> bool {
        matches!(self, StatementOutcome::Rejected { .. })
    }
}

/// Errors surfaced by [`Session::execute`].
#[derive(Debug, Clone)]
pub enum SessionError {
    /// SQL parsing failed.
    Parse(String),
    /// Engine-level failure (catalog, DML, evaluation).
    Engine(EngineError),
    /// Install / check pipeline failure.
    Tintin(TintinError),
    /// `COMMIT`, `ROLLBACK`, `SAVEPOINT`, … without an open transaction.
    NoActiveTransaction,
    /// `BEGIN` while a transaction is already open.
    TransactionAlreadyOpen,
    /// `ROLLBACK TO` / `RELEASE` an unknown savepoint.
    NoSuchSavepoint(String),
    /// Schema changes are not transactional.
    DdlInTransaction(String),
    /// `CREATE ASSERTION` with a name that is already installed.
    DuplicateAssertion(String),
    /// `DROP ASSERTION` of an unknown name.
    NoSuchAssertion(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Parse(m) => write!(f, "parse error: {m}"),
            SessionError::Engine(e) => write!(f, "{e}"),
            SessionError::Tintin(e) => write!(f, "{e}"),
            SessionError::NoActiveTransaction => {
                write!(f, "no transaction is open (use BEGIN)")
            }
            SessionError::TransactionAlreadyOpen => {
                write!(
                    f,
                    "a transaction is already open (COMMIT or ROLLBACK first)"
                )
            }
            SessionError::NoSuchSavepoint(n) => write!(f, "no such savepoint: '{n}'"),
            SessionError::DdlInTransaction(stmt) => write!(
                f,
                "{stmt} is not transactional; COMMIT or ROLLBACK the open transaction first"
            ),
            SessionError::DuplicateAssertion(n) => {
                write!(f, "assertion '{n}' is already installed")
            }
            SessionError::NoSuchAssertion(n) => write!(f, "no such assertion: '{n}'"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<EngineError> for SessionError {
    fn from(e: EngineError) -> Self {
        SessionError::Engine(e)
    }
}

impl From<TintinError> for SessionError {
    fn from(e: TintinError) -> Self {
        SessionError::Tintin(e)
    }
}

impl From<sql::ParseError> for SessionError {
    fn from(e: sql::ParseError) -> Self {
        SessionError::Parse(e.to_string())
    }
}

/// Result alias for session operations.
pub type Result<T> = std::result::Result<T, SessionError>;

/// Pending-event counts for one captured table (the REPL's `.tx` view).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingTable {
    pub table: String,
    pub inserts: usize,
    pub deletes: usize,
}

/// A connection-like handle: a database, a checker, and the installed
/// assertions, with transactional statement execution on top.
#[derive(Debug, Clone, Default)]
pub struct Session {
    db: Database,
    tintin: Tintin,
    installations: Vec<Installation>,
}

impl Session {
    /// A session over an empty database with the default checker.
    pub fn new() -> Self {
        Session::default()
    }

    /// A session over an existing database.
    pub fn with_database(db: Database) -> Self {
        Session {
            db,
            ..Session::default()
        }
    }

    /// A session with an explicit checker configuration.
    pub fn with_database_and_checker(db: Database, tintin: Tintin) -> Self {
        Session {
            db,
            tintin,
            installations: Vec::new(),
        }
    }

    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Direct mutable access to the database (bulk loading). Bypassing the
    /// session while a transaction is open voids the rollback guarantee.
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    pub fn checker(&self) -> &Tintin {
        &self.tintin
    }

    /// The installed assertion sets.
    pub fn installations(&self) -> &[Installation] {
        &self.installations
    }

    /// Names of all installed assertions, in installation order.
    pub fn assertion_names(&self) -> Vec<String> {
        self.installations
            .iter()
            .flat_map(|i| i.assertions.iter().map(|a| a.name.clone()))
            .collect()
    }

    /// Is an explicit transaction open?
    pub fn in_transaction(&self) -> bool {
        self.db.in_transaction()
    }

    /// Pending `(insertions, deletions)` over all captured tables.
    pub fn pending_counts(&self) -> (usize, usize) {
        self.db.pending_counts()
    }

    /// Per-table pending event counts (tables with no pending events are
    /// omitted).
    pub fn pending_by_table(&self) -> Vec<PendingTable> {
        let mut out = Vec::new();
        for t in self.db.captured_tables() {
            let ins = self
                .db
                .table(&tintin_engine::ins_table_name(&t))
                .map_or(0, |x| x.len());
            let del = self
                .db
                .table(&tintin_engine::del_table_name(&t))
                .map_or(0, |x| x.len());
            if ins + del > 0 {
                out.push(PendingTable {
                    table: t,
                    inserts: ins,
                    deletes: del,
                });
            }
        }
        out
    }

    /// Live savepoints of the open transaction, oldest first.
    pub fn savepoints(&self) -> Vec<String> {
        self.db.savepoint_names()
    }

    /// Install a batch of `CREATE ASSERTION` statements (event tables,
    /// capture, incremental views). Not allowed inside a transaction.
    pub fn install(&mut self, assertions: &[&str]) -> Result<&Installation> {
        if self.in_transaction() {
            return Err(SessionError::DdlInTransaction("CREATE ASSERTION".into()));
        }
        // Reject duplicates against already-installed assertions up front so
        // a failed install leaves the session untouched.
        let installed = self.assertion_names();
        for text in assertions {
            if let Ok(sql::Statement::CreateAssertion(a)) = sql::parse_statement(text) {
                if installed.contains(&a.name) {
                    return Err(SessionError::DuplicateAssertion(a.name));
                }
            }
        }
        let inst = self.tintin.install(&mut self.db, assertions)?;
        self.installations.push(inst);
        Ok(self.installations.last().expect("just pushed"))
    }

    /// Remove one assertion and its incremental views.
    pub fn drop_assertion(&mut self, name: &str) -> Result<()> {
        if self.in_transaction() {
            return Err(SessionError::DdlInTransaction("DROP ASSERTION".into()));
        }
        for (ii, inst) in self.installations.iter().enumerate() {
            let Some(ai) = inst.assertions.iter().position(|a| a.name == name) else {
                continue;
            };
            let mut inst = self.installations.remove(ii);
            for view in &inst.assertions[ai].view_names {
                self.db.drop_view(view, true)?;
            }
            inst.assertions.remove(ai);
            inst.fallbacks.retain(|f| f.assertion != name);
            inst.denial_texts
                .retain(|d| !d.starts_with(&format!("{name}:")));
            inst.retain_views(|v| v.assertion != name);
            if !inst.assertions.is_empty() {
                self.installations.insert(ii, inst);
            }
            return Ok(());
        }
        Err(SessionError::NoSuchAssertion(name.to_string()))
    }

    /// Execute a script of semicolon-separated statements, stopping at the
    /// first error. DML inside an open transaction accumulates as pending
    /// events; outside one it autocommits (capture → check → apply/reject).
    pub fn execute(&mut self, script: &str) -> Result<Vec<StatementOutcome>> {
        let stmts = sql::parse_statements(script)?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in &stmts {
            out.push(self.execute_statement(stmt)?);
        }
        Ok(out)
    }

    /// Execute a single parsed statement.
    pub fn execute_statement(&mut self, stmt: &sql::Statement) -> Result<StatementOutcome> {
        match stmt {
            sql::Statement::Begin => self.begin(),
            sql::Statement::Commit => self.commit(),
            sql::Statement::Rollback { to: None } => self.rollback(),
            sql::Statement::Rollback { to: Some(name) } => self.rollback_to(name),
            sql::Statement::Savepoint { name } => self.savepoint(name),
            sql::Statement::Release { name } => self.release(name),
            sql::Statement::CreateAssertion(a) => {
                let text = stmt.to_string();
                self.install(&[text.as_str()])?;
                let views = self.installations.last().map_or(0, |i| i.view_count());
                Ok(StatementOutcome::AssertionInstalled {
                    name: a.name.clone(),
                    views,
                })
            }
            sql::Statement::DropAssertion { name } => {
                self.drop_assertion(name)?;
                Ok(StatementOutcome::AssertionDropped { name: name.clone() })
            }
            ddl if ddl.is_ddl() => {
                if self.in_transaction() {
                    let kind = ddl.to_string();
                    let kind = kind
                        .split_whitespace()
                        .take(2)
                        .collect::<Vec<_>>()
                        .join(" ");
                    return Err(SessionError::DdlInTransaction(kind));
                }
                self.db.execute(ddl)?;
                Ok(StatementOutcome::Ddl)
            }
            sql::Statement::Query(q) => Ok(StatementOutcome::Rows(self.db.query(q)?)),
            dml => {
                // INSERT / DELETE / UPDATE.
                if self.in_transaction() {
                    self.ensure_captured_for_dml(dml)?;
                    match self.db.execute(dml)? {
                        StatementResult::RowsAffected(n) => Ok(StatementOutcome::RowsAffected(n)),
                        other => unreachable!("DML produced {other:?}"),
                    }
                } else {
                    self.autocommit(dml)
                }
            }
        }
    }

    /// `BEGIN`: open a transaction and make sure every base table is
    /// captured, so all DML is diverted into event tables and the commit
    /// decision stays atomic.
    pub fn begin(&mut self) -> Result<StatementOutcome> {
        if self.in_transaction() {
            return Err(SessionError::TransactionAlreadyOpen);
        }
        self.capture_all_tables()?;
        self.db.begin_transaction()?;
        Ok(StatementOutcome::TransactionStarted)
    }

    /// `COMMIT`: run `safeCommit` over every installed assertion set. On
    /// success the pending update is applied and the transaction closed; on
    /// violation the transaction is rolled back atomically and the
    /// violating tuples reported.
    pub fn commit(&mut self) -> Result<StatementOutcome> {
        if !self.in_transaction() {
            return Err(SessionError::NoActiveTransaction);
        }
        let outcome = self.commit_pending();
        // Success or rejection, the transaction is over; the undo log is
        // only replayed if the check machinery itself failed.
        match &outcome {
            Ok(_) => {
                let _ = self.db.commit_transaction();
            }
            Err(_) => {
                let _ = self.db.rollback_transaction();
            }
        }
        outcome
    }

    /// `ROLLBACK`: abort the open transaction, restoring base tables and
    /// event tables to their pre-`BEGIN` state.
    pub fn rollback(&mut self) -> Result<StatementOutcome> {
        if !self.in_transaction() {
            return Err(SessionError::NoActiveTransaction);
        }
        self.db.rollback_transaction()?;
        Ok(StatementOutcome::RolledBack)
    }

    /// `SAVEPOINT name`.
    pub fn savepoint(&mut self, name: &str) -> Result<StatementOutcome> {
        self.db.create_savepoint(name).map_err(Self::map_tx_err)?;
        Ok(StatementOutcome::SavepointCreated(name.to_string()))
    }

    /// `ROLLBACK TO name`.
    pub fn rollback_to(&mut self, name: &str) -> Result<StatementOutcome> {
        self.db
            .rollback_to_savepoint(name)
            .map_err(|e| Self::map_savepoint_err(e, name))?;
        Ok(StatementOutcome::RolledBackToSavepoint(name.to_string()))
    }

    /// `RELEASE name`.
    pub fn release(&mut self, name: &str) -> Result<StatementOutcome> {
        self.db
            .release_savepoint(name)
            .map_err(|e| Self::map_savepoint_err(e, name))?;
        Ok(StatementOutcome::SavepointReleased(name.to_string()))
    }

    /// Dry-run check of the pending events (no commit, no truncation).
    pub fn check_pending(&mut self) -> Result<(Vec<Violation>, CheckStats)> {
        let mut all = Vec::new();
        let mut stats = CheckStats::default();
        let installations = std::mem::take(&mut self.installations);
        let result = (|| {
            for inst in &installations {
                let (violations, s) = self.tintin.check_pending(&mut self.db, inst)?;
                all.extend(violations);
                merge_stats(&mut stats, s);
            }
            Ok(())
        })();
        self.installations = installations;
        result.map(|()| (all, stats))
    }

    // ------------------------------------------------------------ internal

    fn map_tx_err(e: EngineError) -> SessionError {
        match e {
            EngineError::Transaction(_) => SessionError::NoActiveTransaction,
            other => SessionError::Engine(other),
        }
    }

    fn map_savepoint_err(e: EngineError, name: &str) -> SessionError {
        match e {
            EngineError::NoSuchSavepoint(_) => SessionError::NoSuchSavepoint(name.to_string()),
            EngineError::Transaction(_) => SessionError::NoActiveTransaction,
            other => SessionError::Engine(other),
        }
    }

    /// Enable capture for every base table that lacks it.
    fn capture_all_tables(&mut self) -> Result<()> {
        for t in self.db.table_names() {
            if self.db.is_captured(&t) || self.db.is_event_table(&t) {
                continue;
            }
            self.db.enable_capture(&t)?;
        }
        Ok(())
    }

    /// While a transaction is open, DML may target a table created after
    /// the last `BEGIN`; capture it now so the statement stays rollbackable
    /// and commit-checked. (Uncaptured writes are also undo-logged, but
    /// capture keeps the commit decision uniform.)
    fn ensure_captured_for_dml(&mut self, stmt: &sql::Statement) -> Result<()> {
        let table = match stmt {
            sql::Statement::Insert(i) => &i.table,
            sql::Statement::Delete(d) => &d.table,
            sql::Statement::Update(u) => &u.table,
            _ => return Ok(()),
        };
        if self.db.table(table).is_some()
            && !self.db.is_captured(table)
            && !self.db.is_event_table(table)
        {
            self.db.enable_capture(table)?;
        }
        Ok(())
    }

    /// Statement-as-transaction: capture the statement's effects, check
    /// them and either apply or reject, exactly like an explicit
    /// single-statement transaction. On any error the captured events are
    /// discarded — the statement's proposed update dies with it — so a
    /// failed statement can never poison later ones.
    fn autocommit(&mut self, dml: &sql::Statement) -> Result<StatementOutcome> {
        self.capture_all_tables()?;
        let result = (|| {
            match self.db.execute(dml)? {
                StatementResult::RowsAffected(_) => {}
                other => unreachable!("DML produced {other:?}"),
            }
            self.commit_pending()
        })();
        if result.is_err() {
            self.db.truncate_events();
        }
        result
    }

    /// The multi-installation `safeCommit`: check every installed assertion
    /// set against the pending events, then apply-and-truncate or
    /// discard-and-report.
    fn commit_pending(&mut self) -> Result<StatementOutcome> {
        let (violations, stats) = self.check_pending()?;
        if violations.is_empty() {
            let (inserted, deleted) = self.db.pending_counts();
            self.db.apply_pending()?;
            self.db.truncate_events();
            Ok(StatementOutcome::Committed {
                inserted,
                deleted,
                stats,
            })
        } else {
            self.db.truncate_events();
            Ok(StatementOutcome::Rejected { violations, stats })
        }
    }
}

/// Accumulate check statistics across installations.
fn merge_stats(acc: &mut CheckStats, s: CheckStats) {
    acc.normalization.dup_ins += s.normalization.dup_ins;
    acc.normalization.dup_del += s.normalization.dup_del;
    acc.normalization.missing_del += s.normalization.missing_del;
    acc.normalization.cancelled += s.normalization.cancelled;
    acc.normalization.noop_ins += s.normalization.noop_ins;
    acc.views_total += s.views_total;
    acc.views_skipped += s.views_skipped;
    acc.views_evaluated += s.views_evaluated;
    acc.fallbacks_skipped += s.fallbacks_skipped;
    acc.fallbacks_evaluated += s.fallbacks_evaluated;
    acc.check_time += s.check_time;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orders_session() -> Session {
        let mut s = Session::new();
        s.execute(
            "CREATE TABLE orders (o_orderkey INT PRIMARY KEY, o_totalprice REAL);
             CREATE TABLE lineitem (
                 l_orderkey INT NOT NULL REFERENCES orders,
                 l_linenumber INT NOT NULL,
                 PRIMARY KEY (l_orderkey, l_linenumber));",
        )
        .unwrap();
        s.install(&["CREATE ASSERTION atLeastOneLineItem CHECK (NOT EXISTS (
            SELECT * FROM orders o WHERE NOT EXISTS (
                SELECT * FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)))"])
            .unwrap();
        s
    }

    #[test]
    fn autocommit_rejects_violating_statement() {
        let mut s = orders_session();
        let out = s.execute("INSERT INTO orders VALUES (1, 10.0)").unwrap();
        assert!(out[0].is_rejected());
        assert_eq!(s.database().table("orders").unwrap().len(), 0);
        assert_eq!(s.pending_counts(), (0, 0));
    }

    #[test]
    fn transaction_commits_consistent_batch() {
        let mut s = orders_session();
        let out = s
            .execute(
                "BEGIN;
                 INSERT INTO orders VALUES (1, 10.0);
                 INSERT INTO lineitem VALUES (1, 1);
                 COMMIT;",
            )
            .unwrap();
        assert!(matches!(out[0], StatementOutcome::TransactionStarted));
        assert!(out[3].is_committed());
        assert_eq!(s.database().table("orders").unwrap().len(), 1);
        assert!(!s.in_transaction());
    }

    #[test]
    fn rejected_commit_rolls_back_atomically() {
        let mut s = orders_session();
        s.execute(
            "BEGIN; INSERT INTO orders VALUES (1, 10.0);
             INSERT INTO lineitem VALUES (1, 1); COMMIT;",
        )
        .unwrap();
        let out = s
            .execute("BEGIN; INSERT INTO orders VALUES (2, 20.0); COMMIT;")
            .unwrap();
        let StatementOutcome::Rejected { violations, .. } = &out[2] else {
            panic!("expected rejection, got {:?}", out[2]);
        };
        assert_eq!(violations[0].assertion, "atleastonelineitem");
        assert_eq!(s.database().table("orders").unwrap().len(), 1);
        assert_eq!(s.pending_counts(), (0, 0));
        assert!(!s.in_transaction());
    }

    #[test]
    fn rollback_discards_pending_work() {
        let mut s = orders_session();
        s.execute("BEGIN; INSERT INTO orders VALUES (1, 10.0); ROLLBACK;")
            .unwrap();
        assert_eq!(s.database().table("orders").unwrap().len(), 0);
        assert_eq!(s.pending_counts(), (0, 0));
    }

    #[test]
    fn savepoints_partial_rollback() {
        let mut s = orders_session();
        let out = s
            .execute(
                "BEGIN;
                 INSERT INTO orders VALUES (1, 10.0);
                 INSERT INTO lineitem VALUES (1, 1);
                 SAVEPOINT consistent;
                 INSERT INTO orders VALUES (2, 20.0);
                 ROLLBACK TO consistent;
                 COMMIT;",
            )
            .unwrap();
        assert!(out.last().unwrap().is_committed());
        assert_eq!(s.database().table("orders").unwrap().len(), 1);
    }

    #[test]
    fn ddl_rejected_inside_transaction() {
        let mut s = orders_session();
        s.execute("BEGIN").unwrap();
        let err = s.execute("CREATE TABLE x (a INT)").unwrap_err();
        assert!(matches!(err, SessionError::DdlInTransaction(_)));
        s.execute("ROLLBACK").unwrap();
        s.execute("CREATE TABLE x (a INT)").unwrap();
    }

    #[test]
    fn create_assertion_statement_installs() {
        let mut s = Session::new();
        s.execute("CREATE TABLE t (a INT PRIMARY KEY)").unwrap();
        let out = s
            .execute("CREATE ASSERTION positive CHECK (NOT EXISTS (SELECT * FROM t WHERE a < 0))")
            .unwrap();
        assert!(matches!(
            out[0],
            StatementOutcome::AssertionInstalled { .. }
        ));
        assert_eq!(s.assertion_names(), vec!["positive".to_string()]);
        assert!(s.execute("INSERT INTO t VALUES (-1)").unwrap()[0].is_rejected());
        assert!(s.execute("INSERT INTO t VALUES (1)").unwrap()[0].is_committed());

        // Dropping it lifts the constraint.
        s.execute("DROP ASSERTION positive").unwrap();
        assert!(s.assertion_names().is_empty());
        assert!(s.execute("INSERT INTO t VALUES (-1)").unwrap()[0].is_committed());
    }

    #[test]
    fn duplicate_assertion_rejected() {
        let mut s = Session::new();
        s.execute("CREATE TABLE t (a INT PRIMARY KEY)").unwrap();
        s.execute("CREATE ASSERTION a1 CHECK (NOT EXISTS (SELECT * FROM t WHERE a < 0))")
            .unwrap();
        let err = s
            .execute("CREATE ASSERTION a1 CHECK (NOT EXISTS (SELECT * FROM t WHERE a > 9))")
            .unwrap_err();
        assert!(matches!(err, SessionError::DuplicateAssertion(_)));
    }

    #[test]
    fn transaction_state_errors_are_precise() {
        let mut s = orders_session();
        assert!(matches!(
            s.execute("COMMIT").unwrap_err(),
            SessionError::NoActiveTransaction
        ));
        s.execute("BEGIN").unwrap();
        assert!(matches!(
            s.execute("BEGIN").unwrap_err(),
            SessionError::TransactionAlreadyOpen
        ));
        assert!(matches!(
            s.execute("ROLLBACK TO nope").unwrap_err(),
            SessionError::NoSuchSavepoint(_)
        ));
        s.execute("ROLLBACK").unwrap();
    }

    #[test]
    fn queries_inside_tx_see_pre_transaction_state() {
        let mut s = orders_session();
        s.execute("BEGIN; INSERT INTO orders VALUES (1, 10.0);")
            .unwrap();
        let out = s.execute("SELECT * FROM orders").unwrap();
        let StatementOutcome::Rows(rs) = &out[0] else {
            panic!()
        };
        assert!(rs.is_empty(), "pending events must not be visible");
        let pending = s.pending_by_table();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].table, "orders");
        assert_eq!(pending[0].inserts, 1);
        s.execute("ROLLBACK").unwrap();
    }

    #[test]
    fn sessions_without_assertions_still_get_transactions() {
        let mut s = Session::new();
        s.execute("CREATE TABLE t (a INT PRIMARY KEY)").unwrap();
        s.execute("BEGIN; INSERT INTO t VALUES (1); INSERT INTO t VALUES (2); COMMIT;")
            .unwrap();
        assert_eq!(s.database().table("t").unwrap().len(), 2);
        s.execute("BEGIN; DELETE FROM t WHERE a = 1; ROLLBACK;")
            .unwrap();
        assert_eq!(s.database().table("t").unwrap().len(), 2);
    }

    #[test]
    fn failed_autocommit_apply_does_not_poison_session() {
        let mut s = Session::new();
        s.execute("CREATE TABLE t (a INT PRIMARY KEY, b INT)")
            .unwrap();
        assert!(s.execute("INSERT INTO t VALUES (1, 10)").unwrap()[0].is_committed());
        // Same PK, different payload: survives normalization (the rows are
        // not identical) but conflicts at apply time.
        assert!(s.execute("INSERT INTO t VALUES (1, 99)").is_err());
        // The failed statement's events must be discarded with it…
        assert_eq!(s.pending_counts(), (0, 0));
        // …so the session keeps working.
        assert!(s.execute("INSERT INTO t VALUES (2, 20)").unwrap()[0].is_committed());
        assert_eq!(s.database().table("t").unwrap().len(), 2);
    }
}
