//! Durability for a [`Server`]: write-ahead logging on the commit path,
//! open-or-recover semantics, and checkpoint/rotation.
//!
//! The protocol (see `docs/ARCHITECTURE.md` § Durability):
//!
//! * **log before publish** — phase 3 of the phased commit appends a
//!   [`WalRecord::Commit`] holding the commit timestamp and the
//!   *normalized* staged effects (the exact `ins_T`/`del_T` rows the
//!   incremental check validated) while still under the commit lock, so
//!   log order equals publish order equals timestamp order;
//! * **group fsync before ack** — the `fdatasync` runs *after* the commit
//!   lock is released and *before* `COMMIT` returns: concurrent
//!   committers coalesce on one leader fsync ([`Wal::sync`]), so the
//!   per-commit fsync cost amortizes across however many commits landed in
//!   the log since the last sync;
//! * **recovery** ([`Server::open`]) — load the checkpoint if present
//!   (replayable DDL log + assertion sources + base rows + commit clock),
//!   then replay the log tail whose LSNs continue it, each commit through
//!   the same stage → normalize → apply → publish pipeline, and verify the
//!   result with [`Tintin::full_recheck`] — recovery restores a state that
//!   is not merely readable but provably assertion-clean;
//! * **checkpoints** ([`Server::checkpoint`]) — a quiescent snapshot
//!   (taken under the commit lock, so no commit is mid-flight) written
//!   atomically, after which the log is truncated; LSNs keep counting
//!   across the rotation so recovery can verify checkpoint↔tail
//!   continuity.
//!
//! Catalog changes (DDL, assertion installs/drops) are logged too, and
//! synced eagerly — they are rare and non-transactional. Rejected,
//! conflicted and hook-aborted commits never reach the log: recovery can
//! replay only acknowledged history.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};
use std::time::{Duration, Instant};

use tintin::{Installation, Tintin};
use tintin_engine::{Database, Row, SharedDatabase, TxOverlay};
use tintin_obs::{log_info, Counter, Registry};
use tintin_wal::{
    read_checkpoint, write_checkpoint, Checkpoint, Lsn, TableEffects, Wal, WalError, WalRecord,
};

use crate::{Result, Server, ServerObs, ServerState, SessionError};

impl From<WalError> for SessionError {
    fn from(e: WalError) -> Self {
        SessionError::Durability(e.to_string())
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn corrupt(msg: String) -> SessionError {
    SessionError::Durability(msg)
}

/// An injected durability bug, settable through
/// [`Server::set_durability_fault`]. These are the known-bad mutants the
/// simulation harness proves its crash oracle against; a production server
/// never sets one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DurabilityFault {
    /// Correct behavior.
    #[default]
    None,
    /// `fdatasync` silently skipped: commits are acknowledged while their
    /// log records sit in the OS page cache, so a crash loses acked
    /// history.
    SkipFsync,
    /// The commit is acknowledged without writing its log record at all.
    AckBeforeLog,
    /// Checkpointing rotates the log *before* the checkpoint is durable
    /// and writes the checkpoint in place (no temp + rename), leaving a
    /// torn checkpoint with no log to fall back on.
    TornCheckpoint,
}

impl DurabilityFault {
    /// Parse a CLI fault name (the sim's `--mutant` names).
    pub fn parse(name: &str) -> Option<DurabilityFault> {
        match name {
            "none" => Some(DurabilityFault::None),
            "skip-fsync" => Some(DurabilityFault::SkipFsync),
            "ack-before-log" => Some(DurabilityFault::AckBeforeLog),
            "torn-checkpoint" => Some(DurabilityFault::TornCheckpoint),
            _ => None,
        }
    }
}

/// Configuration for [`Server::open_with`].
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// Run `fdatasync` before acknowledging commits (default). With this
    /// off, commits are acknowledged once their records reach the OS —
    /// faster, but a crash may lose the unsynced tail (the fsync-off bench
    /// configuration).
    pub fsync: bool,
    /// Rotate the log through a checkpoint once it exceeds this many
    /// bytes, checked after each acknowledged commit. `None` (default)
    /// leaves checkpointing to explicit [`Server::checkpoint`] calls.
    pub checkpoint_bytes: Option<u64>,
    /// Metrics registry to record into (WAL counters, recovery time).
    /// `None` creates a fresh enabled registry.
    pub registry: Option<Registry>,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            fsync: true,
            checkpoint_bytes: None,
            registry: None,
        }
    }
}

/// What [`Server::open`] recovered, for the INFO summary line and
/// [`Server::recovery_summary`].
#[derive(Debug, Clone, Default)]
pub struct RecoverySummary {
    /// Was a checkpoint loaded?
    pub checkpoint_loaded: bool,
    /// Highest LSN recovered (checkpoint boundary included; 0 = fresh).
    pub recovered_lsn: Lsn,
    /// Commit records replayed from the log tail.
    pub commits_replayed: usize,
    /// Catalog records (DDL, installs, drops) replayed from the log tail.
    pub catalog_replayed: usize,
    /// Torn/corrupt tail bytes truncated off the log.
    pub tail_bytes_truncated: u64,
    /// Duplicated log frames skipped.
    pub duplicates_skipped: usize,
    /// Wall-clock recovery time.
    pub elapsed: Duration,
}

/// A point-in-time view of the log's watermarks (the crash simulator
/// captures this at its injected crash instant to decide which tail bytes
/// the "crash" may lose).
#[derive(Debug, Clone)]
pub struct WalStatus {
    /// LSN of the last appended record.
    pub appended_lsn: Lsn,
    /// LSN up to which the log is durable.
    pub durable_lsn: Lsn,
    /// Bytes appended (logical end of log).
    pub appended_size: u64,
    /// Bytes known durable; a crash may lose anything past this.
    pub durable_size: u64,
    /// Path of the log file.
    pub wal_path: PathBuf,
    /// Path of the checkpoint file.
    pub checkpoint_path: PathBuf,
}

/// What [`Server::checkpoint`] wrote.
#[derive(Debug, Clone)]
pub struct CheckpointStats {
    /// LSN of the last log record folded into the checkpoint.
    pub last_lsn: Lsn,
    /// The commit clock at the snapshot.
    pub commit_ts: u64,
    /// Base tables snapshotted.
    pub tables: usize,
    /// Rows snapshotted.
    pub rows: usize,
}

/// The durable side of a [`Server`]: the log, the checkpoint paths, and
/// the replayable DDL history since database creation.
pub(crate) struct Durability {
    wal: Wal,
    checkpoint_path: PathBuf,
    /// Catalog DDL in execution order — the checkpoint's catalog image.
    ddl_log: Mutex<Vec<String>>,
    fault: Mutex<DurabilityFault>,
    checkpoint_bytes: Option<u64>,
    summary: RecoverySummary,
    checkpoints: Arc<Counter>,
}

impl std::fmt::Debug for Durability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Durability")
            .field("wal", &self.wal.path())
            .field("checkpoint", &self.checkpoint_path)
            .field("fault", &self.fault())
            .finish()
    }
}

impl Durability {
    pub(crate) fn fault(&self) -> DurabilityFault {
        *lock(&self.fault)
    }

    pub(crate) fn set_fault(&self, fault: DurabilityFault) {
        *lock(&self.fault) = fault;
    }

    /// Append the commit record for `ts` (called under the commit lock,
    /// immediately before publication). Returns the LSN to sync to before
    /// acknowledging.
    pub(crate) fn append_commit(
        &self,
        ts: u64,
        effects: Vec<(String, Vec<Row>, Vec<Row>)>,
    ) -> Result<Lsn> {
        let effects = effects
            .into_iter()
            .map(|(table, ins, del)| TableEffects { table, ins, del })
            .collect();
        Ok(self.wal.append(&WalRecord::Commit { ts, effects })?)
    }

    /// Group-commit sync: block until `lsn` is durable. Runs after the
    /// commit lock is released so concurrent committers share one fsync.
    pub(crate) fn sync_to(&self, lsn: Lsn) -> Result<()> {
        if self.fault() == DurabilityFault::SkipFsync {
            return Ok(());
        }
        Ok(self.wal.sync(lsn)?)
    }

    /// Has the log outgrown the size-triggered checkpoint threshold?
    pub(crate) fn should_checkpoint(&self) -> bool {
        self.checkpoint_bytes
            .is_some_and(|limit| self.wal.appended_size() >= limit)
    }

    /// Log a catalog DDL statement (synced eagerly — DDL is rare).
    pub(crate) fn log_ddl(&self, sql: &str) -> Result<()> {
        let lsn = self.wal.append(&WalRecord::Ddl {
            sql: sql.to_string(),
        })?;
        lock(&self.ddl_log).push(sql.to_string());
        self.sync_to(lsn)
    }

    /// Log an assertion install batch.
    pub(crate) fn log_install(&self, sqls: &[&str]) -> Result<()> {
        let lsn = self.wal.append(&WalRecord::Install {
            sqls: sqls.iter().map(|s| s.to_string()).collect(),
        })?;
        self.sync_to(lsn)
    }

    /// Log an assertion drop.
    pub(crate) fn log_drop_assertion(&self, name: &str) -> Result<()> {
        let lsn = self.wal.append(&WalRecord::DropAssertion {
            name: name.to_string(),
        })?;
        self.sync_to(lsn)
    }
}

/// Drop one assertion (and its incremental views) from `installations`,
/// operating directly on the engine — shared by [`Session::drop_assertion`]
/// and recovery's `DropAssertion` replay.
///
/// [`Session::drop_assertion`]: crate::Session::drop_assertion
pub(crate) fn drop_assertion_in(
    db: &mut Database,
    installations: &mut Vec<Installation>,
    name: &str,
) -> Result<()> {
    let found = installations.iter().enumerate().find_map(|(ii, inst)| {
        inst.assertions
            .iter()
            .position(|a| a.name == name)
            .map(|ai| (ii, ai))
    });
    let Some((ii, ai)) = found else {
        return Err(SessionError::NoSuchAssertion(name.to_string()));
    };
    let mut inst = installations.remove(ii);
    for view in &inst.assertions[ai].view_names {
        db.drop_view(view, true)?;
    }
    inst.assertions.remove(ai);
    inst.fallbacks.retain(|f| f.assertion != name);
    inst.denial_texts
        .retain(|d| !d.starts_with(&format!("{name}:")));
    inst.retain_views(|v| v.assertion != name);
    if !inst.assertions.is_empty() {
        installations.insert(ii, inst);
    }
    Ok(())
}

/// Replay one logged commit through the same stage → normalize → apply →
/// publish pipeline the original commit used. The effects were captured
/// post-normalization, so normalization here is a near-no-op; replaying
/// effects (not SQL) makes phantoms impossible.
fn replay_commit(db: &mut Database, ts: u64, effects: &[TableEffects]) -> Result<()> {
    let mut overlay = TxOverlay::new();
    for e in effects {
        let d = overlay.delta_mut(&e.table);
        d.ins.extend(e.ins.iter().cloned());
        d.del.extend(e.del.iter().cloned());
    }
    if overlay.is_empty() {
        db.publish_commit(ts);
        return Ok(());
    }
    (|| -> Result<()> {
        db.stage_overlay_at(&overlay, ts)?;
        let (_, touched) = db.normalize_events_touched()?;
        db.apply_pending_versioned_for(&touched, ts)?;
        db.truncate_events_for(&touched);
        db.publish_commit(ts);
        Ok(())
    })()
    .map_err(|e| corrupt(format!("commit replay at ts {ts} failed: {e}")))
}

impl Server {
    /// Open (or create) a durable server over the data directory `dir`
    /// with default options: fsync on, explicit checkpoints only. See
    /// [`Server::open_with`].
    pub fn open(dir: impl AsRef<Path>) -> Result<Server> {
        Server::open_with(dir, &DurabilityOptions::default())
    }

    /// Open-or-recover: if `dir` holds a checkpoint and/or write-ahead
    /// log, rebuild the database from them — load the checkpoint (DDL,
    /// rows, assertions, commit clock), replay the log tail to the last
    /// complete record (truncating a torn tail), and verify the recovered
    /// state with [`Tintin::full_recheck`]. A fresh directory yields an
    /// empty durable server. The recovery summary is logged at INFO and
    /// kept ([`Server::recovery_summary`]).
    pub fn open_with(dir: impl AsRef<Path>, opts: &DurabilityOptions) -> Result<Server> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(WalError::from)?;
        // Not `unwrap_or_default()`: `Registry::default()` is the *disabled*
        // no-op registry, while a `None` here must mean "record metrics into
        // a fresh enabled registry" (see `DurabilityOptions::registry`).
        let registry = match opts.registry.clone() {
            Some(r) => r,
            None => Registry::new(),
        };
        let started = Instant::now();
        let checkpoint_path = dir.join("checkpoint");
        let ck = read_checkpoint(&checkpoint_path)?;
        let (wal, walrec) = Wal::open(&dir.join("wal"), &registry)?;
        wal.set_fsync(opts.fsync);

        let mut db = Database::new();
        let tintin = Tintin::new();
        let mut installations: Vec<Installation> = Vec::new();
        let mut ddl_log: Vec<String> = Vec::new();
        let mut commits_replayed = 0usize;
        let mut catalog_replayed = 0usize;
        let mut next_lsn: Lsn = 1;

        if let Some(ck) = &ck {
            // Catalog first (full DDL history), then rows, then assertions
            // — installs may build incremental views over the loaded data.
            for sql in &ck.ddl {
                db.execute_sql(sql)
                    .map_err(|e| corrupt(format!("checkpoint DDL replay failed ({sql}): {e}")))?;
            }
            ddl_log.clone_from(&ck.ddl);
            for (name, rows) in &ck.tables {
                db.insert_direct(name, rows.iter().map(|r| r.to_vec()).collect())
                    .map_err(|e| corrupt(format!("checkpoint rows for '{name}' failed: {e}")))?;
            }
            for batch in &ck.installs {
                let refs: Vec<&str> = batch.iter().map(String::as_str).collect();
                installations.push(
                    tintin.install(&mut db, &refs).map_err(|e| {
                        corrupt(format!("checkpoint assertion reinstall failed: {e}"))
                    })?,
                );
            }
            db.set_commit_clock(ck.commit_ts);
            next_lsn = ck.last_lsn + 1;
        }

        for (lsn, rec) in &walrec.records {
            if *lsn < next_lsn {
                // Already folded into the checkpoint (a crash between
                // checkpoint rename and log rotation leaves these behind).
                continue;
            }
            if *lsn > next_lsn {
                return Err(corrupt(format!(
                    "log does not continue the checkpoint: expected LSN {next_lsn}, log \
                     resumes at {lsn} (torn checkpoint or premature log rotation)"
                )));
            }
            next_lsn += 1;
            match rec {
                WalRecord::Ddl { sql } => {
                    db.execute_sql(sql)
                        .map_err(|e| corrupt(format!("DDL replay failed ({sql}): {e}")))?;
                    ddl_log.push(sql.clone());
                    catalog_replayed += 1;
                }
                WalRecord::Install { sqls } => {
                    let refs: Vec<&str> = sqls.iter().map(String::as_str).collect();
                    installations.push(
                        tintin
                            .install(&mut db, &refs)
                            .map_err(|e| corrupt(format!("assertion reinstall failed: {e}")))?,
                    );
                    catalog_replayed += 1;
                }
                WalRecord::DropAssertion { name } => {
                    drop_assertion_in(&mut db, &mut installations, name)?;
                    catalog_replayed += 1;
                }
                WalRecord::Commit { ts, effects } => {
                    replay_commit(&mut db, *ts, effects)?;
                    commits_replayed += 1;
                }
            }
        }

        // The recovered state must be provably assertion-clean: the
        // paper's trusted non-incremental comparator is the recovery
        // verifier.
        for inst in &installations {
            let out = tintin
                .full_recheck(&mut db, inst)
                .map_err(|e| corrupt(format!("post-recovery full recheck failed: {e}")))?;
            if !out.committed {
                let names: Vec<String> =
                    out.violations.iter().map(|v| v.assertion.clone()).collect();
                return Err(corrupt(format!(
                    "recovered state violates installed assertions: {}",
                    names.join(", ")
                )));
            }
        }

        let elapsed = started.elapsed();
        registry
            .histogram("tintin_recovery_seconds")
            .record(elapsed);
        let summary = RecoverySummary {
            checkpoint_loaded: ck.is_some(),
            recovered_lsn: walrec.last_lsn.max(ck.as_ref().map_or(0, |c| c.last_lsn)),
            commits_replayed,
            catalog_replayed,
            tail_bytes_truncated: walrec.truncated_bytes,
            duplicates_skipped: walrec.duplicates_skipped,
            elapsed,
        };
        log_info!(
            "tintin_session",
            "recovery: dir={} checkpoint_loaded={} recovered_lsn={} commits_replayed={} \
             catalog_replayed={} tail_bytes_truncated={} duplicates_skipped={} elapsed={:?}",
            dir.display(),
            summary.checkpoint_loaded,
            summary.recovered_lsn,
            summary.commits_replayed,
            summary.catalog_replayed,
            summary.tail_bytes_truncated,
            summary.duplicates_skipped,
            summary.elapsed,
        );

        let dura = Durability {
            wal,
            checkpoint_path,
            ddl_log: Mutex::new(ddl_log),
            fault: Mutex::new(DurabilityFault::None),
            checkpoint_bytes: opts.checkpoint_bytes,
            summary,
            checkpoints: registry.counter("tintin_checkpoints_total"),
        };
        Ok(Server {
            db: SharedDatabase::from_database(db),
            state: Arc::new(RwLock::new(ServerState {
                tintin,
                installations,
            })),
            obs: Arc::new(ServerObs::with_registry(registry)),
            dura: Some(Arc::new(dura)),
            ..Server::default()
        })
    }

    /// Is this server durable (opened over a data directory)?
    pub fn is_durable(&self) -> bool {
        self.dura.is_some()
    }

    /// What [`Server::open`] recovered, if this server is durable.
    pub fn recovery_summary(&self) -> Option<RecoverySummary> {
        self.dura.as_ref().map(|d| d.summary.clone())
    }

    /// The log watermarks right now, if this server is durable.
    pub fn wal_status(&self) -> Option<WalStatus> {
        self.dura.as_ref().map(|d| WalStatus {
            appended_lsn: d.wal.appended_lsn(),
            durable_lsn: d.wal.durable_lsn(),
            appended_size: d.wal.appended_size(),
            durable_size: d.wal.durable_size(),
            wal_path: d.wal.path().to_path_buf(),
            checkpoint_path: d.checkpoint_path.clone(),
        })
    }

    /// Inject (or clear) a durability mutant. A fault-injection seam for
    /// the simulation harness — see [`DurabilityFault`].
    pub fn set_durability_fault(&self, fault: DurabilityFault) {
        if let Some(d) = &self.dura {
            d.set_fault(fault);
        }
    }

    /// Write a checkpoint and rotate the log: snapshot the base tables,
    /// catalog DDL, assertion sources and commit clock at a quiescent
    /// point (under the commit lock, so no commit is mid-flight), write it
    /// atomically (temp file → fsync → rename), then truncate the log.
    /// LSNs keep counting across the rotation.
    pub fn checkpoint(&self) -> Result<CheckpointStats> {
        let Some(dura) = self.dura.clone() else {
            return Err(SessionError::Durability(
                "server has no data directory (open one with Server::open)".into(),
            ));
        };
        let _commit = self.db.commit_guard();
        let ck = {
            let db = self.db.read();
            let state = self.state_read();
            let mut tables = Vec::new();
            for name in db.table_names() {
                if db.is_event_table(&name) {
                    continue;
                }
                let rows: Vec<Row> = db
                    .table(&name)
                    .map(|t| t.scan().map(|(_, r)| r.clone()).collect())
                    .unwrap_or_default();
                tables.push((name, rows));
            }
            Checkpoint {
                last_lsn: dura.wal.appended_lsn(),
                commit_ts: db.current_ts(),
                ddl: lock(&dura.ddl_log).clone(),
                installs: state
                    .installations
                    .iter()
                    .map(|i| i.assertions.iter().map(|a| a.source_sql.clone()).collect())
                    .collect(),
                tables,
            }
        };
        let stats = CheckpointStats {
            last_lsn: ck.last_lsn,
            commit_ts: ck.commit_ts,
            tables: ck.tables.len(),
            rows: ck.tables.iter().map(|(_, r)| r.len()).sum(),
        };
        if dura.fault() == DurabilityFault::TornCheckpoint {
            // The mutant: rotate the log before the checkpoint is durable
            // and write the checkpoint in place, torn mid-payload — the
            // write-protocol violation the crash oracle must catch.
            dura.wal.reset()?;
            let bytes = tintin_wal::encode_checkpoint(&ck);
            let cut = bytes.len() * 2 / 3;
            std::fs::write(&dura.checkpoint_path, &bytes[..cut]).map_err(WalError::from)?;
            dura.checkpoints.inc();
            return Ok(stats);
        }
        write_checkpoint(&dura.checkpoint_path, &ck)?;
        dura.wal.reset()?;
        dura.checkpoints.inc();
        Ok(stats)
    }
}
