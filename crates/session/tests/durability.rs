//! Recovery edge cases for the durable server: empty/absent logs, torn
//! final records, checkpoint + tail replay, recovery idempotence, and the
//! no-rejected-residue guarantee. The crash/torn-write *matrix* lives in
//! `tintin-sim`; these tests pin the individual recovery behaviors.

use tintin_session::{DurabilityFault, DurabilityOptions, Server, StatementOutcome};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tintin-session-durability-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Canonical state dump: every non-event table's rows, sorted, rendered.
fn dump(server: &Server) -> Vec<(String, Vec<String>)> {
    let names: Vec<String> = {
        let db = server.database().read();
        let mut names: Vec<String> = db
            .table_names()
            .into_iter()
            .filter(|n| !db.is_event_table(n))
            .collect();
        names.sort();
        names
    };
    let sess = server.connect();
    names
        .into_iter()
        .map(|n| {
            let rs = sess.query_rows(&format!("SELECT * FROM {n}")).unwrap();
            let mut rows: Vec<String> = rs.rows.iter().map(|r| format!("{r:?}")).collect();
            rows.sort();
            (n, rows)
        })
        .collect()
}

fn setup_schema(server: &Server) {
    let mut s = server.connect();
    s.execute(
        "CREATE TABLE t (k INT PRIMARY KEY, v INT);
         CREATE ASSERTION nonNegative CHECK (NOT EXISTS (SELECT * FROM t WHERE v < 0));",
    )
    .unwrap();
}

#[test]
fn fresh_directory_opens_empty_and_durable() {
    let dir = tmpdir("fresh");
    let server = Server::open(&dir).unwrap();
    assert!(server.is_durable());
    let summary = server.recovery_summary().unwrap();
    assert!(!summary.checkpoint_loaded);
    assert_eq!(summary.recovered_lsn, 0);
    assert_eq!(summary.commits_replayed, 0);
    assert_eq!(summary.tail_bytes_truncated, 0);
    // An in-memory server stays non-durable.
    assert!(!Server::new().is_durable());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn commits_survive_restart() {
    let dir = tmpdir("restart");
    {
        let server = Server::open(&dir).unwrap();
        setup_schema(&server);
        let mut s = server.connect();
        s.execute("INSERT INTO t VALUES (1, 10); INSERT INTO t VALUES (2, 20);")
            .unwrap();
        s.execute("BEGIN; INSERT INTO t VALUES (3, 30); DELETE FROM t WHERE k = 1; COMMIT;")
            .unwrap();
    }
    let server = Server::open(&dir).unwrap();
    let summary = server.recovery_summary().unwrap();
    assert_eq!(summary.commits_replayed, 3);
    assert_eq!(summary.catalog_replayed, 2); // CREATE TABLE + install
    assert_eq!(summary.tail_bytes_truncated, 0);
    assert_eq!(
        dump(&server),
        vec![(
            "t".to_string(),
            vec![
                "[Int(2), Int(20)]".to_string(),
                "[Int(3), Int(30)]".to_string()
            ]
        )]
    );
    // The recovered state is still checked: the assertion came back too.
    assert_eq!(server.assertion_names(), vec!["nonnegative".to_string()]);
    let mut s = server.connect();
    let out = s.execute("INSERT INTO t VALUES (4, -1)").unwrap();
    assert!(matches!(
        out.last(),
        Some(StatementOutcome::Rejected { .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn commit_clock_continues_after_recovery() {
    let dir = tmpdir("clock");
    let before = {
        let server = Server::open(&dir).unwrap();
        setup_schema(&server);
        let mut s = server.connect();
        s.execute("INSERT INTO t VALUES (1, 1)").unwrap();
        let ts = server.database().read().current_ts();
        ts
    };
    let server = Server::open(&dir).unwrap();
    assert_eq!(server.database().read().current_ts(), before);
    // The next commit publishes a *fresh* timestamp (the engine asserts
    // monotonicity internally).
    let mut s = server.connect();
    s.execute("INSERT INTO t VALUES (2, 2)").unwrap();
    assert!(server.database().read().current_ts() > before);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rejected_commits_leave_no_log_residue() {
    let dir = tmpdir("rejected");
    {
        let server = Server::open(&dir).unwrap();
        setup_schema(&server);
        let mut s = server.connect();
        s.execute("INSERT INTO t VALUES (1, 1)").unwrap();
        let logged = server.wal_status().unwrap().appended_lsn;
        let out = s
            .execute("BEGIN; INSERT INTO t VALUES (2, -5); COMMIT;")
            .unwrap();
        assert!(matches!(
            out.last(),
            Some(StatementOutcome::Rejected { .. })
        ));
        // The rejected commit appended nothing.
        assert_eq!(server.wal_status().unwrap().appended_lsn, logged);
    }
    let server = Server::open(&dir).unwrap();
    assert_eq!(server.recovery_summary().unwrap().commits_replayed, 1);
    assert_eq!(
        dump(&server),
        vec![("t".to_string(), vec!["[Int(1), Int(1)]".to_string()])]
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_final_record_is_truncated_and_prefix_recovered() {
    let dir = tmpdir("torn");
    let (wal_path, full_dump) = {
        let server = Server::open(&dir).unwrap();
        setup_schema(&server);
        let mut s = server.connect();
        for k in 1..=4 {
            s.execute(&format!("INSERT INTO t VALUES ({k}, {k})"))
                .unwrap();
        }
        (server.wal_status().unwrap().wal_path, dump(&server))
    };
    // Tear the final record: chop 3 bytes off the log mid-frame.
    let mut bytes = std::fs::read(&wal_path).unwrap();
    let torn_len = bytes.len() - 3;
    bytes.truncate(torn_len);
    std::fs::write(&wal_path, &bytes).unwrap();

    let server = Server::open(&dir).unwrap();
    let summary = server.recovery_summary().unwrap();
    assert_eq!(summary.commits_replayed, 3);
    assert!(summary.tail_bytes_truncated > 0);
    let mut expected = full_dump;
    expected[0].1.pop(); // k=4 was in the torn record
    assert_eq!(dump(&server), expected);
    // The truncated log is consistent again: appends go right back to work.
    let mut s = server.connect();
    s.execute("INSERT INTO t VALUES (9, 9)").unwrap();
    let reopened = Server::open(&dir).unwrap();
    assert!(dump(&reopened)[0]
        .1
        .contains(&"[Int(9), Int(9)]".to_string()));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_plus_tail_replay() {
    let dir = tmpdir("checkpoint");
    {
        let server = Server::open(&dir).unwrap();
        setup_schema(&server);
        let mut s = server.connect();
        for k in 1..=3 {
            s.execute(&format!("INSERT INTO t VALUES ({k}, {k})"))
                .unwrap();
        }
        let stats = server.checkpoint().unwrap();
        assert_eq!(stats.tables, 1);
        assert_eq!(stats.rows, 3);
        // The log was rotated; LSNs keep counting.
        let st = server.wal_status().unwrap();
        assert_eq!(st.appended_size, 0);
        assert_eq!(st.appended_lsn, stats.last_lsn);
        // Tail after the checkpoint.
        s.execute("INSERT INTO t VALUES (4, 4); DELETE FROM t WHERE k = 1;")
            .unwrap();
    }
    let server = Server::open(&dir).unwrap();
    let summary = server.recovery_summary().unwrap();
    assert!(summary.checkpoint_loaded);
    assert_eq!(summary.commits_replayed, 2); // only the tail
    assert_eq!(
        dump(&server),
        vec![(
            "t".to_string(),
            vec![
                "[Int(2), Int(2)]".to_string(),
                "[Int(3), Int(3)]".to_string(),
                "[Int(4), Int(4)]".to_string()
            ]
        )]
    );
    assert_eq!(server.assertion_names(), vec!["nonnegative".to_string()]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_is_idempotent() {
    let dir = tmpdir("idempotent");
    {
        let server = Server::open(&dir).unwrap();
        setup_schema(&server);
        let mut s = server.connect();
        for k in 1..=5 {
            s.execute(&format!("INSERT INTO t VALUES ({k}, {k})"))
                .unwrap();
        }
        server.checkpoint().unwrap();
        s.execute("INSERT INTO t VALUES (6, 6)").unwrap();
    }
    // Recover twice without writing in between: identical state, clock and
    // watermarks both times — recovery itself must not mutate the log.
    let (first_dump, first_ts, first_lsn) = {
        let server = Server::open(&dir).unwrap();
        let ts = server.database().read().current_ts();
        let lsn = server.wal_status().unwrap().appended_lsn;
        (dump(&server), ts, lsn)
    };
    let server = Server::open(&dir).unwrap();
    assert_eq!(dump(&server), first_dump);
    assert_eq!(server.database().read().current_ts(), first_ts);
    assert_eq!(server.wal_status().unwrap().appended_lsn, first_lsn);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dropped_assertions_stay_dropped_after_recovery() {
    let dir = tmpdir("drop");
    {
        let server = Server::open(&dir).unwrap();
        setup_schema(&server);
        let mut s = server.connect();
        s.execute("DROP ASSERTION nonNegative").unwrap();
        s.execute("INSERT INTO t VALUES (1, -1)").unwrap(); // now legal
    }
    let server = Server::open(&dir).unwrap();
    assert!(server.assertion_names().is_empty());
    assert_eq!(
        dump(&server),
        vec![("t".to_string(), vec!["[Int(1), Int(-1)]".to_string()])]
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn skip_fsync_fault_leaves_durable_watermark_behind() {
    let dir = tmpdir("skipfsync");
    let server = Server::open(&dir).unwrap();
    setup_schema(&server);
    let mut s = server.connect();
    s.execute("INSERT INTO t VALUES (1, 1)").unwrap();
    let st = server.wal_status().unwrap();
    assert_eq!(st.durable_lsn, st.appended_lsn);
    server.set_durability_fault(DurabilityFault::SkipFsync);
    s.execute("INSERT INTO t VALUES (2, 2)").unwrap();
    let st = server.wal_status().unwrap();
    // Acked but never synced: exactly the window a crash exposes.
    assert!(st.durable_lsn < st.appended_lsn);
    assert!(st.durable_size < st.appended_size);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_checkpoint_fault_is_detected_at_reopen() {
    let dir = tmpdir("tornck");
    {
        let server = Server::open(&dir).unwrap();
        setup_schema(&server);
        let mut s = server.connect();
        s.execute("INSERT INTO t VALUES (1, 1)").unwrap();
        server.set_durability_fault(DurabilityFault::TornCheckpoint);
        server.checkpoint().unwrap();
    }
    // The mutant rotated the log before making the checkpoint durable:
    // recovery must refuse the damaged checkpoint rather than silently
    // lose the acknowledged history it claimed to fold in.
    let err = Server::open(&dir).unwrap_err();
    assert!(err.to_string().contains("durability error"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn size_triggered_checkpoint_rotates_the_log() {
    let dir = tmpdir("sizetrigger");
    {
        let server = Server::open_with(
            &dir,
            &DurabilityOptions {
                checkpoint_bytes: Some(1), // every commit triggers rotation
                ..DurabilityOptions::default()
            },
        )
        .unwrap();
        setup_schema(&server);
        let mut s = server.connect();
        for k in 1..=3 {
            s.execute(&format!("INSERT INTO t VALUES ({k}, {k})"))
                .unwrap();
        }
        let st = server.wal_status().unwrap();
        assert_eq!(st.appended_size, 0, "log should have been rotated");
        let snap = server.metrics_snapshot();
        assert!(snap.counter("tintin_checkpoints_total").unwrap_or(0) >= 3);
    }
    let server = Server::open(&dir).unwrap();
    let summary = server.recovery_summary().unwrap();
    assert!(summary.checkpoint_loaded);
    assert_eq!(summary.commits_replayed, 0); // everything folded in
    assert_eq!(dump(&server)[0].1.len(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_metrics_flow_into_the_server_registry() {
    let dir = tmpdir("metrics");
    let server = Server::open(&dir).unwrap();
    setup_schema(&server);
    let mut s = server.connect();
    s.execute("INSERT INTO t VALUES (1, 1)").unwrap();
    let snap = server.metrics_snapshot();
    assert!(snap.counter("tintin_wal_records").unwrap_or(0) >= 3);
    assert!(snap.counter("tintin_wal_bytes_appended").unwrap_or(0) > 0);
    assert!(snap.counter("tintin_wal_fsyncs").unwrap_or(0) > 0);
    let _ = std::fs::remove_dir_all(&dir);
}
