#![warn(missing_docs)]
//! `tintin-server` — the TCP front-end that makes a TINTIN database
//! reachable from other processes and machines.
//!
//! The paper's system lives inside SQL Server, where applications reach the
//! checker over a network connection; this crate supplies that layer for
//! the reproduction. It is a thin, threaded adapter over
//! [`tintin_session::Server`]:
//!
//! * **one connection = one [`Session`](tintin_session::Session)** — the
//!   mapping the session layer was designed for. A connection's transaction
//!   state (open transaction, savepoints, `BEGIN`-time snapshot) lives in
//!   its session and dies with the connection; the database, the installed
//!   assertions and the MVCC machinery are shared by all of them.
//! * **requests are SQL scripts, responses are typed** — each request
//!   frame carries a script for [`tintin_session::Session::execute`]; the
//!   response carries
//!   every statement's outcome (rows, commit/reject decisions with
//!   violation tuples and check statistics) or a typed error, including how
//!   far a failing script got. See [`protocol`] for the exact encoding.
//! * **std-only threading** — a listener thread accepts, each connection
//!   gets a handler thread (the environment is offline; no async runtime is
//!   available, and the engine's locking is already designed for
//!   thread-per-session). [`ServerConfig::max_connections`] bounds the
//!   thread count: excess connections receive a typed `Server` error and
//!   are closed.
//! * **graceful shutdown** — [`WireServer::shutdown`] stops accepting,
//!   shuts down every live connection's socket (handlers finish their
//!   in-flight request first, since the socket shutdown only interrupts
//!   the next read) and joins all threads.
//!
//! # Example
//!
//! ```
//! use tintin_server::{ServerConfig, WireServer};
//!
//! let wire = WireServer::bind(
//!     tintin_session::Server::new(),
//!     "127.0.0.1:0", // ephemeral port
//!     ServerConfig::default(),
//! )
//! .unwrap();
//! let addr = wire.local_addr();
//! // … connect with `tintin-client` / `tintin-cli`, or any TCP client
//! // speaking the frame protocol …
//! wire.shutdown();
//! # let _ = addr;
//! ```

pub mod protocol;

use protocol::{
    encode_response, encode_stats_response, read_frame, write_frame, ServerStats, WireResult,
    WireScriptError,
};
use std::collections::BTreeMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use tintin_obs::{log_debug, log_info, log_warn, Counter, Gauge, Histogram, Stopwatch};
use tintin_session::Server;

/// The log target of every line this crate emits.
const LOG: &str = "tintin_server";

/// Tuning knobs of a [`WireServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum simultaneously served connections; further connects receive
    /// a typed `Server` error response and are closed.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
        }
    }
}

/// Pre-resolved handles for the front-end's metrics, registered in the
/// session layer's registry so one `STATS` snapshot covers the whole
/// process. Resolved once at bind time — the request loop never takes the
/// registry lock.
struct WireMetrics {
    accepted: std::sync::Arc<Counter>,
    turned_away: std::sync::Arc<Counter>,
    live: std::sync::Arc<Gauge>,
    requests: std::sync::Arc<Counter>,
    bytes_in: std::sync::Arc<Counter>,
    bytes_out: std::sync::Arc<Counter>,
    request_seconds: std::sync::Arc<Histogram>,
}

impl WireMetrics {
    fn new(sessions: &Server) -> Self {
        let registry = sessions.registry();
        WireMetrics {
            accepted: registry.counter("tintin_connections_accepted_total"),
            turned_away: registry.counter("tintin_connections_turned_away_total"),
            live: registry.gauge("tintin_connections_live"),
            requests: registry.counter("tintin_requests_total"),
            bytes_in: registry.counter("tintin_bytes_in_total"),
            bytes_out: registry.counter("tintin_bytes_out_total"),
            request_seconds: registry.histogram("tintin_request_seconds"),
        }
    }
}

/// State shared between the accept loop, the connection handlers and the
/// owning [`WireServer`] handle.
struct Inner {
    sessions: Server,
    config: ServerConfig,
    metrics: WireMetrics,
    shutting_down: AtomicBool,
    active: AtomicUsize,
    served: AtomicUsize,
    next_conn_id: AtomicUsize,
    /// Clones of the live connections' streams, keyed by connection id, so
    /// shutdown can interrupt blocked reads — ordered, so shutdown walks
    /// connections in a deterministic (id) order. Each handler's [`ConnGuard`]
    /// removes its own entry on exit (panic included), so the registry
    /// stays bounded by the number of *live* connections.
    conns: Mutex<BTreeMap<usize, TcpStream>>,
}

/// Per-connection cleanup, panic-safe: runs on the handler thread's way
/// out however it exits. Releases the admission slot and drops the
/// shutdown-interrupt stream clone — without it, a panicking handler (or
/// an early return) would leak an `active` slot forever and accumulate one
/// socket fd per connection served.
struct ConnGuard {
    inner: Arc<Inner>,
    id: usize,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.inner
            .conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&self.id);
        self.inner.active.fetch_sub(1, Ordering::SeqCst);
        self.inner.metrics.live.dec();
        log_debug!(LOG, "connection closed id={}", self.id);
    }
}

/// A running TCP front-end. Dropping the handle shuts the server down
/// (equivalent to [`WireServer::shutdown`]).
pub struct WireServer {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for WireServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireServer")
            .field("addr", &self.addr)
            .field("active_connections", &self.active_connections())
            .finish()
    }
}

impl WireServer {
    /// Bind `addr` and start serving `sessions` — every accepted connection
    /// is attached to this [`Server`]'s shared database and assertion set.
    /// Pass port `0` for an ephemeral port ([`WireServer::local_addr`]
    /// reports the actual one).
    pub fn bind(
        sessions: Server,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        log_info!(
            LOG,
            "listening addr={addr} max_connections={}",
            config.max_connections
        );
        let metrics = WireMetrics::new(&sessions);
        let inner = Arc::new(Inner {
            sessions,
            config,
            metrics,
            shutting_down: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            served: AtomicUsize::new(0),
            next_conn_id: AtomicUsize::new(0),
            conns: Mutex::new(BTreeMap::new()),
        });
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let inner = inner.clone();
            let handlers = handlers.clone();
            std::thread::Builder::new()
                .name("tintin-accept".into())
                .spawn(move || accept_loop(&listener, &inner, &handlers))?
        };
        Ok(WireServer {
            inner,
            addr,
            accept_thread: Some(accept_thread),
            handlers,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.inner.active.load(Ordering::Relaxed)
    }

    /// Connections accepted and served over the server's lifetime (turned
    /// away over-limit connects are not counted).
    pub fn connections_served(&self) -> usize {
        self.inner.served.load(Ordering::Relaxed)
    }

    /// The session-layer [`Server`] behind this front-end (e.g. to attach
    /// an in-process session alongside the remote ones).
    pub fn sessions(&self) -> &Server {
        &self.inner.sessions
    }

    /// Stop accepting, interrupt every live connection's next read, and
    /// join all threads. In-flight requests finish first: a handler only
    /// notices the shutdown when it returns to the socket for the next
    /// frame. Idempotent.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        // `swap` so the idempotent second call (drop after an explicit
        // shutdown) doesn't log twice.
        if !self.inner.shutting_down.swap(true, Ordering::SeqCst) {
            log_info!(
                LOG,
                "shutting down addr={} served={} active={}",
                self.addr,
                self.connections_served(),
                self.active_connections()
            );
        }
        // Unblock the accept loop: a throwaway connection to ourselves. A
        // wildcard bind address (0.0.0.0 / ::) is not connectable on every
        // platform — reach the listener via loopback instead.
        let mut target = self.addr;
        if target.ip().is_unspecified() {
            target.set_ip(match target {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(target);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Interrupt blocked reads; handlers then observe EOF/error and exit.
        {
            let conns = self
                .inner
                .conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            for c in conns.values() {
                let _ = c.shutdown(Shutdown::Both);
            }
        }
        let handlers =
            std::mem::take(&mut *self.handlers.lock().unwrap_or_else(PoisonError::into_inner));
        for h in handlers {
            let _ = h.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>, handlers: &Mutex<Vec<JoinHandle<()>>>) {
    for stream in listener.incoming() {
        if inner.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let mut stream = match stream {
            Ok(s) => s,
            Err(_) => {
                // Persistent accept errors (EMFILE/ENFILE under fd
                // exhaustion) re-fire immediately; back off instead of
                // busy-spinning a core while starving the handlers that
                // would free the descriptors.
                std::thread::sleep(std::time::Duration::from_millis(50));
                continue;
            }
        };
        // Request/response with small frames: Nagle only adds latency.
        let _ = stream.set_nodelay(true);
        // Connection limit: turn the connection away with a typed error
        // (admission control, not a hung socket).
        let admitted = inner
            .active
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < inner.config.max_connections).then_some(n + 1)
            })
            .is_ok();
        if !admitted {
            inner.metrics.turned_away.inc();
            log_warn!(
                LOG,
                "connection turned away: limit {} reached",
                inner.config.max_connections
            );
            let busy: WireResult = Err(WireScriptError::server(format!(
                "connection limit ({}) reached, try again later",
                inner.config.max_connections
            )));
            let _ = write_frame(&mut stream, &encode_response(&busy));
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        let id = inner.next_conn_id.fetch_add(1, Ordering::Relaxed);
        // The guard owns the cleanup from here on: if registration or
        // spawning fails, or the handler panics, or it returns normally —
        // the slot and the registry entry are released exactly once (the
        // live-connections gauge pairs with the guard the same way).
        inner.metrics.live.inc();
        let guard = ConnGuard {
            inner: inner.clone(),
            id,
        };
        log_debug!(
            LOG,
            "connection accepted id={id} peer={}",
            stream
                .peer_addr()
                .map_or_else(|_| "unknown".into(), |a| a.to_string())
        );
        // The registry clone is what lets shutdown() interrupt this
        // connection's blocked reads. A connection that cannot be
        // registered (try_clone fails under fd pressure) must be turned
        // away, not served: serving it would make shutdown() hang forever
        // joining an uninterruptible handler.
        match stream.try_clone() {
            Ok(clone) => {
                inner
                    .conns
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .insert(id, clone);
            }
            Err(e) => {
                let err: WireResult = Err(WireScriptError::server(format!(
                    "server cannot register the connection: {e}; try again later"
                )));
                let _ = write_frame(&mut stream, &encode_response(&err));
                let _ = stream.shutdown(Shutdown::Both);
                drop(guard);
                continue;
            }
        }
        inner.served.fetch_add(1, Ordering::Relaxed);
        inner.metrics.accepted.inc();
        let handler = std::thread::Builder::new()
            .name("tintin-conn".into())
            .spawn(move || {
                let _guard = guard;
                handle_connection(&mut stream, &_guard.inner);
            });
        if let Ok(h) = handler {
            let mut hs = handlers.lock().unwrap_or_else(PoisonError::into_inner);
            // Reap finished handlers so the vector stays bounded by the
            // number of live connections (join returns immediately).
            let mut i = 0;
            while i < hs.len() {
                if hs[i].is_finished() {
                    let _ = hs.swap_remove(i).join();
                } else {
                    i += 1;
                }
            }
            hs.push(h);
        }
    }
}

/// Serve one connection: a private [`tintin_session::Session`] executes
/// each request frame's script, and the outcome (or typed failure) is
/// framed back. The loop ends on clean EOF, an I/O error, or server
/// shutdown.
fn handle_connection(stream: &mut TcpStream, inner: &Inner) {
    let mut session = inner.sessions.connect();
    loop {
        if inner.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let script = match read_frame(stream) {
            Ok(Some(script)) => script,
            Ok(None) => break, // peer closed
            Err(e) if e.kind() == io::ErrorKind::InvalidInput => {
                // A non-UTF-8 payload: fully consumed before it failed to
                // decode, so the stream is still frame-aligned — answer
                // with the documented typed SERVER error and keep serving
                // this connection (and its session's open transaction).
                let err: WireResult = Err(WireScriptError::server(e.to_string()));
                if write_frame(stream, &encode_response(&err)).is_err() {
                    break;
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // A well-formed length prefix announcing an oversized
                // frame: the documented contract is a typed SERVER error,
                // not a silent close. The announced bytes were never
                // consumed, so the stream is desynchronized and the
                // connection still ends.
                let err: WireResult = Err(WireScriptError::server(e.to_string()));
                let _ = write_frame(stream, &encode_response(&err));
                break;
            }
            Err(_) => break, // torn connection
        };
        inner.metrics.requests.inc();
        inner.metrics.bytes_in.add(script.len() as u64 + 4);
        let mut span = Stopwatch::start_if(inner.sessions.registry().is_enabled());

        // The introspection command is intercepted before SQL parsing: the
        // response is a metrics snapshot (every registered metric — session
        // commit phases, this front-end's counters — plus the engine's
        // MvccStats, which the statement protocol never carried).
        if protocol::is_stats_request(&script) {
            let stats = ServerStats {
                metrics: inner.sessions.metrics_snapshot(),
                mvcc: inner.sessions.database().read().mvcc_stats(),
            };
            let payload = encode_stats_response(&stats);
            inner.metrics.bytes_out.add(payload.len() as u64 + 4);
            inner.metrics.request_seconds.record(span.lap());
            if write_frame(stream, &payload).is_err() {
                break;
            }
            continue;
        }

        let result: WireResult = match session.execute(&script) {
            Ok(outcomes) => Ok(outcomes),
            Err(e) => Err(WireScriptError::from(e.as_ref())),
        };
        let mut payload = encode_response(&result);
        if payload.len() > protocol::MAX_FRAME {
            // The result is too large to frame (e.g. a SELECT over a huge
            // table). Substitute the documented typed SERVER error: unlike
            // an oversized *request*, nothing has been written yet, so the
            // stream stays synchronized and the connection (and its
            // session) lives on.
            let err: WireResult = Err(WireScriptError::server(format!(
                "response of {} bytes exceeds the {}-byte frame cap; \
                 narrow the query",
                payload.len(),
                protocol::MAX_FRAME
            )));
            payload = encode_response(&err);
        }
        inner.metrics.bytes_out.add(payload.len() as u64 + 4);
        inner.metrics.request_seconds.record(span.lap());
        if write_frame(stream, &payload).is_err() {
            break;
        }
    }
    // The session (and any open transaction's snapshot pin) drops here.
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send<T: Send>() {}

    #[test]
    fn wire_server_is_send() {
        assert_send::<WireServer>();
    }

    #[test]
    fn bind_shutdown_cycle_is_clean() {
        let wire = WireServer::bind(Server::new(), "127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = wire.local_addr();
        assert_ne!(addr.port(), 0);
        assert_eq!(wire.active_connections(), 0);
        wire.shutdown();
        // The port is released: we can bind it again.
        let again = TcpListener::bind(addr);
        assert!(again.is_ok(), "port not released after shutdown");
    }
}
