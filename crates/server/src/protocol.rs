//! The TINTIN wire protocol: framing and the text codec for statement
//! outcomes, result sets, violations and errors.
//!
//! The protocol is deliberately dependency-free (the build environment is
//! offline) and human-debuggable:
//!
//! * **Framing** — every message is one *frame*: a 4-byte big-endian
//!   payload length followed by that many bytes of UTF-8 text. A request
//!   frame's payload is a SQL script; a response frame's payload is the
//!   line-oriented encoding below. Frames are capped at [`MAX_FRAME`]
//!   bytes; a peer sending more is a protocol error, not an allocation.
//! * **Response payload** — tab-separated fields on newline-separated
//!   lines. The first line is the status:
//!   `OK <n>` (n outcome blocks follow) or
//!   `ERR <failing-index> <failing-statement> <n-completed>` (the outcome
//!   blocks of the statements that completed before the failure, then one
//!   `E` error line). Text fields escape `\` `\t` `\n` `\r`, so splitting
//!   on tabs and newlines is always safe.
//! * **Outcome blocks** mirror [`StatementOutcome`] variant for variant;
//!   result sets are a `C` column-header line plus one `R` line per row;
//!   values are typed (`~` null, `i…` integer, `f…` the exact IEEE-754
//!   bits in hex, `s…` text) so a decoded row compares equal to the
//!   original. `COMMITTED` / `REJECTED` carry an `S` line with the check
//!   statistics, and `REJECTED` carries one `V` block per violation —
//!   assertion name, reporting view, and the violating tuples themselves.
//! * **Errors** are typed ([`WireError`]): every [`SessionError`] variant
//!   crosses the wire distinguishable — a client can match on a
//!   serialization conflict (and retry) or on violation details without
//!   string-sniffing — plus a `Server` variant for front-end conditions
//!   (connection limit, oversized frame).

use std::fmt;
use std::io::{self, Read, Write};
use std::time::Duration;
use tintin::{AssertionClass, AssertionExplain, CheckStats, ViewExplain, Violation};
use tintin_engine::{MvccStats, NormalizationReport, ResultSet, Value};
use tintin_obs::{HistogramSnapshot, Sample, SampleValue, Snapshot as MetricsSnapshot};
use tintin_session::{ScriptError, SessionError, StatementOutcome};

/// Hard cap on one frame's payload (requests and responses alike).
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// A malformed frame or payload (protocol bug or corrupted stream —
/// distinct from a well-formed error *response*, which decodes into
/// [`WireScriptError`]).
#[derive(Debug, Clone)]
pub struct ProtocolError(pub String);

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire-protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

impl From<ProtocolError> for io::Error {
    fn from(e: ProtocolError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

// ------------------------------------------------------------------ frames

/// Write one length-prefixed frame. The length prefix and payload go out
/// in a single `write_all` — on an unbuffered `TcpStream` a split write
/// would emit two segments and interact badly with Nagle/delayed-ACK
/// (~40ms per request/response turn).
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(ProtocolError(format!(
            "frame of {} bytes exceeds the {MAX_FRAME}-byte cap",
            bytes.len()
        ))
        .into());
    }
    let mut frame = Vec::with_capacity(4 + bytes.len());
    frame.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    frame.extend_from_slice(bytes);
    w.write_all(&frame)?;
    w.flush()
}

/// Read one length-prefixed frame. Returns `None` on a clean end of stream
/// (the peer closed between frames); mid-frame EOF — including a length
/// prefix truncated after 1–3 bytes — is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    // The prefix is read manually rather than with read_exact: EOF at
    // byte 0 is a clean close, EOF at bytes 1–3 is a torn frame, and
    // read_exact cannot tell the two apart.
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < len_buf.len() {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(ProtocolError(format!(
                    "connection closed mid-frame ({filled} of 4 length-prefix bytes)"
                ))
                .into())
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(ProtocolError(format!(
            "peer announced a {len}-byte frame (cap {MAX_FRAME})"
        ))
        .into());
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    // The payload is fully consumed at this point, so a non-UTF-8 failure
    // leaves the stream frame-aligned — report it as `InvalidInput` so
    // callers can answer with a typed error and keep the connection (the
    // oversized-announcement error above is `InvalidData`: its bytes were
    // never consumed and the stream is desynchronized).
    let text = String::from_utf8(payload).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            ProtocolError("frame payload is not UTF-8".into()).to_string(),
        )
    })?;
    Ok(Some(text))
}

// ----------------------------------------------------------------- escaping

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, ProtocolError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => {
                return Err(ProtocolError(format!(
                    "bad escape '\\{}'",
                    other.map(String::from).unwrap_or_default()
                )))
            }
        }
    }
    Ok(out)
}

// ------------------------------------------------------------------- errors

/// The typed error a response carries — every [`SessionError`] variant
/// survives the wire distinguishable (nested engine / checker errors travel
/// as their rendered text), plus front-end conditions under
/// [`WireError::Server`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// SQL parsing failed.
    Parse(String),
    /// Engine-level failure (catalog, DML, evaluation), rendered.
    Engine(String),
    /// Install / check pipeline failure, rendered.
    Tintin(String),
    /// `COMMIT`, `ROLLBACK`, `SAVEPOINT`, … without an open transaction.
    NoActiveTransaction,
    /// `BEGIN` while a transaction is already open.
    TransactionAlreadyOpen,
    /// `ROLLBACK TO` / `RELEASE` an unknown savepoint.
    NoSuchSavepoint(String),
    /// Schema changes are not transactional (payload: the verb phrase).
    DdlInTransaction(String),
    /// `CREATE ASSERTION` with a name that is already installed.
    DuplicateAssertion(String),
    /// `DROP ASSERTION` of an unknown name.
    NoSuchAssertion(String),
    /// The transaction lost a first-committer-wins race; retry on a fresh
    /// snapshot may succeed.
    SerializationConflict {
        /// The table the conflicting row versions live in.
        table: String,
        /// What raced.
        detail: String,
    },
    /// A front-end condition: connection limit reached, oversized frame,
    /// server shutting down.
    Server(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Parse(m) => write!(f, "parse error: {m}"),
            WireError::Engine(m) | WireError::Tintin(m) => write!(f, "{m}"),
            WireError::NoActiveTransaction => {
                write!(f, "no transaction is open (use BEGIN)")
            }
            WireError::TransactionAlreadyOpen => {
                write!(
                    f,
                    "a transaction is already open (COMMIT or ROLLBACK first)"
                )
            }
            WireError::NoSuchSavepoint(n) => write!(f, "no such savepoint: '{n}'"),
            WireError::DdlInTransaction(k) => write!(
                f,
                "{k} is not transactional; COMMIT or ROLLBACK the open transaction first"
            ),
            WireError::DuplicateAssertion(n) => {
                write!(f, "assertion '{n}' is already installed")
            }
            WireError::NoSuchAssertion(n) => write!(f, "no such assertion: '{n}'"),
            WireError::SerializationConflict { table, detail } => write!(
                f,
                "serialization conflict on {table}: {detail} (transaction rolled \
                 back; retry on a fresh snapshot)"
            ),
            WireError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<&SessionError> for WireError {
    fn from(e: &SessionError) -> Self {
        match e {
            SessionError::Parse(m) => WireError::Parse(m.clone()),
            SessionError::Engine(e) => WireError::Engine(e.to_string()),
            SessionError::Tintin(e) => WireError::Tintin(e.to_string()),
            SessionError::NoActiveTransaction => WireError::NoActiveTransaction,
            SessionError::TransactionAlreadyOpen => WireError::TransactionAlreadyOpen,
            SessionError::NoSuchSavepoint(n) => WireError::NoSuchSavepoint(n.clone()),
            SessionError::DdlInTransaction(k) => WireError::DdlInTransaction(k.clone()),
            SessionError::DuplicateAssertion(n) => WireError::DuplicateAssertion(n.clone()),
            SessionError::NoSuchAssertion(n) => WireError::NoSuchAssertion(n.clone()),
            SessionError::SerializationConflict { table, detail } => {
                WireError::SerializationConflict {
                    table: table.clone(),
                    detail: detail.clone(),
                }
            }
            SessionError::Durability(m) => WireError::Server(format!("durability error: {m}")),
        }
    }
}

/// Is this error worth retrying on a fresh snapshot (a lost
/// first-committer-wins race, not bad data)?
impl WireError {
    /// `true` exactly for [`WireError::SerializationConflict`].
    pub fn is_serialization_conflict(&self) -> bool {
        matches!(self, WireError::SerializationConflict { .. })
    }
}

/// The wire-side mirror of [`ScriptError`]: how far the script got before
/// failing, and why.
#[derive(Debug, Clone)]
pub struct WireScriptError {
    /// Outcomes of the statements that completed before the failure.
    pub completed: Vec<StatementOutcome>,
    /// Zero-based index of the failing statement (0 for a parse failure).
    pub statement_index: usize,
    /// The failing statement, pretty-printed (empty for a parse failure).
    pub statement: String,
    /// The typed failure.
    pub error: WireError,
}

impl fmt::Display for WireScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.statement.is_empty() {
            write!(f, "{}", self.error)
        } else {
            write!(
                f,
                "statement {} ({}) failed: {}",
                self.statement_index + 1,
                // The same one-line rendering the local ScriptError uses.
                tintin_session::one_line_statement(&self.statement),
                self.error
            )
        }
    }
}

impl std::error::Error for WireScriptError {}

impl From<&ScriptError> for WireScriptError {
    fn from(e: &ScriptError) -> Self {
        WireScriptError {
            completed: e.completed.clone(),
            statement_index: e.statement_index,
            statement: e.statement.clone(),
            error: WireError::from(&e.error),
        }
    }
}

impl WireScriptError {
    /// A front-end failure (no statement ran).
    pub fn server(message: impl Into<String>) -> Self {
        WireScriptError {
            completed: Vec::new(),
            statement_index: 0,
            statement: String::new(),
            error: WireError::Server(message.into()),
        }
    }
}

/// What one request decodes to on the client side.
pub type WireResult = Result<Vec<StatementOutcome>, WireScriptError>;

// ------------------------------------------------------------------- STATS

/// The introspection command. A request frame whose payload is `STATS`
/// (case-insensitive, surrounding whitespace ignored) is answered with a
/// metrics snapshot instead of being parsed as SQL — backward compatible,
/// since `STATS` was never valid SQL in this dialect.
pub const STATS_COMMAND: &str = "STATS";

/// Is this request payload the `STATS` introspection command?
pub fn is_stats_request(payload: &str) -> bool {
    payload.trim().eq_ignore_ascii_case(STATS_COMMAND)
}

/// What the `STATS` command returns: the full metrics snapshot (counters,
/// gauges, histograms — everything the process registered) plus the
/// engine's [`MvccStats`], which the per-statement protocol never carried
/// (`S` lines hold only [`CheckStats`]) — so a remote `.stats` no longer
/// loses the MVCC/GC picture.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Every registered metric, captured atomically enough for display.
    pub metrics: MetricsSnapshot,
    /// Row-version and garbage-collection bookkeeping.
    pub mvcc: MvccStats,
}

/// Encode a [`ServerStats`] response payload. Line-oriented like the
/// statement codec: a `STATS <n>` status line, then `n` metric lines —
/// `MC name value` (counter), `MG name value` (gauge),
/// `MH name count sum_ns pairs…` with one `bucket:count` field per
/// non-empty log2 bucket — and one final `MV` line with the MVCC stats.
pub fn encode_stats_response(stats: &ServerStats) -> String {
    let mut out = format!("STATS\t{}\n", stats.metrics.samples.len());
    for s in &stats.metrics.samples {
        match &s.value {
            SampleValue::Counter(v) => {
                out.push_str(&format!("MC\t{}\t{v}\n", escape(&s.name)));
            }
            SampleValue::Gauge(v) => {
                out.push_str(&format!("MG\t{}\t{v}\n", escape(&s.name)));
            }
            SampleValue::Histogram(h) => {
                out.push_str(&format!(
                    "MH\t{}\t{}\t{}",
                    escape(&s.name),
                    h.count,
                    h.sum_nanos
                ));
                for (i, c) in &h.buckets {
                    out.push_str(&format!("\t{i}:{c}"));
                }
                out.push('\n');
            }
        }
    }
    let m = &stats.mvcc;
    out.push_str(&format!(
        "MV\t{}\t{}\t{}\t{}\t{}\n",
        m.commit_ts, m.live_versions, m.dead_versions, m.gc_runs, m.gc_pruned
    ));
    out
}

/// Decode a payload produced by [`encode_stats_response`].
pub fn decode_stats_response(payload: &str) -> Result<ServerStats, ProtocolError> {
    let mut lines = Lines {
        lines: payload.lines(),
    };
    let status = lines.next()?;
    if status.first() != Some(&"STATS") || status.len() != 2 {
        return Err(ProtocolError("stats response must start with STATS".into()));
    }
    let n = parse_count(status[1], "metric")?;
    let mut samples = Vec::with_capacity(capped(n));
    for _ in 0..n {
        let fields = lines.next()?;
        let field = |i: usize| -> Result<&str, ProtocolError> {
            fields
                .get(i)
                .copied()
                .ok_or_else(|| ProtocolError("metric line too short".into()))
        };
        let name = unescape(field(1)?)?;
        let value = match field(0)? {
            "MC" => SampleValue::Counter(
                field(2)?
                    .parse::<u64>()
                    .map_err(|_| ProtocolError(format!("bad counter value for '{name}'")))?,
            ),
            "MG" => SampleValue::Gauge(
                field(2)?
                    .parse::<i64>()
                    .map_err(|_| ProtocolError(format!("bad gauge value for '{name}'")))?,
            ),
            "MH" => {
                let count = field(2)?
                    .parse::<u64>()
                    .map_err(|_| ProtocolError(format!("bad histogram count for '{name}'")))?;
                let sum_nanos = field(3)?
                    .parse::<u64>()
                    .map_err(|_| ProtocolError(format!("bad histogram sum for '{name}'")))?;
                let mut buckets = Vec::with_capacity(capped(fields.len().saturating_sub(4)));
                for pair in &fields[4..] {
                    let (i, c) = pair
                        .split_once(':')
                        .ok_or_else(|| ProtocolError(format!("bad bucket pair '{pair}'")))?;
                    buckets.push((
                        i.parse::<u8>()
                            .map_err(|_| ProtocolError(format!("bad bucket index '{i}'")))?,
                        c.parse::<u64>()
                            .map_err(|_| ProtocolError(format!("bad bucket count '{c}'")))?,
                    ));
                }
                SampleValue::Histogram(HistogramSnapshot {
                    count,
                    sum_nanos,
                    buckets,
                })
            }
            tag => return Err(ProtocolError(format!("unknown metric tag '{tag}'"))),
        };
        samples.push(Sample { name, value });
    }
    let mv = lines.next()?;
    if mv.first() != Some(&"MV") || mv.len() != 6 {
        return Err(ProtocolError("malformed MV mvcc line".into()));
    }
    let num_u64 = |i: usize| {
        mv[i]
            .parse::<u64>()
            .map_err(|_| ProtocolError(format!("bad mvcc field '{}'", mv[i])))
    };
    let mvcc = MvccStats {
        commit_ts: num_u64(1)?,
        live_versions: parse_count(mv[2], "mvcc")?,
        dead_versions: parse_count(mv[3], "mvcc")?,
        gc_runs: num_u64(4)?,
        gc_pruned: num_u64(5)?,
    };
    Ok(ServerStats {
        metrics: MetricsSnapshot { samples },
        mvcc,
    })
}

// ------------------------------------------------------------------ values

fn encode_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push('~'),
        Value::Int(i) => {
            out.push('i');
            out.push_str(&i.to_string());
        }
        Value::Real(r) => {
            // The exact IEEE-754 bits: a decoded row compares equal to the
            // original (Display would round).
            out.push('f');
            out.push_str(&format!("{:016x}", r.get().to_bits()));
        }
        Value::Str(s) => {
            out.push('s');
            out.push_str(&escape(s));
        }
    }
}

fn decode_value(field: &str) -> Result<Value, ProtocolError> {
    let mut chars = field.chars();
    match chars.next() {
        Some('~') => Ok(Value::Null),
        Some('i') => chars
            .as_str()
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| ProtocolError(format!("bad integer '{field}'"))),
        Some('f') => u64::from_str_radix(chars.as_str(), 16)
            .map(|bits| Value::real(f64::from_bits(bits)))
            .map_err(|_| ProtocolError(format!("bad real '{field}'"))),
        Some('s') => Ok(Value::str(unescape(chars.as_str())?)),
        _ => Err(ProtocolError(format!("bad value '{field}'"))),
    }
}

// -------------------------------------------------------------- result sets

fn encode_result_set(rs: &ResultSet, out: &mut String) {
    out.push_str(&format!("C\t{}", rs.columns.len()));
    for c in &rs.columns {
        out.push('\t');
        out.push_str(&escape(c));
    }
    out.push('\n');
    for row in &rs.rows {
        out.push('R');
        for v in row.iter() {
            out.push('\t');
            encode_value(v, out);
        }
        out.push('\n');
    }
}

/// A line cursor over a decoded payload.
struct Lines<'a> {
    lines: std::str::Lines<'a>,
}

impl<'a> Lines<'a> {
    fn next(&mut self) -> Result<Vec<&'a str>, ProtocolError> {
        self.lines
            .next()
            .map(|l| l.split('\t').collect())
            .ok_or_else(|| ProtocolError("truncated response".into()))
    }
}

/// Clamp a peer-supplied element count before using it as a `Vec`
/// capacity hint: the real element count is bounded by the decode loop
/// (which errors when the payload runs out of lines), but the *capacity*
/// must not trust the wire — a hostile 9-digit count in a 30-byte payload
/// would otherwise pre-allocate gigabytes before the first line is read.
fn capped(n: usize) -> usize {
    n.min(1024)
}

fn parse_count(field: &str, what: &str) -> Result<usize, ProtocolError> {
    field
        .parse::<usize>()
        .map_err(|_| ProtocolError(format!("bad {what} count '{field}'")))
}

/// Decode one `TAG\t<escaped text>` line (the `W` warning, `P` prune-reason
/// and `D` residual-gate lines all share this shape).
fn decode_tagged(lines: &mut Lines, tag: &str) -> Result<String, ProtocolError> {
    let l = lines.next()?;
    if l.first() != Some(&tag) || l.len() != 2 {
        return Err(ProtocolError(format!("malformed {tag} line")));
    }
    unescape(l[1])
}

fn decode_result_set(lines: &mut Lines, nrows: usize) -> Result<ResultSet, ProtocolError> {
    let header = lines.next()?;
    if header.first() != Some(&"C") {
        return Err(ProtocolError("expected a C column line".into()));
    }
    let ncols = parse_count(header.get(1).unwrap_or(&""), "column")?;
    if header.len() != ncols + 2 {
        return Err(ProtocolError("column line arity mismatch".into()));
    }
    let columns = header[2..]
        .iter()
        .map(|c| unescape(c))
        .collect::<Result<Vec<_>, _>>()?;
    let mut rows = Vec::with_capacity(capped(nrows));
    for _ in 0..nrows {
        let fields = lines.next()?;
        if fields.first() != Some(&"R") || fields.len() != ncols + 1 {
            return Err(ProtocolError("malformed R row line".into()));
        }
        let row = fields[1..]
            .iter()
            .map(|f| decode_value(f))
            .collect::<Result<Vec<_>, _>>()?;
        rows.push(row.into_boxed_slice());
    }
    Ok(ResultSet { columns, rows })
}

// -------------------------------------------------------------- check stats

fn encode_stats(stats: &CheckStats, out: &mut String) {
    let n = &stats.normalization;
    out.push_str(&format!(
        "S\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
        stats.views_total,
        stats.views_skipped,
        stats.views_skipped_relevance,
        stats.views_skipped_residual,
        stats.views_evaluated,
        stats.plans_reused,
        stats.plans_recompiled,
        stats.fallbacks_skipped,
        stats.fallbacks_evaluated,
        stats.check_time.as_nanos(),
        n.dup_ins,
        n.dup_del,
        n.missing_del,
        n.cancelled,
        n.noop_ins,
    ));
}

fn decode_stats(lines: &mut Lines) -> Result<CheckStats, ProtocolError> {
    let fields = lines.next()?;
    if fields.first() != Some(&"S") || fields.len() != 16 {
        return Err(ProtocolError("malformed S stats line".into()));
    }
    let num = |i: usize| parse_count(fields[i], "stats");
    Ok(CheckStats {
        views_total: num(1)?,
        views_skipped: num(2)?,
        views_skipped_relevance: num(3)?,
        views_skipped_residual: num(4)?,
        views_evaluated: num(5)?,
        plans_reused: num(6)?,
        plans_recompiled: num(7)?,
        fallbacks_skipped: num(8)?,
        fallbacks_evaluated: num(9)?,
        check_time: Duration::from_nanos(
            fields[10]
                .parse::<u64>()
                .map_err(|_| ProtocolError("bad check_time".into()))?,
        ),
        normalization: NormalizationReport {
            dup_ins: num(11)?,
            dup_del: num(12)?,
            missing_del: num(13)?,
            cancelled: num(14)?,
            noop_ins: num(15)?,
        },
    })
}

// ----------------------------------------------------------------- outcomes

fn encode_outcome(o: &StatementOutcome, out: &mut String) {
    match o {
        StatementOutcome::Ddl => out.push_str("DDL\n"),
        StatementOutcome::AssertionInstalled {
            name,
            views,
            warnings,
        } => {
            out.push_str(&format!(
                "INSTALLED\t{views}\t{}\t{}\n",
                warnings.len(),
                escape(name)
            ));
            for w in warnings {
                out.push_str(&format!("W\t{}\n", escape(w)));
            }
        }
        StatementOutcome::Explain(e) => {
            out.push_str(&format!(
                "EXPLAIN\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                escape(&e.name),
                e.class,
                e.denial_count,
                e.edc_count,
                e.edc_pruned,
                e.prune_reasons.len(),
                e.views.len(),
                e.warnings.len(),
            ));
            for p in &e.prune_reasons {
                out.push_str(&format!("P\t{}\n", escape(p)));
            }
            for v in &e.views {
                out.push_str(&format!(
                    "X\t{}\t{}\t{}\n",
                    escape(&v.name),
                    v.gate.len(),
                    v.residual.len()
                ));
                for (is_ins, table) in &v.gate {
                    out.push_str(&format!(
                        "G\t{}\t{}\n",
                        if *is_ins { 1 } else { 0 },
                        escape(table)
                    ));
                }
                for r in &v.residual {
                    out.push_str(&format!("D\t{}\n", escape(r)));
                }
            }
            for w in &e.warnings {
                out.push_str(&format!("W\t{}\n", escape(w)));
            }
        }
        StatementOutcome::AssertionDropped { name } => {
            out.push_str(&format!("DROPPED\t{}\n", escape(name)));
        }
        StatementOutcome::RowsAffected(n) => out.push_str(&format!("AFFECTED\t{n}\n")),
        StatementOutcome::Rows(rs) => {
            out.push_str(&format!("ROWS\t{}\n", rs.rows.len()));
            encode_result_set(rs, out);
        }
        StatementOutcome::TransactionStarted => out.push_str("BEGIN\n"),
        StatementOutcome::SavepointCreated(n) => {
            out.push_str(&format!("SAVEPOINT\t{}\n", escape(n)));
        }
        StatementOutcome::SavepointReleased(n) => {
            out.push_str(&format!("RELEASED\t{}\n", escape(n)));
        }
        StatementOutcome::RolledBackToSavepoint(n) => {
            out.push_str(&format!("ROLLED_BACK_TO\t{}\n", escape(n)));
        }
        StatementOutcome::RolledBack => out.push_str("ROLLED_BACK\n"),
        StatementOutcome::Committed {
            inserted,
            deleted,
            stats,
        } => {
            out.push_str(&format!("COMMITTED\t{inserted}\t{deleted}\n"));
            encode_stats(stats, out);
        }
        StatementOutcome::Rejected { violations, stats } => {
            out.push_str(&format!("REJECTED\t{}\n", violations.len()));
            encode_stats(stats, out);
            for v in violations {
                out.push_str(&format!(
                    "V\t{}\t{}\t{}\n",
                    escape(&v.assertion),
                    escape(&v.view),
                    v.rows.rows.len()
                ));
                encode_result_set(&v.rows, out);
            }
        }
    }
}

fn decode_outcome(lines: &mut Lines) -> Result<StatementOutcome, ProtocolError> {
    let fields = lines.next()?;
    let field = |i: usize| -> Result<&str, ProtocolError> {
        fields
            .get(i)
            .copied()
            .ok_or_else(|| ProtocolError("outcome line too short".into()))
    };
    match field(0)? {
        "DDL" => Ok(StatementOutcome::Ddl),
        "INSTALLED" => {
            let views = parse_count(field(1)?, "view")?;
            let nwarnings = parse_count(field(2)?, "warning")?;
            let name = unescape(field(3)?)?;
            let mut warnings = Vec::with_capacity(capped(nwarnings));
            for _ in 0..nwarnings {
                warnings.push(decode_tagged(lines, "W")?);
            }
            Ok(StatementOutcome::AssertionInstalled {
                name,
                views,
                warnings,
            })
        }
        "EXPLAIN" => {
            let name = unescape(field(1)?)?;
            let class = AssertionClass::parse(field(2)?)
                .ok_or_else(|| ProtocolError(format!("unknown assertion class '{}'", fields[2])))?;
            let denial_count = parse_count(field(3)?, "denial")?;
            let edc_count = parse_count(field(4)?, "edc")?;
            let edc_pruned = parse_count(field(5)?, "pruned edc")?;
            let nreasons = parse_count(field(6)?, "prune reason")?;
            let nviews = parse_count(field(7)?, "view")?;
            let nwarnings = parse_count(field(8)?, "warning")?;
            let mut prune_reasons = Vec::with_capacity(capped(nreasons));
            for _ in 0..nreasons {
                prune_reasons.push(decode_tagged(lines, "P")?);
            }
            let mut views = Vec::with_capacity(capped(nviews));
            for _ in 0..nviews {
                let x = lines.next()?;
                if x.first() != Some(&"X") || x.len() != 4 {
                    return Err(ProtocolError("malformed X view line".into()));
                }
                let vname = unescape(x[1])?;
                let ngate = parse_count(x[2], "gate")?;
                let nresidual = parse_count(x[3], "residual")?;
                let mut gate = Vec::with_capacity(capped(ngate));
                for _ in 0..ngate {
                    let g = lines.next()?;
                    if g.first() != Some(&"G") || g.len() != 3 {
                        return Err(ProtocolError("malformed G gate line".into()));
                    }
                    let is_ins = match g[1] {
                        "1" => true,
                        "0" => false,
                        _ => return Err(ProtocolError("malformed G gate flag".into())),
                    };
                    gate.push((is_ins, unescape(g[2])?));
                }
                let mut residual = Vec::with_capacity(capped(nresidual));
                for _ in 0..nresidual {
                    residual.push(decode_tagged(lines, "D")?);
                }
                views.push(ViewExplain {
                    name: vname,
                    gate,
                    residual,
                });
            }
            let mut warnings = Vec::with_capacity(capped(nwarnings));
            for _ in 0..nwarnings {
                warnings.push(decode_tagged(lines, "W")?);
            }
            Ok(StatementOutcome::Explain(Box::new(AssertionExplain {
                name,
                class,
                denial_count,
                edc_count,
                edc_pruned,
                prune_reasons,
                views,
                warnings,
            })))
        }
        "DROPPED" => Ok(StatementOutcome::AssertionDropped {
            name: unescape(field(1)?)?,
        }),
        "AFFECTED" => Ok(StatementOutcome::RowsAffected(parse_count(
            field(1)?,
            "row",
        )?)),
        "ROWS" => {
            let nrows = parse_count(field(1)?, "row")?;
            Ok(StatementOutcome::Rows(decode_result_set(lines, nrows)?))
        }
        "BEGIN" => Ok(StatementOutcome::TransactionStarted),
        "SAVEPOINT" => Ok(StatementOutcome::SavepointCreated(unescape(field(1)?)?)),
        "RELEASED" => Ok(StatementOutcome::SavepointReleased(unescape(field(1)?)?)),
        "ROLLED_BACK_TO" => Ok(StatementOutcome::RolledBackToSavepoint(unescape(field(
            1,
        )?)?)),
        "ROLLED_BACK" => Ok(StatementOutcome::RolledBack),
        "COMMITTED" => {
            let inserted = parse_count(field(1)?, "inserted")?;
            let deleted = parse_count(field(2)?, "deleted")?;
            let stats = decode_stats(lines)?;
            Ok(StatementOutcome::Committed {
                inserted,
                deleted,
                stats,
            })
        }
        "REJECTED" => {
            let nviolations = parse_count(field(1)?, "violation")?;
            let stats = decode_stats(lines)?;
            let mut violations = Vec::with_capacity(capped(nviolations));
            for _ in 0..nviolations {
                let v = lines.next()?;
                if v.first() != Some(&"V") || v.len() != 4 {
                    return Err(ProtocolError("malformed V violation line".into()));
                }
                let assertion = unescape(v[1])?;
                let view = unescape(v[2])?;
                let nrows = parse_count(v[3], "violation row")?;
                let rows = decode_result_set(lines, nrows)?;
                violations.push(Violation {
                    assertion,
                    view,
                    rows,
                });
            }
            Ok(StatementOutcome::Rejected { violations, stats })
        }
        tag => Err(ProtocolError(format!("unknown outcome tag '{tag}'"))),
    }
}

// ------------------------------------------------------------------ errors

fn encode_error(e: &WireError, out: &mut String) {
    let line = match e {
        WireError::Parse(m) => format!("E\tPARSE\t{}", escape(m)),
        WireError::Engine(m) => format!("E\tENGINE\t{}", escape(m)),
        WireError::Tintin(m) => format!("E\tTINTIN\t{}", escape(m)),
        WireError::NoActiveTransaction => "E\tNO_TX".into(),
        WireError::TransactionAlreadyOpen => "E\tTX_OPEN".into(),
        WireError::NoSuchSavepoint(n) => format!("E\tNO_SAVEPOINT\t{}", escape(n)),
        WireError::DdlInTransaction(k) => format!("E\tDDL_IN_TX\t{}", escape(k)),
        WireError::DuplicateAssertion(n) => format!("E\tDUP_ASSERTION\t{}", escape(n)),
        WireError::NoSuchAssertion(n) => format!("E\tNO_ASSERTION\t{}", escape(n)),
        WireError::SerializationConflict { table, detail } => {
            format!("E\tCONFLICT\t{}\t{}", escape(table), escape(detail))
        }
        WireError::Server(m) => format!("E\tSERVER\t{}", escape(m)),
    };
    out.push_str(&line);
    out.push('\n');
}

fn decode_error(fields: &[&str]) -> Result<WireError, ProtocolError> {
    let field = |i: usize| -> Result<String, ProtocolError> {
        fields
            .get(i)
            .copied()
            .map(unescape)
            .ok_or_else(|| ProtocolError("error line too short".into()))?
    };
    match fields.get(1).copied().unwrap_or_default() {
        "PARSE" => Ok(WireError::Parse(field(2)?)),
        "ENGINE" => Ok(WireError::Engine(field(2)?)),
        "TINTIN" => Ok(WireError::Tintin(field(2)?)),
        "NO_TX" => Ok(WireError::NoActiveTransaction),
        "TX_OPEN" => Ok(WireError::TransactionAlreadyOpen),
        "NO_SAVEPOINT" => Ok(WireError::NoSuchSavepoint(field(2)?)),
        "DDL_IN_TX" => Ok(WireError::DdlInTransaction(field(2)?)),
        "DUP_ASSERTION" => Ok(WireError::DuplicateAssertion(field(2)?)),
        "NO_ASSERTION" => Ok(WireError::NoSuchAssertion(field(2)?)),
        "CONFLICT" => Ok(WireError::SerializationConflict {
            table: field(2)?,
            detail: field(3)?,
        }),
        "SERVER" => Ok(WireError::Server(field(2)?)),
        code => Err(ProtocolError(format!("unknown error code '{code}'"))),
    }
}

// ---------------------------------------------------------------- responses

/// Encode a response payload: the outcomes of a fully successful script, or
/// a [`WireScriptError`] with the partial outcomes that preceded the
/// failure.
pub fn encode_response(result: &WireResult) -> String {
    let mut out = String::new();
    match result {
        Ok(outcomes) => {
            out.push_str(&format!("OK\t{}\n", outcomes.len()));
            for o in outcomes {
                encode_outcome(o, &mut out);
            }
        }
        Err(e) => {
            out.push_str(&format!(
                "ERR\t{}\t{}\t{}\n",
                e.statement_index,
                escape(&e.statement),
                e.completed.len()
            ));
            for o in &e.completed {
                encode_outcome(o, &mut out);
            }
            encode_error(&e.error, &mut out);
        }
    }
    out
}

/// Decode a response payload produced by [`encode_response`].
pub fn decode_response(payload: &str) -> Result<WireResult, ProtocolError> {
    let mut lines = Lines {
        lines: payload.lines(),
    };
    let status = lines.next()?;
    match status.first().copied() {
        Some("OK") => {
            let n = parse_count(status.get(1).unwrap_or(&""), "outcome")?;
            let mut outcomes = Vec::with_capacity(capped(n));
            for _ in 0..n {
                outcomes.push(decode_outcome(&mut lines)?);
            }
            Ok(Ok(outcomes))
        }
        Some("ERR") => {
            if status.len() != 4 {
                return Err(ProtocolError("malformed ERR line".into()));
            }
            let statement_index = parse_count(status[1], "statement index")?;
            let statement = unescape(status[2])?;
            let n = parse_count(status[3], "outcome")?;
            let mut completed = Vec::with_capacity(capped(n));
            for _ in 0..n {
                completed.push(decode_outcome(&mut lines)?);
            }
            let error = decode_error(&lines.next()?)?;
            Ok(Err(WireScriptError {
                completed,
                statement_index,
                statement,
                error,
            }))
        }
        _ => Err(ProtocolError("response must start with OK or ERR".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(r: &WireResult) -> WireResult {
        decode_response(&encode_response(r)).expect("decode")
    }

    fn sample_rows() -> ResultSet {
        ResultSet {
            columns: vec!["a".into(), "weird\tname".into()],
            rows: vec![
                vec![Value::Int(-7), Value::str("tab\there\nand newline")].into_boxed_slice(),
                vec![Value::Null, Value::real(2.5e-300)].into_boxed_slice(),
            ],
        }
    }

    fn assert_rows_eq(a: &ResultSet, b: &ResultSet) {
        assert_eq!(a.columns, b.columns);
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "first payload").unwrap();
        write_frame(&mut buf, "").unwrap();
        write_frame(&mut buf, "päyload — non-ASCII ✓").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some("first payload")
        );
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some("päyload — non-ASCII ✓")
        );
        // Clean EOF between frames.
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn truncated_frame_is_an_error_not_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "cut me").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn truncated_length_prefix_is_an_error_not_eof() {
        // EOF after 1–3 prefix bytes is a torn frame, not a clean close.
        for n in 1..4usize {
            let mut r = io::Cursor::new(vec![0u8; n]);
            assert!(
                read_frame(&mut r).is_err(),
                "{n}-byte prefix must be a torn-frame error"
            );
        }
        // EOF at byte 0 is the clean close.
        let mut r = io::Cursor::new(Vec::<u8>::new());
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn script_error_statement_renders_one_truncated_line() {
        let e = WireScriptError {
            completed: Vec::new(),
            statement_index: 0,
            statement: format!("INSERT INTO t\nVALUES {}", "(1, 2), ".repeat(30)),
            error: WireError::NoActiveTransaction,
        };
        let rendered = e.to_string();
        let line = rendered.lines().next().unwrap();
        assert_eq!(rendered, line, "must render on one line");
        assert!(rendered.contains("..."), "long statement must be elided");
        assert!(rendered.len() < 200, "got {rendered:?}");
    }

    #[test]
    fn oversized_frame_announcement_is_rejected_before_allocating() {
        let mut buf = Vec::from((u32::MAX).to_be_bytes());
        buf.extend_from_slice(b"tiny");
        let mut r = io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn simple_outcomes_roundtrip() {
        let outcomes = vec![
            StatementOutcome::Ddl,
            StatementOutcome::AssertionInstalled {
                name: "atLeastOne".into(),
                views: 3,
                warnings: vec!["assertion 'atLeastOne' is tautological: nothing to check".into()],
            },
            StatementOutcome::AssertionDropped {
                name: "atLeastOne".into(),
            },
            StatementOutcome::RowsAffected(42),
            StatementOutcome::TransactionStarted,
            StatementOutcome::SavepointCreated("sp one".into()),
            StatementOutcome::SavepointReleased("sp one".into()),
            StatementOutcome::RolledBackToSavepoint("sp one".into()),
            StatementOutcome::RolledBack,
        ];
        let decoded = roundtrip(&Ok(outcomes)).unwrap();
        assert_eq!(decoded.len(), 9);
        assert!(matches!(
            &decoded[1],
            StatementOutcome::AssertionInstalled { name, views: 3, warnings }
                if name == "atLeastOne"
                    && warnings == &["assertion 'atLeastOne' is tautological: nothing to check"]
        ));
        assert!(matches!(
            &decoded[5],
            StatementOutcome::SavepointCreated(n) if n == "sp one"
        ));
    }

    #[test]
    fn result_rows_roundtrip_with_exact_values() {
        let decoded = roundtrip(&Ok(vec![StatementOutcome::Rows(sample_rows())])).unwrap();
        let StatementOutcome::Rows(rs) = &decoded[0] else {
            panic!("expected rows");
        };
        assert_rows_eq(rs, &sample_rows());
    }

    #[test]
    fn committed_roundtrips_with_stats() {
        let stats = CheckStats {
            views_total: 5,
            views_skipped: 3,
            views_skipped_relevance: 2,
            views_skipped_residual: 1,
            views_evaluated: 2,
            plans_reused: 2,
            plans_recompiled: 1,
            fallbacks_skipped: 1,
            fallbacks_evaluated: 1,
            check_time: Duration::from_micros(1234),
            normalization: NormalizationReport {
                dup_ins: 1,
                dup_del: 2,
                missing_del: 3,
                cancelled: 4,
                noop_ins: 5,
            },
        };
        let decoded = roundtrip(&Ok(vec![StatementOutcome::Committed {
            inserted: 10,
            deleted: 2,
            stats,
        }]))
        .unwrap();
        let StatementOutcome::Committed {
            inserted,
            deleted,
            stats,
        } = &decoded[0]
        else {
            panic!("expected committed");
        };
        assert_eq!((*inserted, *deleted), (10, 2));
        assert_eq!(stats.views_evaluated, 2);
        assert_eq!(stats.views_skipped_residual, 1);
        assert_eq!(stats.check_time, Duration::from_micros(1234));
        assert_eq!(stats.normalization.total(), 1 + 2 + 3 + 2 * 4 + 5);
    }

    #[test]
    fn explain_roundtrips_with_full_report() {
        let explain = AssertionExplain {
            name: "non neg".into(),
            class: AssertionClass::PartiallyPruned,
            denial_count: 2,
            edc_count: 3,
            edc_pruned: 1,
            prune_reasons: vec!["interval: a < 0 and a > 10 [body\twith tab]".into()],
            views: vec![
                ViewExplain {
                    name: "vio_ins_t_1".into(),
                    gate: vec![(true, "t".into()), (false, "u".into())],
                    residual: vec!["ins_t where a < 0".into()],
                },
                ViewExplain {
                    name: "vio_del_u_1".into(),
                    gate: vec![(false, "u".into())],
                    residual: vec![],
                },
            ],
            warnings: vec!["one event rule pruned".into()],
        };
        let decoded = roundtrip(&Ok(vec![StatementOutcome::Explain(Box::new(
            explain.clone(),
        ))]))
        .unwrap();
        let StatementOutcome::Explain(got) = &decoded[0] else {
            panic!("expected explain");
        };
        assert_eq!(**got, explain);
    }

    #[test]
    fn explain_with_empty_report_roundtrips() {
        let explain = AssertionExplain {
            name: "taut".into(),
            class: AssertionClass::Tautological,
            denial_count: 1,
            edc_count: 0,
            edc_pruned: 2,
            prune_reasons: vec![],
            views: vec![],
            warnings: vec![],
        };
        let decoded = roundtrip(&Ok(vec![StatementOutcome::Explain(Box::new(
            explain.clone(),
        ))]))
        .unwrap();
        let StatementOutcome::Explain(got) = &decoded[0] else {
            panic!("expected explain");
        };
        assert_eq!(**got, explain);
    }

    #[test]
    fn rejection_roundtrips_with_violation_payload() {
        let violation = Violation {
            assertion: "atleastonelineitem".into(),
            view: "vio_ins_orders_1".into(),
            rows: sample_rows(),
        };
        let decoded = roundtrip(&Ok(vec![StatementOutcome::Rejected {
            violations: vec![violation],
            stats: CheckStats::default(),
        }]))
        .unwrap();
        let StatementOutcome::Rejected { violations, .. } = &decoded[0] else {
            panic!("expected rejection");
        };
        assert_eq!(violations[0].assertion, "atleastonelineitem");
        assert_eq!(violations[0].view, "vio_ins_orders_1");
        assert_rows_eq(&violations[0].rows, &sample_rows());
    }

    #[test]
    fn script_errors_roundtrip_typed_with_partial_outcomes() {
        let cases = vec![
            WireError::Parse("unexpected token".into()),
            WireError::Engine("no such table: 'x'".into()),
            WireError::NoActiveTransaction,
            WireError::TransactionAlreadyOpen,
            WireError::NoSuchSavepoint("sp".into()),
            WireError::DdlInTransaction("CREATE UNIQUE INDEX".into()),
            WireError::DuplicateAssertion("a1".into()),
            WireError::NoSuchAssertion("a2".into()),
            WireError::SerializationConflict {
                table: "orders".into(),
                detail: "a row this transaction deletes\twas removed".into(),
            },
            WireError::Server("connection limit reached".into()),
        ];
        for error in cases {
            let sent = WireScriptError {
                completed: vec![StatementOutcome::TransactionStarted, StatementOutcome::Ddl],
                statement_index: 2,
                statement: "COMMIT".into(),
                error: error.clone(),
            };
            let decoded = roundtrip(&Err(sent)).unwrap_err();
            assert_eq!(decoded.error, error);
            assert_eq!(decoded.statement_index, 2);
            assert_eq!(decoded.statement, "COMMIT");
            assert_eq!(decoded.completed.len(), 2);
            assert!(matches!(
                decoded.completed[0],
                StatementOutcome::TransactionStarted
            ));
        }
    }

    #[test]
    fn conflict_error_is_recognizable_for_retry() {
        assert!(WireError::SerializationConflict {
            table: "t".into(),
            detail: "raced".into()
        }
        .is_serialization_conflict());
        assert!(!WireError::NoActiveTransaction.is_serialization_conflict());
    }

    #[test]
    fn hostile_counts_do_not_preallocate() {
        // A 30-byte payload claiming 2^60 rows must fail cleanly (lines
        // run out) without the capacity hint allocating anything first.
        let bad = format!("OK\t1\nROWS\t{}\nC\t0", 1u64 << 60);
        assert!(decode_response(&bad).is_err());
        let bad = format!("OK\t{}\nDDL", 1u64 << 60);
        assert!(decode_response(&bad).is_err());
    }

    #[test]
    fn stats_request_is_recognized_loosely() {
        assert!(is_stats_request("STATS"));
        assert!(is_stats_request("  stats \n"));
        assert!(!is_stats_request("STATS;"));
        assert!(!is_stats_request("SELECT * FROM stats"));
    }

    #[test]
    fn stats_response_roundtrips() {
        let registry = tintin_obs::Registry::new();
        registry.counter("tintin_commits_total").add(17);
        registry.gauge("tintin_sessions_open").set(-2);
        let h = registry.histogram("tintin_commit_seconds");
        h.record(Duration::from_nanos(0));
        h.record(Duration::from_micros(10));
        h.record(Duration::from_micros(10));
        h.record(Duration::from_millis(3));
        let sent = ServerStats {
            metrics: registry.snapshot(),
            mvcc: MvccStats {
                commit_ts: 42,
                live_versions: 1000,
                dead_versions: 50,
                gc_runs: 3,
                gc_pruned: 120,
            },
        };
        let decoded = decode_stats_response(&encode_stats_response(&sent)).expect("decode");
        assert_eq!(decoded, sent);
        // Quantiles survive the wire (buckets carried exactly).
        let hist = decoded.metrics.histogram("tintin_commit_seconds").unwrap();
        assert_eq!(hist.count, 4);
        assert!(hist.quantile(0.5) <= hist.quantile(0.999));
    }

    #[test]
    fn empty_stats_response_roundtrips() {
        let sent = ServerStats::default();
        let decoded = decode_stats_response(&encode_stats_response(&sent)).expect("decode");
        assert_eq!(decoded, sent);
    }

    #[test]
    fn garbage_stats_payloads_are_protocol_errors() {
        for bad in [
            "",
            "OK\t0",
            "STATS\tx",
            "STATS\t1\nMX\tname\t1\nMV\t0\t0\t0\t0\t0",
            "STATS\t1\nMC\tname\tnot-a-number\nMV\t0\t0\t0\t0\t0",
            "STATS\t1\nMH\tname\t1\t5\tbadpair\nMV\t0\t0\t0\t0\t0",
            "STATS\t0\nMV\t0\t0\t0",
            "STATS\t0",
        ] {
            assert!(
                decode_stats_response(bad).is_err(),
                "payload {bad:?} must not decode"
            );
        }
    }

    #[test]
    fn garbage_payloads_are_protocol_errors() {
        for bad in [
            "",
            "NOPE\t1",
            "OK\tnot-a-number",
            "OK\t1\nUNKNOWN_TAG",
            "OK\t1\nROWS\t1\nC\t1\ta\nR\tzz",
            "ERR\t0\t\t0\nE\tWHAT",
        ] {
            assert!(
                decode_response(bad).is_err(),
                "payload {bad:?} must not decode"
            );
        }
    }
}
