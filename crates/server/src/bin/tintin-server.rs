//! `tintin-server` — serve a TINTIN database over TCP.
//!
//! ```text
//! tintin-server [--listen HOST:PORT] [--max-connections N] [--init FILE]
//!               [--data-dir DIR] [--no-fsync] [--checkpoint-bytes N]
//!               [--slow-commit-ms N] [--log LEVEL]
//! ```
//!
//! * `--listen` — bind address (default `127.0.0.1:7878`);
//! * `--max-connections` — admission limit (default 64); connections over
//!   the limit receive a typed error and are closed;
//! * `--data-dir` — open (or create) a durable database in `DIR`:
//!   commits are write-ahead logged and group-fsynced before they are
//!   acknowledged, and on startup the directory is recovered — checkpoint
//!   loaded, log tail replayed to the last complete record, recovered
//!   state re-verified against every installed assertion. Without it the
//!   database is in-memory and dies with the process;
//! * `--no-fsync` — with `--data-dir`, acknowledge commits without
//!   waiting for `fdatasync` (faster; a crash may lose the unsynced tail);
//! * `--checkpoint-bytes` — with `--data-dir`, checkpoint and rotate the
//!   log whenever it exceeds N bytes (default: never automatically);
//! * `--init` — a SQL script (schema, assertions, seed data) executed
//!   through an in-process session before the listener opens (with
//!   `--data-dir` it runs on the *recovered* state — make init scripts
//!   idempotent, e.g. guard with `DROP`-free re-runnable DDL or run once
//!   on an empty directory);
//! * `--slow-commit-ms` — log any commit slower than this many
//!   milliseconds at WARN with its per-phase breakdown (`0` disables;
//!   default: the `TINTIN_SLOW_COMMIT_MS` environment variable);
//! * `--log` — stderr log level (`off|error|warn|info|debug`; the
//!   `TINTIN_LOG` environment variable overrides, default `info`).
//!
//! Every TCP connection gets its own session over the one shared database:
//! assertions installed by any client bind them all, and commits are
//! checked by `safeCommit` exactly as in-process sessions are. Clients can
//! send the `STATS` command for a full metrics snapshot (commit-phase
//! latency histograms, WAL/recovery counters, connection and MVCC/GC
//! counters). Stop with SIGINT/SIGTERM — without `--data-dir` state is
//! in-memory and there is nothing to flush; with it, every acknowledged
//! commit is already durable, so a kill at any instant recovers to exactly
//! the acknowledged prefix on the next start.

use std::process::exit;
use std::time::Duration;
use tintin_obs::{log_error, log_info, Level};
use tintin_server::{ServerConfig, WireServer};
use tintin_session::{DurabilityOptions, Server};

fn usage() -> ! {
    eprintln!(
        "usage: tintin-server [--listen HOST:PORT] [--max-connections N] [--init FILE] \
         [--data-dir DIR] [--no-fsync] [--checkpoint-bytes N] \
         [--slow-commit-ms N] [--log LEVEL]"
    );
    exit(2);
}

fn main() {
    let mut listen = "127.0.0.1:7878".to_string();
    let mut config = ServerConfig::default();
    let mut init: Option<String> = None;
    let mut data_dir: Option<String> = None;
    let mut fsync = true;
    let mut checkpoint_bytes: Option<u64> = None;
    let mut slow_commit_ms: Option<u64> = None;
    let mut log_level = Level::Info;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = args.next().unwrap_or_else(|| usage()),
            "--max-connections" => {
                config.max_connections = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--init" => init = Some(args.next().unwrap_or_else(|| usage())),
            "--data-dir" => data_dir = Some(args.next().unwrap_or_else(|| usage())),
            "--no-fsync" => fsync = false,
            "--checkpoint-bytes" => {
                checkpoint_bytes = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--slow-commit-ms" => {
                slow_commit_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--log" => {
                log_level = args
                    .next()
                    .as_deref()
                    .and_then(Level::parse)
                    .unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    // TINTIN_LOG (when set and valid) wins over --log.
    tintin_obs::logger::init_logger(log_level);

    let sessions = match &data_dir {
        Some(dir) => {
            let opts = DurabilityOptions {
                fsync,
                checkpoint_bytes,
                ..DurabilityOptions::default()
            };
            // Server::open_with logs the recovery summary (recovered LSN,
            // commits replayed, tail bytes truncated) at INFO.
            match Server::open_with(dir, &opts) {
                Ok(s) => s,
                Err(e) => {
                    log_error!("tintin_server", "cannot open --data-dir {dir}: {e}");
                    exit(1);
                }
            }
        }
        None => Server::new(),
    };
    if let Some(ms) = slow_commit_ms {
        // The flag overrides the TINTIN_SLOW_COMMIT_MS default the server
        // constructor read; 0 disables.
        sessions.set_slow_commit_threshold((ms > 0).then(|| Duration::from_millis(ms)));
    }
    if let Some(path) = init {
        let script = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                log_error!("tintin_server", "cannot read --init {path}: {e}");
                exit(1);
            }
        };
        let mut session = sessions.connect();
        match session.execute(&script) {
            Ok(outcomes) => {
                log_info!(
                    "tintin_server",
                    "init script ran {} statement(s) from {path}",
                    outcomes.len()
                );
            }
            Err(e) => {
                log_error!("tintin_server", "init script failed: {e}");
                exit(1);
            }
        }
    }

    // WireServer::bind logs the listening line at INFO.
    let _wire = match WireServer::bind(sessions, listen.as_str(), config) {
        Ok(w) => w,
        Err(e) => {
            log_error!("tintin_server", "cannot listen on {listen}: {e}");
            exit(1);
        }
    };
    // The accept loop runs on its own thread; park this one forever.
    // Termination by signal loses nothing that surviving it would have
    // kept: in-memory state dies with the process by design, and durable
    // state (--data-dir) is write-ahead logged before every ack, so the
    // next start recovers exactly the acknowledged prefix.
    loop {
        std::thread::park();
    }
}
