//! `tintin-server` — serve a TINTIN database over TCP.
//!
//! ```text
//! tintin-server [--listen HOST:PORT] [--max-connections N] [--init FILE]
//! ```
//!
//! * `--listen` — bind address (default `127.0.0.1:7878`);
//! * `--max-connections` — admission limit (default 64); connections over
//!   the limit receive a typed error and are closed;
//! * `--init` — a SQL script (schema, assertions, seed data) executed
//!   through an in-process session before the listener opens.
//!
//! Every TCP connection gets its own session over the one shared database:
//! assertions installed by any client bind them all, and commits are
//! checked by `safeCommit` exactly as in-process sessions are. Stop with
//! SIGINT/SIGTERM (state is in-memory; there is nothing to flush).

use std::process::exit;
use tintin_server::{ServerConfig, WireServer};
use tintin_session::Server;

fn usage() -> ! {
    eprintln!("usage: tintin-server [--listen HOST:PORT] [--max-connections N] [--init FILE]");
    exit(2);
}

fn main() {
    let mut listen = "127.0.0.1:7878".to_string();
    let mut config = ServerConfig::default();
    let mut init: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = args.next().unwrap_or_else(|| usage()),
            "--max-connections" => {
                config.max_connections = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--init" => init = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let sessions = Server::new();
    if let Some(path) = init {
        let script = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("tintin-server: cannot read --init {path}: {e}");
                exit(1);
            }
        };
        let mut session = sessions.connect();
        match session.execute(&script) {
            Ok(outcomes) => {
                eprintln!(
                    "tintin-server: init script ran {} statement(s) from {path}",
                    outcomes.len()
                );
            }
            Err(e) => {
                eprintln!("tintin-server: init script failed: {e}");
                exit(1);
            }
        }
    }

    let wire = match WireServer::bind(sessions, listen.as_str(), config) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("tintin-server: cannot listen on {listen}: {e}");
            exit(1);
        }
    };
    eprintln!("tintin-server: listening on {}", wire.local_addr());
    // The accept loop runs on its own thread; park this one forever. The
    // database is in-memory, so termination by signal loses nothing that
    // surviving the signal would have kept.
    loop {
        std::thread::park();
    }
}
