//! Seeded round-trip fuzzing of the wire codec.
//!
//! Randomly generated [`StatementOutcome`] lists, [`WireScriptError`]s
//! (every [`WireError`] variant), and `STATS` payloads (`MC`/`MG`/`MH`
//! metric lines plus the `MV` MVCC line) must survive
//! `encode → decode → encode` byte-identically — strings are drawn from a
//! pool that includes tabs, newlines, carriage returns, backslashes, and
//! multi-byte UTF-8 precisely because those stress the escaping layer.
//! Random garbage payloads must be rejected with a typed
//! [`ProtocolError`], never a panic. Deterministic: fixed seeds, no
//! time/randomness outside the shim's xoshiro stream.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use tintin::{AssertionClass, AssertionExplain, CheckStats, ViewExplain, Violation};
use tintin_engine::{MvccStats, ResultSet, Value};
use tintin_obs::{HistogramSnapshot, Sample, SampleValue, Snapshot};
use tintin_server::protocol::{
    decode_response, decode_stats_response, encode_response, encode_stats_response, ServerStats,
    WireError, WireResult, WireScriptError,
};
use tintin_session::StatementOutcome;

/// Characters chosen to stress the escape layer: field and line
/// separators, the escape character itself, and multi-byte UTF-8.
const POOL: &[char] = &[
    'a', 'Z', '0', ' ', '\t', '\n', '\r', '\\', ':', ';', ',', '\'', '"', 'é', '∑', '表', '🦀',
];

fn rand_string(rng: &mut StdRng) -> String {
    let n = rng.gen_range(0..12usize);
    (0..n).map(|_| POOL[rng.gen_range(0..POOL.len())]).collect()
}

fn rand_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..4u8) {
        0 => Value::Null,
        1 => Value::Int(rng.next_u64() as i64),
        // Finite, sign- and magnitude-diverse reals (the codec must keep
        // them bit-exact through the decimal rendering).
        2 => Value::real((rng.next_u64() as i64 as f64) / 1e3),
        _ => Value::str(rand_string(rng)),
    }
}

fn rand_result_set(rng: &mut StdRng) -> ResultSet {
    let cols = rng.gen_range(1..4usize);
    let rows = rng.gen_range(0..4usize);
    ResultSet {
        columns: (0..cols).map(|_| rand_string(rng)).collect(),
        rows: (0..rows)
            .map(|_| {
                (0..cols)
                    .map(|_| rand_value(rng))
                    .collect::<Vec<_>>()
                    .into_boxed_slice()
            })
            .collect(),
    }
}

fn rand_stats(rng: &mut StdRng) -> CheckStats {
    CheckStats {
        views_total: rng.gen_range(0..100usize),
        views_skipped: rng.gen_range(0..100usize),
        views_skipped_relevance: rng.gen_range(0..100usize),
        views_skipped_residual: rng.gen_range(0..100usize),
        views_evaluated: rng.gen_range(0..100usize),
        plans_reused: rng.gen_range(0..100usize),
        plans_recompiled: rng.gen_range(0..100usize),
        fallbacks_skipped: rng.gen_range(0..100usize),
        fallbacks_evaluated: rng.gen_range(0..100usize),
        check_time: Duration::from_nanos(rng.next_u64() >> 20),
        ..CheckStats::default()
    }
}

fn rand_explain(rng: &mut StdRng) -> AssertionExplain {
    let classes = [
        AssertionClass::Normal,
        AssertionClass::PartiallyPruned,
        AssertionClass::NeverFires,
        AssertionClass::Tautological,
        AssertionClass::AggregateFallback,
    ];
    AssertionExplain {
        name: rand_string(rng),
        class: classes[rng.gen_range(0..classes.len())],
        denial_count: rng.gen_range(0..9usize),
        edc_count: rng.gen_range(0..9usize),
        edc_pruned: rng.gen_range(0..9usize),
        prune_reasons: (0..rng.gen_range(0..3usize))
            .map(|_| rand_string(rng))
            .collect(),
        views: (0..rng.gen_range(0..3usize))
            .map(|_| ViewExplain {
                name: rand_string(rng),
                gate: (0..rng.gen_range(0..3usize))
                    .map(|_| (rng.gen_bool(0.5), rand_string(rng)))
                    .collect(),
                residual: (0..rng.gen_range(0..3usize))
                    .map(|_| rand_string(rng))
                    .collect(),
            })
            .collect(),
        warnings: (0..rng.gen_range(0..2usize))
            .map(|_| rand_string(rng))
            .collect(),
    }
}

fn rand_outcome(rng: &mut StdRng) -> StatementOutcome {
    match rng.gen_range(0..13u8) {
        0 => StatementOutcome::Ddl,
        1 => StatementOutcome::AssertionInstalled {
            name: rand_string(rng),
            views: rng.gen_range(0..9usize),
            warnings: (0..rng.gen_range(0..3usize))
                .map(|_| rand_string(rng))
                .collect(),
        },
        12 => StatementOutcome::Explain(Box::new(rand_explain(rng))),
        2 => StatementOutcome::AssertionDropped {
            name: rand_string(rng),
        },
        3 => StatementOutcome::RowsAffected(rng.gen_range(0..1000usize)),
        4 => StatementOutcome::Rows(rand_result_set(rng)),
        5 => StatementOutcome::TransactionStarted,
        6 => StatementOutcome::SavepointCreated(rand_string(rng)),
        7 => StatementOutcome::SavepointReleased(rand_string(rng)),
        8 => StatementOutcome::RolledBackToSavepoint(rand_string(rng)),
        9 => StatementOutcome::RolledBack,
        10 => StatementOutcome::Committed {
            inserted: rng.gen_range(0..1000usize),
            deleted: rng.gen_range(0..1000usize),
            stats: rand_stats(rng),
        },
        _ => StatementOutcome::Rejected {
            violations: (0..rng.gen_range(0..3usize))
                .map(|_| Violation {
                    assertion: rand_string(rng),
                    view: rand_string(rng),
                    rows: rand_result_set(rng),
                })
                .collect(),
            stats: rand_stats(rng),
        },
    }
}

fn rand_error(rng: &mut StdRng) -> WireError {
    match rng.gen_range(0..11u8) {
        0 => WireError::Parse(rand_string(rng)),
        1 => WireError::Engine(rand_string(rng)),
        2 => WireError::Tintin(rand_string(rng)),
        3 => WireError::NoActiveTransaction,
        4 => WireError::TransactionAlreadyOpen,
        5 => WireError::NoSuchSavepoint(rand_string(rng)),
        6 => WireError::DdlInTransaction(rand_string(rng)),
        7 => WireError::DuplicateAssertion(rand_string(rng)),
        8 => WireError::NoSuchAssertion(rand_string(rng)),
        9 => WireError::SerializationConflict {
            table: rand_string(rng),
            detail: rand_string(rng),
        },
        _ => WireError::Server(rand_string(rng)),
    }
}

fn rand_result(rng: &mut StdRng) -> WireResult {
    if rng.gen_bool(0.5) {
        Ok((0..rng.gen_range(0..5usize))
            .map(|_| rand_outcome(rng))
            .collect())
    } else {
        Err(WireScriptError {
            completed: (0..rng.gen_range(0..3usize))
                .map(|_| rand_outcome(rng))
                .collect(),
            statement_index: rng.gen_range(0..9usize),
            statement: rand_string(rng),
            error: rand_error(rng),
        })
    }
}

/// `StatementOutcome` carries no `PartialEq` (it holds `ResultSet` /
/// `CheckStats`), so equality is checked on the canonical encoded form:
/// `encode(decode(encode(x))) == encode(x)` proves the decode lost
/// nothing the encoder can express.
#[test]
fn response_roundtrip_is_lossless_under_fuzz() {
    let mut rng = StdRng::seed_from_u64(0xC0DE_C0DE);
    for i in 0..500 {
        let original = rand_result(&mut rng);
        let encoded = encode_response(&original);
        let decoded = decode_response(&encoded)
            .unwrap_or_else(|e| panic!("iteration {i}: decode failed: {e}\npayload: {encoded:?}"));
        let re_encoded = encode_response(&decoded);
        assert_eq!(
            encoded, re_encoded,
            "iteration {i}: encode→decode→encode was not a fixed point"
        );
    }
}

#[test]
fn stats_roundtrip_is_lossless_under_fuzz() {
    let mut rng = StdRng::seed_from_u64(0x57A7_57A7);
    for i in 0..200 {
        let samples = (0..rng.gen_range(0..8usize))
            .map(|_| Sample {
                name: rand_string(&mut rng),
                value: match rng.gen_range(0..3u8) {
                    0 => SampleValue::Counter(rng.next_u64()),
                    1 => SampleValue::Gauge(rng.next_u64() as i64),
                    _ => SampleValue::Histogram(HistogramSnapshot {
                        count: rng.gen_range(0..1000u64),
                        sum_nanos: rng.next_u64() >> 10,
                        buckets: (0..rng.gen_range(0..5u8))
                            .map(|_| (rng.gen_range(0..64u8), rng.gen_range(1..100u64)))
                            .collect(),
                    }),
                },
            })
            .collect();
        let original = ServerStats {
            metrics: Snapshot { samples },
            mvcc: MvccStats {
                commit_ts: rng.next_u64() >> 1,
                live_versions: rng.gen_range(0..100_000usize),
                dead_versions: rng.gen_range(0..100_000usize),
                gc_runs: rng.gen_range(0..1000u64),
                gc_pruned: rng.gen_range(0..100_000u64),
            },
        };
        let encoded = encode_stats_response(&original);
        let decoded = decode_stats_response(&encoded)
            .unwrap_or_else(|e| panic!("iteration {i}: decode failed: {e}\npayload: {encoded:?}"));
        // `ServerStats` is `PartialEq`, so the stats codec gets the
        // stronger structural check on top of the encoded fixed point.
        assert_eq!(
            original, decoded,
            "iteration {i}: stats round-trip diverged"
        );
        assert_eq!(encoded, encode_stats_response(&decoded));
    }
}

/// Random garbage — both arbitrary UTF-8 text and mutations of valid
/// payloads — must come back as `Err(ProtocolError)`, never a panic.
#[test]
fn garbage_payloads_are_rejected_without_panicking() {
    let mut rng = StdRng::seed_from_u64(0xBAD_F00D);
    for _ in 0..500 {
        let garbage = rand_string(&mut rng);
        let _ = decode_response(&garbage);
        let _ = decode_stats_response(&garbage);
    }
    // Structured-looking prefixes with corrupt bodies.
    for prefix in [
        "OK",
        "ERR",
        "STATS",
        "OK\t3\n",
        "ERR\t1\tx\t2\n",
        "STATS\t5\n",
    ] {
        for _ in 0..100 {
            let mut payload = prefix.to_string();
            payload.push_str(&rand_string(&mut rng));
            let _ = decode_response(&payload);
            let _ = decode_stats_response(&payload);
        }
    }
    // Truncations and single-byte mutations of a real payload.
    let valid = encode_response(&rand_result(&mut rng));
    for _ in 0..200 {
        let cut = rng.gen_range(0..=valid.len());
        if valid.is_char_boundary(cut) {
            let _ = decode_response(&valid[..cut]);
        }
        let pos = rng.gen_range(0..valid.len());
        if valid.is_char_boundary(pos) && valid.is_char_boundary(pos + 1) {
            let mut mutated = valid.clone();
            let replacement = POOL[rng.gen_range(0..POOL.len())];
            mutated.replace_range(pos..pos + 1, &replacement.to_string());
            let _ = decode_response(&mutated);
        }
    }
}
