//! `tintin-wal` — durability for TINTIN: an append-only, CRC32-framed,
//! LSN-stamped write-ahead log with leader/follower group commit, plus the
//! checkpoint snapshot codec the recovery path pairs it with.
//!
//! # Log format
//!
//! The log is a flat sequence of frames:
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [payload: len bytes]
//! payload = [kind: u8] [lsn: u64 LE] [body]
//! ```
//!
//! `crc` is CRC-32 (IEEE) over the payload. LSNs start at 1 and increase
//! by exactly 1 per frame; a frame whose LSN repeats the previous one is a
//! duplicated tail (a retried write) and is skipped, while any other gap
//! means corruption. Recovery scans until the first incomplete frame,
//! CRC mismatch, undecodable payload, or LSN discontinuity, then truncates
//! the file to the last valid byte — a torn tail never poisons the prefix.
//!
//! # Group commit
//!
//! [`Wal::append`] runs under the caller's commit ordering (the session
//! layer appends while holding the commit lock, so log order equals
//! publish order), but [`Wal::sync`] is called *after* that lock is
//! released. Concurrent committers coalesce: the first becomes the fsync
//! leader and captures the current appended watermark, the rest wait on a
//! condvar; one `fdatasync` then makes every record up to the watermark
//! durable and wakes all of them. The durable LSN/byte watermarks are what
//! the crash simulator uses to decide which tail bytes a crash may lose.
//!
//! # Checkpoints
//!
//! A checkpoint is a single CRC-framed snapshot file (DDL log, assertion
//! install batches, base-table rows, commit clock, last contained LSN)
//! written temp-file → `fsync` → atomic rename, after which the log can be
//! truncated. Recovery = load checkpoint (if any) + replay the log tail
//! whose LSNs follow it.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use tintin_engine::{Row, Value, R64};
use tintin_obs::{Counter, Histogram, Registry};

/// Log sequence number. The first record of a database's history is LSN 1;
/// 0 is the "nothing durable yet" sentinel.
pub type Lsn = u64;

/// Frame header size: `len: u32` + `crc: u32`.
pub const FRAME_HEADER: usize = 8;

// ---------------------------------------------------------------------------
// errors
// ---------------------------------------------------------------------------

/// What can go wrong appending to or recovering a log.
#[derive(Debug)]
pub enum WalError {
    /// An I/O error from the filesystem.
    Io(std::io::Error),
    /// A structurally invalid log or checkpoint (never produced by torn
    /// tails, which recovery truncates silently — this is for damage that
    /// cannot be attributed to a crash, like a corrupt checkpoint).
    Corrupt(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt(msg) => write!(f, "wal corrupt: {msg}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

fn corrupt(msg: impl Into<String>) -> WalError {
    WalError::Corrupt(msg.into())
}

// ---------------------------------------------------------------------------
// crc32 (IEEE 802.3, reflected) — hand-rolled, the build has no crc crate
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

// ---------------------------------------------------------------------------
// codec
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Real(r) => {
            // Exact IEEE-754 bit pattern: recovery must rebuild the very
            // same R64, not a re-parsed approximation.
            out.push(2);
            out.extend_from_slice(&r.get().to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(3);
            put_str(out, s);
        }
    }
}

fn put_row(out: &mut Vec<u8>, row: &[Value]) {
    put_u32(out, row.len() as u32);
    for v in row {
        put_value(out, v);
    }
}

fn put_rows(out: &mut Vec<u8>, rows: &[Row]) {
    put_u32(out, rows.len() as u32);
    for r in rows {
        put_row(out, r);
    }
}

fn put_strs(out: &mut Vec<u8>, ss: &[String]) {
    put_u32(out, ss.len() as u32);
    for s in ss {
        put_str(out, s);
    }
}

/// A bounds-checked little-endian reader over a byte slice.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WalError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt("record body truncated"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WalError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WalError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WalError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, WalError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, WalError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("record holds invalid utf-8"))
    }

    fn value(&mut self) -> Result<Value, WalError> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(self.i64()?)),
            2 => Ok(Value::Real(R64::new(f64::from_bits(self.u64()?)))),
            3 => Ok(Value::Str(self.str()?.into_boxed_str())),
            t => Err(corrupt(format!("unknown value tag {t}"))),
        }
    }

    fn row(&mut self) -> Result<Row, WalError> {
        let n = self.u32()? as usize;
        let mut row = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            row.push(self.value()?);
        }
        Ok(row.into_boxed_slice())
    }

    fn rows(&mut self) -> Result<Vec<Row>, WalError> {
        let n = self.u32()? as usize;
        let mut rows = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            rows.push(self.row()?);
        }
        Ok(rows)
    }

    fn strs(&mut self) -> Result<Vec<String>, WalError> {
        let n = self.u32()? as usize;
        let mut ss = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            ss.push(self.str()?);
        }
        Ok(ss)
    }

    fn finish(self) -> Result<(), WalError> {
        if self.pos != self.buf.len() {
            return Err(corrupt("trailing bytes after record body"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// records
// ---------------------------------------------------------------------------

/// The normalized effects of one commit on one base table: the `ins_T` and
/// `del_T` event rows exactly as the committer staged them (so recovery
/// replays what the checker checked, phantoms impossible).
#[derive(Debug, Clone, PartialEq)]
pub struct TableEffects {
    /// Base-table name.
    pub table: String,
    /// Rows inserted (the normalized `ins_T` contents).
    pub ins: Vec<Row>,
    /// Rows deleted (the normalized `del_T` contents).
    pub del: Vec<Row>,
}

/// One durable event. Everything that mutates the published state or the
/// catalog is logged; rejected, conflicted and aborted commits never are.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A catalog statement executed outside the commit path (CREATE/DROP
    /// TABLE/VIEW/INDEX, capture toggles), stored as its SQL text.
    Ddl {
        /// The statement, re-executable verbatim.
        sql: String,
    },
    /// One `install` batch of assertions (their original SQL texts —
    /// recovery re-installs from source, rebuilding vio views and plans).
    Install {
        /// `CREATE ASSERTION …` texts, in install order.
        sqls: Vec<String>,
    },
    /// An assertion dropped by name.
    DropAssertion {
        /// The assertion name.
        name: String,
    },
    /// An acknowledged commit: its timestamp and normalized effects.
    Commit {
        /// The MVCC commit timestamp assigned by `next_commit_ts`.
        ts: u64,
        /// Per-table normalized effects, in touched order.
        effects: Vec<TableEffects>,
    },
}

const KIND_DDL: u8 = 1;
const KIND_INSTALL: u8 = 2;
const KIND_DROP_ASSERTION: u8 = 3;
const KIND_COMMIT: u8 = 4;

impl WalRecord {
    fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Ddl { sql } => put_str(out, sql),
            WalRecord::Install { sqls } => put_strs(out, sqls),
            WalRecord::DropAssertion { name } => put_str(out, name),
            WalRecord::Commit { ts, effects } => {
                put_u64(out, *ts);
                put_u32(out, effects.len() as u32);
                for e in effects {
                    put_str(out, &e.table);
                    put_rows(out, &e.ins);
                    put_rows(out, &e.del);
                }
            }
        }
    }

    fn kind(&self) -> u8 {
        match self {
            WalRecord::Ddl { .. } => KIND_DDL,
            WalRecord::Install { .. } => KIND_INSTALL,
            WalRecord::DropAssertion { .. } => KIND_DROP_ASSERTION,
            WalRecord::Commit { .. } => KIND_COMMIT,
        }
    }

    fn decode(kind: u8, dec: &mut Dec<'_>) -> Result<WalRecord, WalError> {
        match kind {
            KIND_DDL => Ok(WalRecord::Ddl { sql: dec.str()? }),
            KIND_INSTALL => Ok(WalRecord::Install { sqls: dec.strs()? }),
            KIND_DROP_ASSERTION => Ok(WalRecord::DropAssertion { name: dec.str()? }),
            KIND_COMMIT => {
                let ts = dec.u64()?;
                let n = dec.u32()? as usize;
                let mut effects = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    effects.push(TableEffects {
                        table: dec.str()?,
                        ins: dec.rows()?,
                        del: dec.rows()?,
                    });
                }
                Ok(WalRecord::Commit { ts, effects })
            }
            t => Err(corrupt(format!("unknown record kind {t}"))),
        }
    }
}

/// Encode one complete frame (`[len][crc][payload]`) for `record` at `lsn`.
pub fn encode_frame(lsn: Lsn, record: &WalRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    payload.push(record.kind());
    put_u64(&mut payload, lsn);
    record.encode_body(&mut payload);
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    put_u32(&mut frame, payload.len() as u32);
    put_u32(&mut frame, crc32(&payload));
    frame.extend_from_slice(&payload);
    frame
}

/// One frame found by [`scan`]: its LSN, decoded record, and the byte
/// range it occupies in the log (header included).
#[derive(Debug)]
pub struct ScannedFrame {
    /// The frame's LSN.
    pub lsn: Lsn,
    /// The decoded record.
    pub record: WalRecord,
    /// Byte range of the whole frame within the scanned buffer.
    pub span: Range<usize>,
}

/// Result of scanning a log image.
#[derive(Debug)]
pub struct ScanResult {
    /// Valid frames, in log order, duplicates skipped.
    pub frames: Vec<ScannedFrame>,
    /// Bytes of valid prefix; everything past this is a torn/corrupt tail.
    pub valid_end: usize,
    /// Exact-duplicate frames skipped (LSN repeated the previous frame's).
    pub duplicates_skipped: usize,
}

/// Scan a log image to the last valid frame. Never fails: damage ends the
/// scan, it does not error — the caller truncates to `valid_end`.
pub fn scan(bytes: &[u8]) -> ScanResult {
    let mut frames: Vec<ScannedFrame> = Vec::new();
    let mut duplicates_skipped = 0usize;
    let mut pos = 0usize;
    let mut prev_lsn: Lsn = 0;
    let mut valid_end = 0usize;
    while bytes.len() - pos >= FRAME_HEADER {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let Some(end) = pos
            .checked_add(FRAME_HEADER)
            .and_then(|p| p.checked_add(len))
        else {
            break;
        };
        if end > bytes.len() {
            break; // partial frame: torn tail
        }
        let payload = &bytes[pos + FRAME_HEADER..end];
        if crc32(payload) != crc {
            break; // bit rot or torn overwrite
        }
        let mut dec = Dec::new(payload);
        let Ok(kind) = dec.u8() else { break };
        let Ok(lsn) = dec.u64() else { break };
        let Ok(record) = WalRecord::decode(kind, &mut dec) else {
            break;
        };
        if dec.finish().is_err() {
            break;
        }
        if prev_lsn != 0 && lsn == prev_lsn {
            // A duplicated frame (retried append): skip, but keep scanning.
            duplicates_skipped += 1;
            pos = end;
            valid_end = end;
            continue;
        }
        if prev_lsn != 0 && lsn != prev_lsn + 1 {
            break; // LSN gap: a hole in history, nothing past it is trusted
        }
        frames.push(ScannedFrame {
            lsn,
            record,
            span: pos..end,
        });
        prev_lsn = lsn;
        pos = end;
        valid_end = end;
    }
    ScanResult {
        frames,
        valid_end,
        duplicates_skipped,
    }
}

// ---------------------------------------------------------------------------
// the log
// ---------------------------------------------------------------------------

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Appender {
    file: File,
    next_lsn: Lsn,
    size: u64,
}

#[derive(Default)]
struct SyncState {
    appended_lsn: Lsn,
    appended_size: u64,
    durable_lsn: Lsn,
    durable_size: u64,
    syncing: bool,
}

struct WalMetrics {
    records: Arc<Counter>,
    bytes_appended: Arc<Counter>,
    fsyncs: Arc<Counter>,
    fsync_seconds: Arc<Histogram>,
    group_batch: Arc<Histogram>,
}

impl WalMetrics {
    fn new(registry: &Registry) -> Self {
        WalMetrics {
            records: registry.counter("tintin_wal_records"),
            bytes_appended: registry.counter("tintin_wal_bytes_appended"),
            fsyncs: registry.counter("tintin_wal_fsyncs"),
            fsync_seconds: registry.histogram("tintin_wal_fsync_seconds"),
            group_batch: registry.histogram("tintin_wal_group_batch_records"),
        }
    }
}

/// What [`Wal::open`] recovered from an existing log file.
#[derive(Debug)]
pub struct WalRecovery {
    /// Valid records in log order (duplicated frames already skipped).
    pub records: Vec<(Lsn, WalRecord)>,
    /// LSN of the last valid record (0 for an empty/absent log).
    pub last_lsn: Lsn,
    /// Torn/corrupt tail bytes truncated off the file.
    pub truncated_bytes: u64,
    /// Exact-duplicate frames skipped during the scan.
    pub duplicates_skipped: usize,
}

/// The append-only log. `append` is serialized by an internal lock (the
/// session layer additionally orders appends under its commit lock);
/// `sync` group-commits: concurrent callers share one `fdatasync`.
pub struct Wal {
    path: PathBuf,
    appender: Mutex<Appender>,
    /// A dup of the log fd used only for `fdatasync`, so the leader's
    /// fsync never blocks concurrent appends.
    sync_file: File,
    sync_state: Mutex<SyncState>,
    sync_cv: Condvar,
    fsync_enabled: AtomicBool,
    metrics: WalMetrics,
}

impl Wal {
    /// Open (or create) the log at `path`, recovering its valid prefix:
    /// scan to the last complete record, truncate any torn tail, and
    /// position the appender after it. Metrics register into `registry`.
    pub fn open(path: &Path, registry: &Registry) -> Result<(Wal, WalRecovery), WalError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let scan = scan(&bytes);
        let truncated_bytes = (bytes.len() - scan.valid_end) as u64;
        if truncated_bytes > 0 {
            file.set_len(scan.valid_end as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(scan.valid_end as u64))?;
        let last_lsn = scan.frames.last().map_or(0, |f| f.lsn);
        let sync_file = file.try_clone()?;
        let size = scan.valid_end as u64;
        let wal = Wal {
            path: path.to_path_buf(),
            appender: Mutex::new(Appender {
                file,
                next_lsn: last_lsn + 1,
                size,
            }),
            sync_file,
            sync_state: Mutex::new(SyncState {
                appended_lsn: last_lsn,
                appended_size: size,
                durable_lsn: last_lsn,
                durable_size: size,
                syncing: false,
            }),
            sync_cv: Condvar::new(),
            fsync_enabled: AtomicBool::new(true),
            metrics: WalMetrics::new(registry),
        };
        let records = scan.frames.into_iter().map(|f| (f.lsn, f.record)).collect();
        Ok((
            wal,
            WalRecovery {
                records,
                last_lsn,
                truncated_bytes,
                duplicates_skipped: scan.duplicates_skipped,
            },
        ))
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Turn `fdatasync` on or off. With it off, [`Wal::sync`] returns
    /// immediately and the durable watermark stays put: appended records
    /// are honestly *not* durable (the fsync-off bench mode, and the
    /// `skip-fsync` mutant's lie when the harness believes fsync is on).
    pub fn set_fsync(&self, enabled: bool) {
        self.fsync_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Is `fdatasync` on?
    pub fn fsync_on(&self) -> bool {
        self.fsync_enabled.load(Ordering::Relaxed)
    }

    /// Append one record, assigning it the next LSN. The bytes reach the
    /// OS before this returns, but are not durable until a [`Wal::sync`]
    /// covering the returned LSN completes.
    pub fn append(&self, record: &WalRecord) -> Result<Lsn, WalError> {
        let mut ap = lock(&self.appender);
        let lsn = ap.next_lsn;
        let frame = encode_frame(lsn, record);
        ap.file.write_all(&frame)?;
        ap.next_lsn += 1;
        ap.size += frame.len() as u64;
        let size = ap.size;
        drop(ap);
        {
            let mut st = lock(&self.sync_state);
            st.appended_lsn = st.appended_lsn.max(lsn);
            st.appended_size = st.appended_size.max(size);
        }
        self.metrics.records.inc();
        self.metrics.bytes_appended.add(frame.len() as u64);
        Ok(lsn)
    }

    /// Block until every record up to `lsn` is durable (group commit).
    /// The first caller to find no fsync in flight becomes the leader:
    /// it captures the appended watermark, runs one `fdatasync` on the
    /// dup'd fd (appends continue meanwhile), advances the durable
    /// watermark and wakes every waiter whose LSN it covered.
    pub fn sync(&self, lsn: Lsn) -> Result<(), WalError> {
        if !self.fsync_on() {
            return Ok(());
        }
        let mut st = lock(&self.sync_state);
        loop {
            if st.durable_lsn >= lsn {
                return Ok(());
            }
            if st.syncing {
                st = self
                    .sync_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            st.syncing = true;
            let target_lsn = st.appended_lsn;
            let target_size = st.appended_size;
            let batch = target_lsn.saturating_sub(st.durable_lsn);
            drop(st);
            let started = Instant::now();
            let res = self.sync_file.sync_data();
            let elapsed = started.elapsed();
            st = lock(&self.sync_state);
            st.syncing = false;
            if res.is_ok() {
                st.durable_lsn = st.durable_lsn.max(target_lsn);
                st.durable_size = st.durable_size.max(target_size);
                self.metrics.fsyncs.inc();
                self.metrics.fsync_seconds.record(elapsed);
                self.metrics.group_batch.record_nanos(batch);
            }
            self.sync_cv.notify_all();
            res?;
        }
    }

    /// LSN of the last appended record (0 if none).
    pub fn appended_lsn(&self) -> Lsn {
        lock(&self.sync_state).appended_lsn
    }

    /// Bytes appended so far (the logical end of file).
    pub fn appended_size(&self) -> u64 {
        lock(&self.sync_state).appended_size
    }

    /// LSN up to which the log is known durable.
    pub fn durable_lsn(&self) -> Lsn {
        lock(&self.sync_state).durable_lsn
    }

    /// Byte offset up to which the log is known durable. A crash may lose
    /// anything past this; the crash simulator truncates here.
    pub fn durable_size(&self) -> u64 {
        lock(&self.sync_state).durable_size
    }

    /// Truncate the log to empty after a successful checkpoint. LSNs keep
    /// counting (the checkpoint records the last LSN it contains, and the
    /// next append continues the sequence), so recovery can verify the
    /// checkpoint↔tail continuity.
    pub fn reset(&self) -> Result<(), WalError> {
        let mut ap = lock(&self.appender);
        ap.file.set_len(0)?;
        ap.file.seek(SeekFrom::Start(0))?;
        if self.fsync_on() {
            ap.file.sync_data()?;
        }
        ap.size = 0;
        let next = ap.next_lsn;
        drop(ap);
        let mut st = lock(&self.sync_state);
        st.appended_size = 0;
        st.durable_size = 0;
        st.appended_lsn = next - 1;
        st.durable_lsn = next - 1;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// checkpoints
// ---------------------------------------------------------------------------

/// Magic prefix of a checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 4] = b"TNCK";

/// A logical snapshot of the database at a commit-clock boundary. The
/// catalog is stored as replayable SQL (DDL log + assertion sources)
/// because installations hold compiled plans that are rebuilt, not
/// serialized; table contents are stored as rows at the snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// LSN of the last WAL record folded into this checkpoint. The log
    /// tail replayed on top must start at `last_lsn + 1`.
    pub last_lsn: Lsn,
    /// The commit clock at the snapshot.
    pub commit_ts: u64,
    /// Catalog DDL in original execution order.
    pub ddl: Vec<String>,
    /// Assertion install batches still in force (drops already folded in).
    pub installs: Vec<Vec<String>>,
    /// Base-table contents at the snapshot: `(table, rows)`.
    pub tables: Vec<(String, Vec<Row>)>,
}

/// Encode a checkpoint image (`TNCK` magic + one CRC frame).
pub fn encode_checkpoint(ck: &Checkpoint) -> Vec<u8> {
    let mut payload = Vec::with_capacity(1024);
    put_u64(&mut payload, ck.last_lsn);
    put_u64(&mut payload, ck.commit_ts);
    put_strs(&mut payload, &ck.ddl);
    put_u32(&mut payload, ck.installs.len() as u32);
    for batch in &ck.installs {
        put_strs(&mut payload, batch);
    }
    put_u32(&mut payload, ck.tables.len() as u32);
    for (name, rows) in &ck.tables {
        put_str(&mut payload, name);
        put_rows(&mut payload, rows);
    }
    let mut out = Vec::with_capacity(4 + FRAME_HEADER + payload.len());
    out.extend_from_slice(CHECKPOINT_MAGIC);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

/// Decode a checkpoint image. Unlike log scanning, any damage is an error:
/// a checkpoint is written atomically (temp + fsync + rename), so a torn
/// checkpoint means the write protocol was violated.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<Checkpoint, WalError> {
    if bytes.len() < 4 + FRAME_HEADER || &bytes[..4] != CHECKPOINT_MAGIC {
        return Err(corrupt("checkpoint magic missing"));
    }
    let len = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    let payload = bytes
        .get(12..12 + len)
        .ok_or_else(|| corrupt("checkpoint truncated"))?;
    if bytes.len() != 12 + len {
        return Err(corrupt("trailing bytes after checkpoint"));
    }
    if crc32(payload) != crc {
        return Err(corrupt("checkpoint crc mismatch"));
    }
    let mut dec = Dec::new(payload);
    let last_lsn = dec.u64()?;
    let commit_ts = dec.u64()?;
    let ddl = dec.strs()?;
    let n_installs = dec.u32()? as usize;
    let mut installs = Vec::with_capacity(n_installs.min(1024));
    for _ in 0..n_installs {
        installs.push(dec.strs()?);
    }
    let n_tables = dec.u32()? as usize;
    let mut tables = Vec::with_capacity(n_tables.min(1024));
    for _ in 0..n_tables {
        let name = dec.str()?;
        let rows = dec.rows()?;
        tables.push((name, rows));
    }
    dec.finish()?;
    Ok(Checkpoint {
        last_lsn,
        commit_ts,
        ddl,
        installs,
        tables,
    })
}

/// Write a checkpoint durably: temp file in the same directory, `fsync`,
/// atomic rename over `path`, directory `fsync`. A crash at any point
/// leaves either the old checkpoint or the new one, never a torn hybrid.
pub fn write_checkpoint(path: &Path, ck: &Checkpoint) -> Result<(), WalError> {
    let bytes = encode_checkpoint(ck);
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // Make the rename itself durable; some filesystems need the
        // directory entry flushed too.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Read the checkpoint at `path`; `Ok(None)` if the file does not exist.
pub fn read_checkpoint(path: &Path) -> Result<Option<Checkpoint>, WalError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    decode_checkpoint(&bytes).map(Some)
}

// ---------------------------------------------------------------------------
// tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tintin-wal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_commit(ts: u64) -> WalRecord {
        WalRecord::Commit {
            ts,
            effects: vec![TableEffects {
                table: "t0".into(),
                ins: vec![
                    vec![
                        Value::Int(ts as i64),
                        Value::Real(R64::new(1.5)),
                        Value::Str("héllo".into()),
                    ]
                    .into_boxed_slice(),
                    vec![Value::Null, Value::Int(-9)].into_boxed_slice(),
                ],
                del: vec![vec![Value::Int(0)].into_boxed_slice()],
            }],
        }
    }

    #[test]
    fn records_roundtrip_through_frames() {
        let recs = vec![
            WalRecord::Ddl {
                sql: "CREATE TABLE t0 (k INT)".into(),
            },
            WalRecord::Install {
                sqls: vec!["CREATE ASSERTION a1 CHECK (1 = 1)".into(), "x".into()],
            },
            WalRecord::DropAssertion { name: "a1".into() },
            sample_commit(7),
        ];
        let mut bytes = Vec::new();
        for (i, r) in recs.iter().enumerate() {
            bytes.extend_from_slice(&encode_frame(i as u64 + 1, r));
        }
        let scan = scan(&bytes);
        assert_eq!(scan.valid_end, bytes.len());
        assert_eq!(scan.duplicates_skipped, 0);
        let got: Vec<WalRecord> = scan.frames.into_iter().map(|f| f.record).collect();
        assert_eq!(got, recs);
    }

    #[test]
    fn real_values_roundtrip_bit_exactly() {
        let v = Value::Real(R64::new(0.1 + 0.2));
        let rec = WalRecord::Commit {
            ts: 1,
            effects: vec![TableEffects {
                table: "t".into(),
                ins: vec![vec![v.clone()].into_boxed_slice()],
                del: vec![],
            }],
        };
        let bytes = encode_frame(1, &rec);
        let scan = scan(&bytes);
        let WalRecord::Commit { effects, .. } = &scan.frames[0].record else {
            panic!("wrong kind");
        };
        assert_eq!(effects[0].ins[0][0], v);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let mut bytes = encode_frame(1, &sample_commit(1));
        let full = bytes.len();
        let mut second = encode_frame(2, &sample_commit(2));
        second.truncate(second.len() - 3); // torn mid-payload
        bytes.extend_from_slice(&second);
        let scan = scan(&bytes);
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.valid_end, full);
    }

    #[test]
    fn bit_flip_stops_the_scan_at_the_flip() {
        let mut bytes = encode_frame(1, &sample_commit(1));
        let first = bytes.len();
        bytes.extend_from_slice(&encode_frame(2, &sample_commit(2)));
        let flip_at = first + FRAME_HEADER + 3;
        bytes[flip_at] ^= 0x40;
        let scan = scan(&bytes);
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.valid_end, first);
    }

    #[test]
    fn duplicated_frame_is_skipped() {
        let f1 = encode_frame(1, &sample_commit(1));
        let f2 = encode_frame(2, &sample_commit(2));
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&f1);
        bytes.extend_from_slice(&f2);
        bytes.extend_from_slice(&f2); // retried append
        let scan = scan(&bytes);
        assert_eq!(scan.frames.len(), 2);
        assert_eq!(scan.duplicates_skipped, 1);
        assert_eq!(scan.valid_end, bytes.len());
    }

    #[test]
    fn lsn_gap_ends_the_trusted_prefix() {
        let mut bytes = encode_frame(1, &sample_commit(1));
        let first = bytes.len();
        bytes.extend_from_slice(&encode_frame(5, &sample_commit(5)));
        let scan = scan(&bytes);
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.valid_end, first);
    }

    #[test]
    fn open_append_reopen_preserves_history_and_lsns() {
        let dir = tmpdir("reopen");
        let path = dir.join("wal");
        let reg = Registry::new();
        {
            let (wal, rec) = Wal::open(&path, &reg).unwrap();
            assert_eq!(rec.last_lsn, 0);
            assert!(rec.records.is_empty());
            assert_eq!(wal.append(&sample_commit(1)).unwrap(), 1);
            assert_eq!(wal.append(&sample_commit(2)).unwrap(), 2);
            wal.sync(2).unwrap();
            assert_eq!(wal.durable_lsn(), 2);
            assert_eq!(wal.durable_size(), wal.appended_size());
        }
        {
            let (wal, rec) = Wal::open(&path, &reg).unwrap();
            assert_eq!(rec.last_lsn, 2);
            assert_eq!(rec.records.len(), 2);
            assert_eq!(rec.truncated_bytes, 0);
            assert_eq!(wal.append(&sample_commit(3)).unwrap(), 3);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_truncates_a_torn_tail_and_reports_it() {
        let dir = tmpdir("torn");
        let path = dir.join("wal");
        let reg = Registry::new();
        {
            let (wal, _) = Wal::open(&path, &reg).unwrap();
            wal.append(&sample_commit(1)).unwrap();
            wal.sync(1).unwrap();
        }
        // Simulate a torn final write.
        let mut bytes = std::fs::read(&path).unwrap();
        let good = bytes.len();
        let mut torn = encode_frame(2, &sample_commit(2));
        torn.truncate(torn.len() / 2);
        bytes.extend_from_slice(&torn);
        std::fs::write(&path, &bytes).unwrap();
        let (wal, rec) = Wal::open(&path, &reg).unwrap();
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.truncated_bytes, (bytes.len() - good) as u64);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good as u64);
        // The next append continues the LSN sequence cleanly.
        assert_eq!(wal.append(&sample_commit(2)).unwrap(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_off_keeps_durable_watermark_put() {
        let dir = tmpdir("nofsync");
        let path = dir.join("wal");
        let reg = Registry::new();
        let (wal, _) = Wal::open(&path, &reg).unwrap();
        wal.set_fsync(false);
        wal.append(&sample_commit(1)).unwrap();
        wal.sync(1).unwrap();
        assert_eq!(wal.durable_lsn(), 0);
        assert_eq!(wal.durable_size(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_sync_covers_every_record_up_to_watermark() {
        let dir = tmpdir("group");
        let path = dir.join("wal");
        let reg = Registry::new();
        let (wal, _) = Wal::open(&path, &reg).unwrap();
        for ts in 1..=5 {
            wal.append(&sample_commit(ts)).unwrap();
        }
        wal.sync(3).unwrap(); // one fsync covers all five
        assert_eq!(wal.durable_lsn(), 5);
        wal.sync(5).unwrap(); // already durable: no second fsync needed
        let snap = reg.snapshot();
        assert_eq!(snap.counter("tintin_wal_fsyncs"), Some(1));
        assert_eq!(snap.counter("tintin_wal_records"), Some(5));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reset_empties_the_log_but_keeps_lsns_counting() {
        let dir = tmpdir("reset");
        let path = dir.join("wal");
        let reg = Registry::new();
        let (wal, _) = Wal::open(&path, &reg).unwrap();
        wal.append(&sample_commit(1)).unwrap();
        wal.append(&sample_commit(2)).unwrap();
        wal.sync(2).unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.appended_size(), 0);
        assert_eq!(wal.append(&sample_commit(3)).unwrap(), 3);
        wal.sync(3).unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&path, &reg).unwrap();
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0].0, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_roundtrips_and_detects_damage() {
        let dir = tmpdir("ckpt");
        let path = dir.join("checkpoint");
        let ck = Checkpoint {
            last_lsn: 42,
            commit_ts: 17,
            ddl: vec!["CREATE TABLE t0 (k INT PRIMARY KEY)".into()],
            installs: vec![vec!["CREATE ASSERTION a CHECK (1=1)".into()]],
            tables: vec![(
                "t0".into(),
                vec![vec![Value::Int(1), Value::Str("x".into())].into_boxed_slice()],
            )],
        };
        assert!(read_checkpoint(&path).unwrap().is_none());
        write_checkpoint(&path, &ck).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap().unwrap(), ck);
        // Any damage to the (atomically written) checkpoint is an error.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_checkpoint(&path).is_err());
        let mut truncated = std::fs::read(&path).unwrap();
        truncated.truncate(truncated.len() - 4);
        std::fs::write(&path, &truncated).unwrap();
        assert!(read_checkpoint(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
